#!/usr/bin/env python3
"""Validate ``repro.obs`` JSONL trace artifacts (the CI schema gate).

Usage::

    python scripts/check_trace_schema.py TRACE.jsonl [TRACE2.jsonl ...]

Exit status 0 when every artifact parses and passes
:func:`repro.obs.export.validate_records`; 1 otherwise, with one
problem per line on stderr.  A thin wrapper: the schema itself lives
(and is unit-tested) next to the exporter.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.obs.export import validate_records  # noqa: E402


def main(argv: list[str]) -> int:
    if not argv:
        print(
            "usage: check_trace_schema.py TRACE.jsonl [...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for name in argv:
        path = Path(name)
        if not path.is_file():
            print(f"{name}: no such file", file=sys.stderr)
            failed = True
            continue
        problems = validate_records(path.read_text())
        if problems:
            failed = True
            for problem in problems:
                print(f"{name}: {problem}", file=sys.stderr)
        else:
            lines = path.read_text().count("\n")
            print(f"{name}: ok ({lines} records)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
