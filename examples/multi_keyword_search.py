#!/usr/bin/env python3
"""Multi-keyword ranked search: the paper's future work, implemented.

Conjunctive queries over the efficient scheme: one trapdoor per
keyword, the server intersects posting lists and ranks by the *sum* of
per-keyword OPM values.  Because OPM is order-preserving but
non-linear, the summed ranking only approximates the true equation-1
ranking — this example measures the gap (Kendall tau and top-k
overlap), making Section VIII's open problem concrete.

Run:  python3 examples/multi_keyword_search.py
"""

from repro import EfficientRSSE, MultiKeywordSearcher
from repro.core.multi_keyword import (
    rank_correlation,
    top_k_overlap,
    true_conjunctive_ranking,
)
from repro.corpus import generate_corpus
from repro.ir import Analyzer, InvertedIndex, stem

QUERIES = [
    ["network"],
    ["network", "protocol"],
    ["network", "protocol", "security"],
    ["network", "protocol", "security", "routing"],
]


def main() -> None:
    documents = generate_corpus(num_documents=400, seed=17)
    analyzer = Analyzer()
    index = InvertedIndex()
    for document in documents:
        index.add_document(document.doc_id, analyzer.analyze(document.text))

    scheme = EfficientRSSE()
    key = scheme.keygen()
    built = scheme.build_index(key, index)
    searcher = MultiKeywordSearcher(scheme)

    print(f"collection: {len(documents)} documents\n")
    print(f"{'query':<45} {'matches':>8} {'tau':>7} {'top-10':>7}")
    for words in QUERIES:
        terms = [stem(word) for word in words]
        query = searcher.make_query(key, terms)
        approx = searcher.search_ranked(built.secure_index, query)
        truth = true_conjunctive_ranking(index, terms)
        tau = rank_correlation(approx, truth)
        overlap = top_k_overlap(truth, approx, 10)
        print(f"{' AND '.join(words):<45} {len(approx):>8} "
              f"{tau:>7.3f} {overlap:>7.2f}")

    print(
        "\nsingle-keyword tau = 1.000: OPM preserves order exactly.\n"
        "multi-keyword tau < 1: summing order-preserved values does not\n"
        "preserve the order of the summed scores, and the server cannot\n"
        "apply IDF weights — the exact open problem of Section VIII."
    )


if __name__ == "__main__":
    main()
