#!/usr/bin/env python3
"""Leakage analysis: what a curious cloud server actually learns.

Plays the adversary of the paper's Section IV-A / V on a live
deployment:

1. quantifies each protocol's leakage (access pattern, search pattern,
   relevance-order pairs);
2. mounts the keyword re-identification attack — matching observed
   (encrypted) score distributions against background knowledge —
   against three score protections: plaintext, deterministic OPSE, and
   the paper's one-to-many OPM.

Run:  python3 examples/leakage_analysis.py
"""

from repro import Channel, CloudServer, DataOwner, DataUser, EfficientRSSE
from repro.analysis import run_identification_experiment
from repro.analysis.leakage import ordered_pairs_full, ordered_pairs_topk, profile_search
from repro.baselines import DeterministicOpseScoring
from repro.corpus import generate_corpus
from repro.crypto import OneToManyOpm, Prf, generate_key
from repro.ir.scoring import single_keyword_score


def main() -> None:
    documents = generate_corpus(num_documents=300, seed=99)
    scheme = EfficientRSSE()
    owner = DataOwner(scheme)
    outsourcing = owner.setup(documents)
    server = CloudServer(
        outsourcing.secure_index, outsourcing.blob_store, can_rank=True
    )
    user = DataUser(
        scheme, owner.authorize_user(), Channel(server.handle),
        owner.analyzer,
    )

    # --- 1. protocol leakage ------------------------------------------
    user.search_ranked_topk("network", 10)
    user.search_ranked_topk("network", 10)   # repeat: search pattern
    user.search_ranked_topk("protocol", 10)

    print("protocol leakage (per search):")
    for position, scheme_name in [(0, "rsse"), (1, "rsse"), (2, "rsse")]:
        profile = profile_search(server.log, position, scheme_name)
        print(f"  search #{position}: matched {len(profile.access_pattern)} "
              f"files; seen this keyword {profile.search_pattern_hits} "
              f"time(s) before; learned {profile.ordered_pairs_learned} "
              "relevance-order pairs")

    n = len(server.log.observations[0].matched_file_ids)
    print(f"\nfor the same {n} matches, the alternatives would leak:")
    print(f"  basic one-round:      0 order pairs")
    print(f"  basic two-round k=10: {ordered_pairs_topk(n, 10)} order pairs")
    print(f"  rsse (full order):    {ordered_pairs_full(n)} order pairs")

    # --- 2. the keyword re-identification attack ------------------------
    index = owner.plain_index
    quantizer = scheme.fit_quantizer(index)
    top_terms = sorted(
        index.vocabulary, key=index.document_frequency, reverse=True
    )[:10]
    background = {
        term: [
            quantizer.quantize(
                single_keyword_score(
                    posting.term_frequency,
                    index.file_length(posting.file_id),
                )
            )
            for posting in index.posting_list(term)
        ]
        for term in top_terms
    }

    plaintext = run_identification_experiment(
        background, lambda term, level, fid: level
    )
    det = DeterministicOpseScoring(generate_key(), 128, 1 << 46)
    det_result = run_identification_experiment(
        background, lambda term, level, fid: det.map_score(term, level, fid)
    )
    prf = Prf(generate_key())
    opms = {
        term: OneToManyOpm(prf.derive_key(term), 128, 1 << 46)
        for term in background
    }
    opm_result = run_identification_experiment(
        background, lambda term, level, fid: opms[term].map_score(level, fid)
    )

    print(f"\nkeyword re-identification from score distributions "
          f"({len(background)} candidates, chance = "
          f"{plaintext.chance:.2f}):")
    print(f"  plaintext scores:    {plaintext.accuracy:.2f}")
    print(f"  deterministic OPSE:  {det_result.accuracy:.2f}   "
          "<- the Section IV-A strawman")
    print(f"  one-to-many OPM:     {opm_result.accuracy:.2f}   "
          "<- the paper's construction")


if __name__ == "__main__":
    main()
