#!/usr/bin/env python3
"""Score dynamics: updating the index without touching old entries.

The paper's Section VII advantage over [16]/[18]: because the OPM's
plaintext-to-bucket assignment depends only on the key, inserting or
removing documents never remaps previously outsourced scores.  This
example builds an index, inserts and removes documents, and verifies
byte-identity of untouched entries, then shows both baselines being
forced to rebuild under the same workload.

Run:  python3 examples/score_dynamics.py
"""

from repro import EfficientRSSE, IndexMaintainer
from repro.baselines import BucketOpeMapper, SampledOpeMapper
from repro.corpus import generate_corpus
from repro.crypto import generate_key
from repro.ir import Analyzer, stem
from repro.ir.scoring import single_keyword_score


def network_levels(maintainer):
    index = maintainer.plain_index
    term = stem("network")
    return [
        maintainer.quantizer.quantize(
            single_keyword_score(
                posting.term_frequency, index.file_length(posting.file_id)
            )
        )
        for posting in index.posting_list(term)
    ]


def main() -> None:
    documents = generate_corpus(num_documents=160, seed=5)
    initial, incoming = documents[:120], documents[120:]
    analyzer = Analyzer()

    scheme = EfficientRSSE()
    maintainer = IndexMaintainer(scheme, scheme.keygen())
    for document in initial:
        maintainer.add_document(document.doc_id,
                                analyzer.analyze(document.text))
    maintainer.build()
    print(f"built index over {len(initial)} documents "
          f"({maintainer.secure_index.num_lists} posting lists)")

    trained_levels = network_levels(maintainer)
    snapshot = {
        address: list(entries)
        for address, entries in maintainer.secure_index.items()
    }

    # --- incremental inserts -------------------------------------------
    total_written = 0
    for document in incoming:
        report = maintainer.insert_document(
            document.doc_id, analyzer.analyze(document.text)
        )
        total_written += report.entries_written
        assert report.entries_remapped == 0
    untouched = all(
        maintainer.secure_index.lookup(address)[: len(entries)] == entries
        for address, entries in snapshot.items()
    )
    print(f"inserted {len(incoming)} documents: {total_written} new "
          f"entries written, 0 remapped; "
          f"pre-existing entries byte-identical: {untouched}")

    # --- removal ---------------------------------------------------------
    victim = initial[0].doc_id
    report = maintainer.remove_document(victim)
    print(f"removed {victim}: {report.entries_removed} entries deleted, "
          f"{report.entries_remapped} remapped")

    # --- the baselines under the same workload ----------------------------
    updated_levels = network_levels(maintainer)

    bucket = BucketOpeMapper.fit(generate_key(), trained_levels, 1 << 46)
    print(f"\nbucket OPE [18]: trained on {len(trained_levels)} scores; "
          f"needs rebuild after inserts: "
          f"{bucket.needs_rebuild(updated_levels)} "
          f"(rebuild = remap all {len(updated_levels)} entries)")

    sampled = SampledOpeMapper.fit(
        generate_key(), trained_levels, 128, 1 << 46
    )
    drift = sampled.distribution_drift(updated_levels)
    print(f"sampled OPE [16]: distribution drift {drift:.3f}; "
          f"needs retrain: {sampled.needs_rebuild(updated_levels)}")
    print("\nrsse (this paper): 0 entries remapped under any insertion "
          "— the OPM never depends on other scores.")


if __name__ == "__main__":
    main()
