#!/usr/bin/env python3
"""Multi-user sharing with broadcast-encrypted credentials + revocation.

The paper's Setup phase distributes trapdoor keys "to a group of
authorized users by employing off-the-shelf public key cryptography or
more efficient primitive such as broadcast encryption".  This example
runs that story end to end:

1. the owner outsources a collection and broadcasts user credentials
   under complete-subtree broadcast encryption;
2. three users redeem their tickets and search;
3. one user is revoked; the owner rotates keys, re-indexes, and
   re-broadcasts — the revoked user can no longer obtain credentials
   for (or search) the new deployment.

Run:  python3 examples/authorized_sharing.py
"""

from repro import Channel, CloudServer, DataOwner, DataUser, EfficientRSSE
from repro.cloud import AuthorizationManager
from repro.corpus import generate_corpus
from repro.crypto import generate_key
from repro.errors import CryptoError


def deploy(documents):
    """Owner-side: fresh scheme keys, index, encrypted upload."""
    scheme = EfficientRSSE()
    owner = DataOwner(scheme)
    outsourcing = owner.setup(documents)
    server = CloudServer(
        outsourcing.secure_index, outsourcing.blob_store, can_rank=True
    )
    return scheme, owner, server


def main() -> None:
    documents = generate_corpus(num_documents=120, seed=31)
    manager = AuthorizationManager(generate_key(), capacity=16)

    # --- epoch 0: deploy and authorize three users ----------------------
    scheme, owner, server = deploy(documents)
    tickets = {name: manager.authorize_user() for name in ("alice", "bob",
                                                           "carol")}
    broadcast = manager.publish_credentials(owner.authorize_user())
    print(f"epoch 0: credentials broadcast in "
          f"{broadcast.num_ciphertexts} ciphertext(s) "
          f"for {len(tickets)} users")

    for name, ticket in tickets.items():
        credentials, epoch = AuthorizationManager.redeem(ticket, broadcast)
        user = DataUser(scheme, credentials, Channel(server.handle),
                        owner.analyzer)
        top = user.search_ranked_topk("network", 3)
        print(f"  {name} (epoch {epoch}): top hit {top[0].file_id}")

    # --- revoke bob: rotate keys, re-deploy, re-broadcast ------------------
    print("\nrevoking bob...")
    manager.revoke_user(tickets["bob"].key_set.user_index)
    scheme2, owner2, server2 = deploy(documents)   # re-keyed deployment
    rotated = manager.rotate_credentials(owner2.authorize_user())
    print(f"epoch 1: rotated credentials broadcast in "
          f"{rotated.num_ciphertexts} ciphertext(s) "
          f"(cover excludes bob's leaf)")

    for name, ticket in tickets.items():
        try:
            credentials, epoch = AuthorizationManager.redeem(ticket, rotated)
        except CryptoError:
            print(f"  {name}: cannot decrypt the epoch-1 broadcast -> "
                  "locked out of the re-keyed index")
            continue
        user = DataUser(scheme2, credentials, Channel(server2.handle),
                        owner2.analyzer)
        top = user.search_ranked_topk("network", 1)
        print(f"  {name} (epoch {epoch}): still searching, top hit "
              f"{top[0].file_id}")

    # Bob's stale epoch-0 credentials are useless against the re-keyed
    # deployment: trapdoors derive from the rotated keys.
    stale, _ = AuthorizationManager.redeem(tickets["bob"],
                                           broadcast)  # old epoch
    bob = DataUser(scheme2, stale, Channel(server2.handle), owner2.analyzer)
    hits = bob.search_ranked_topk("network", 3)
    print(f"\nbob replays epoch-0 credentials against the new index: "
          f"{len(hits)} results (trapdoors no longer match)")

    # --- fine-grained access control (Section VIII's other direction) --
    demonstrate_attribute_policies()


def demonstrate_attribute_policies() -> None:
    """Attribute-gated credentials: policy trees over attribute keys."""
    from repro.cloud import (
        Attribute,
        AttributeAuthority,
        PolicyDecryptor,
        and_of,
        or_of,
    )

    print("\nattribute-based access control "
          "(paper Section VIII, second direction):")
    authority = AttributeAuthority(generate_key())
    policy = and_of(
        Attribute("employee"),
        or_of(Attribute("finance"), Attribute("audit")),
    )
    sealed = authority.encrypt(b"finance-index credentials", policy)
    cases = [
        ({"employee", "finance"}, True),
        ({"employee", "audit"}, True),
        ({"employee"}, False),
        ({"finance", "audit"}, False),
    ]
    for attributes, expected in cases:
        decryptor = PolicyDecryptor(
            authority.issue_attribute_keys(attributes)
        )
        try:
            decryptor.decrypt(sealed)
            outcome = "granted"
        except CryptoError:
            outcome = "denied"
        marker = "ok" if (outcome == "granted") == expected else "??"
        print(f"  {sorted(attributes)!s:<28} -> {outcome:<8} [{marker}]")


if __name__ == "__main__":
    main()
