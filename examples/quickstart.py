#!/usr/bin/env python3
"""Quickstart: outsource an encrypted collection, search it ranked.

The minimal end-to-end flow of the paper's efficient RSSE scheme:

1. the data owner indexes and encrypts a document collection locally,
   then uploads the secure index + encrypted files to the cloud server;
2. an authorized user sends a one-round top-k search request (a
   trapdoor plus k);
3. the server ranks the matching files by their order-preserving
   encrypted relevance scores — without learning the scores — and
   returns the top-k encrypted files;
4. the user decrypts and reads them.

Run:  python3 examples/quickstart.py
"""

from repro import Channel, CloudServer, DataOwner, DataUser, EfficientRSSE
from repro.corpus import generate_corpus


def main() -> None:
    # A synthetic RFC-style collection stands in for the paper's RFC
    # corpus (see DESIGN.md); swap in repro.corpus.load_directory(...)
    # to search your own plaintext files.
    documents = generate_corpus(num_documents=200, seed=42)
    print(f"collection: {len(documents)} documents, "
          f"{sum(d.size_bytes for d in documents) // 1024} KB")

    # --- Setup phase (data owner) ------------------------------------
    scheme = EfficientRSSE()  # paper parameters: M=128, |R|=2^46
    owner = DataOwner(scheme)
    outsourcing = owner.setup(documents)
    print(f"secure index: {outsourcing.secure_index.num_lists} posting "
          f"lists, {outsourcing.secure_index.size_bytes() // 1024} KB")

    # --- The cloud side ------------------------------------------------
    server = CloudServer(
        outsourcing.secure_index, outsourcing.blob_store, can_rank=True
    )
    channel = Channel(server.handle)

    # --- Retrieval phase (authorized user) ------------------------------
    user = DataUser(scheme, owner.authorize_user(), channel, owner.analyzer)
    keyword, k = "network", 5
    hits = user.search_ranked_topk(keyword, k)

    print(f"\ntop-{k} files for keyword {keyword!r} "
          f"(1 round trip, {channel.stats.total_bytes // 1024} KB moved):")
    for hit in hits:
        title = hit.text.splitlines()[0].strip()
        print(f"  #{hit.rank}  {hit.file_id}  ({title[:60]})")

    # What did the server learn? Only the access pattern, the search
    # pattern, and the relevance *order* — never the scores.
    observation = server.log.observations[-1]
    print(f"\nserver saw: {len(observation.matched_file_ids)} matching "
          f"file ids and their encrypted (order-preserved) scores; "
          f"returned {len(observation.returned_file_ids)}")


if __name__ == "__main__":
    main()
