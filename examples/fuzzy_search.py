#!/usr/bin/env python3
"""Typo-tolerant ranked search: the [22] + RSSE integration.

The paper's related work cites the authors' companion fuzzy-search
scheme (Li et al., INFOCOM'10).  This example runs the combination
implemented in :mod:`repro.core.fuzzy`: wildcard-based fuzzy keyword
sets give edit-distance-1 typo tolerance, the one-to-many OPM keeps the
results relevance-ranked, and the whole query is still one round of
(several) trapdoors.

Run:  python3 examples/fuzzy_search.py
"""

from repro.core import FuzzyRankedSSE, fuzzy_set
from repro.corpus import generate_corpus
from repro.ir import Analyzer, InvertedIndex, stem

QUERIES = ["network", "netwrk", "networkk", "netw0rk", "ntwrk"]


def main() -> None:
    documents = generate_corpus(num_documents=150, seed=23)
    analyzer = Analyzer()
    index = InvertedIndex()
    for document in documents:
        index.add_document(document.doc_id, analyzer.analyze(document.text))

    scheme = FuzzyRankedSSE()
    key = scheme.keygen()
    built = scheme.build_index(key, index)
    plain_lists = index.vocabulary_size
    fuzzy_lists = built.secure_index.num_lists
    print(f"index: {plain_lists} keywords -> {fuzzy_lists} fuzzy pattern "
          f"lists ({fuzzy_lists / plain_lists:.1f}x, the typo-tolerance "
          "storage cost)\n")

    target = stem("network")
    print(f"fuzzy set of {target!r}: "
          f"{len(fuzzy_set(target))} wildcard patterns\n")

    for query in QUERIES:
        term = query.lower()
        trapdoors = scheme.trapdoors(key, stem(term))
        hits = scheme.search_top_k(built.secure_index, trapdoors, 3)
        if hits:
            shown = ", ".join(
                f"#{hit.rank} {hit.file_id}" for hit in hits
            )
            print(f"  {query:<10} -> {shown}")
        else:
            print(f"  {query:<10} -> no match (edit distance > 1)")


if __name__ == "__main__":
    main()
