#!/usr/bin/env python3
"""Protocol comparison: the paper's Section III-C trade-off, live.

Deploys the same collection under both schemes and runs all three
retrieval protocols, printing round trips, bytes moved, and an
estimated transfer time under a 100 Mbit / 50 ms RTT link:

* basic scheme, one round   — every matching file comes back, the user
  decrypts every score and ranks locally;
* basic scheme, two rounds  — entries first, then exactly the top-k
  files (saves bandwidth, costs a round trip, tells the server which
  files won);
* efficient RSSE, one round — the server ranks encrypted scores itself.

Run:  python3 examples/protocol_comparison.py
"""

from repro import (
    BasicRankedSSE,
    Channel,
    CloudServer,
    DataOwner,
    DataUser,
    EfficientRSSE,
)
from repro.cloud import LinkModel
from repro.corpus import generate_corpus

KEYWORD = "network"
TOP_K = 10


def deploy(scheme, documents):
    owner = DataOwner(scheme)
    outsourcing = owner.setup(documents)
    server = CloudServer(
        outsourcing.secure_index,
        outsourcing.blob_store,
        can_rank=isinstance(scheme, EfficientRSSE),
    )
    channel = Channel(server.handle)
    user = DataUser(scheme, owner.authorize_user(), channel, owner.analyzer)
    return channel, user


def main() -> None:
    documents = generate_corpus(num_documents=300, seed=7)
    link = LinkModel()  # 100 Mbit/s, 50 ms RTT
    print(f"collection: {len(documents)} documents; keyword {KEYWORD!r}; "
          f"top-k = {TOP_K}\n")

    rows = []

    rsse_channel, rsse_user = deploy(EfficientRSSE(), documents)
    hits = rsse_user.search_ranked_topk(KEYWORD, TOP_K)
    rows.append(("rsse one-round top-k", rsse_channel.stats,
                 [h.file_id for h in hits]))

    basic_channel, basic_user = deploy(BasicRankedSSE(), documents)
    hits_all = basic_user.search_all_and_rank(KEYWORD)
    rows.append(("basic one-round (all files)", basic_channel.stats,
                 [h.file_id for h in hits_all[:TOP_K]]))

    basic2_channel, basic2_user = deploy(BasicRankedSSE(), documents)
    hits2 = basic2_user.search_two_round_topk(KEYWORD, TOP_K)
    rows.append(("basic two-round top-k", basic2_channel.stats,
                 [h.file_id for h in hits2]))

    print(f"{'protocol':<30} {'round trips':>12} {'KB moved':>10} "
          f"{'est. time':>10}")
    for name, stats, _ in rows:
        print(f"{name:<30} {stats.round_trips:>12} "
              f"{stats.total_bytes / 1024:>10.1f} "
              f"{link.estimate_seconds(stats):>9.3f}s")

    exact = set(rows[1][2])
    rsse_set = set(rows[0][2])
    print(f"\ntop-{TOP_K} agreement between rsse (quantized, 128 levels) "
          f"and exact basic ranking: {len(exact & rsse_set)}/{TOP_K}")


if __name__ == "__main__":
    main()
