"""Ablation — the HGD sampler, the OPM's inner-loop cost driver.

Fig. 7's super-logarithmic growth comes from here: each binary-search
round draws one hypergeometric quantile whose exact inversion costs
O(min(successes, draws)) log-space PMF terms.  Sweeps the quantile cost
over domain (successes) and range (population) sizes, validating the
cost model the paper inherits from Boldyreva et al.
"""

import pytest

from repro.crypto.hgd import hgd_quantile

from conftest import write_result

_collected: dict[tuple[int, int], float] = {}

SUCCESSES = (32, 128, 512, 2048)
POPULATION_BITS = (24, 40, 46, 52)


@pytest.mark.parametrize("population_bits", POPULATION_BITS)
@pytest.mark.parametrize("successes", SUCCESSES)
def test_hgd_quantile_cost(benchmark, successes, population_bits):
    population = 1 << population_bits
    draws = population // 2
    quantiles = iter(
        (i * 0.6180339887498949) % 1.0 for i in range(1, 10**9)
    )

    def sample():
        return hgd_quantile(next(quantiles), population, successes, draws)

    benchmark.pedantic(sample, rounds=20, iterations=1, warmup_rounds=2)
    _collected[(successes, population_bits)] = benchmark.stats["mean"]


def test_hgd_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _collected:
        pytest.skip("per-point benchmarks did not run")
    lines = [
        "HGD quantile cost (mean ms): rows = successes (domain size M), "
        "columns = population (range size |R|)",
        "",
        "          " + "".join(f"2^{bits:<10}" for bits in POPULATION_BITS),
    ]
    for successes in SUCCESSES:
        row = [f"S={successes:<6}"]
        for bits in POPULATION_BITS:
            mean = _collected.get((successes, bits))
            row.append(f"{mean * 1000:>9.3f} ms" if mean else "     n/a")
        lines.append(" ".join(row))
    write_result("ablation_hgd_cost.txt", "\n".join(lines))

    # Cost is linear-ish in successes (the support size), nearly flat
    # in the population size — the property that makes huge |R| viable.
    for bits in POPULATION_BITS:
        assert (
            _collected[(2048, bits)] > _collected[(32, bits)] * 4
        )
