"""Multi-keyword serving: one-round fast path gate + ranking ablation.

Two instruments in one harness:

**Fast-path gate** (``run_benchmark`` / ``test_multi_keyword_fastpath_gates``)
— measures the one-round ``multi-search`` path against the legacy
k-round client-side merge it replaces, through a warm
:class:`ClusterServer` at 1 and 4 shards over the binary codec.
Latency per query is compute wall-clock plus a
:class:`~repro.cloud.network.LinkModel`-priced wire cost (RTTs +
bytes), so the numbers reflect what a real client pays: the legacy
path spends one round trip *per keyword* and hauls full posting lists
plus every matching file back to the client, while the one-round path
spends a single round trip and receives exactly the top-k.  Responses
are asserted rank- and byte-equivalent before anything is timed.
Gates:

* machine-independent (always checked): one-round p50 latency for
  4-term conjunctive queries at 4 shards must beat the legacy path by
  >= 2x;
* machine-dependent (``--check-baseline``): one-round QPS must not
  regress more than 30% below the committed
  ``BENCH_multi_keyword_baseline.json`` floor, and the minimum Kendall
  tau vs the exact equation-1 ranking must stay above the baseline's
  recorded floor.

Run standalone (``python benchmarks/bench_multi_keyword.py [--smoke]
[--check-baseline]``) or through pytest.

**Ranking ablation** (``test_multi_keyword_ranking_quality``) — the
Section VIII honesty measurement: Kendall tau and top-k overlap
between the server-side OPM-sum ranking and the true equation-1
ranking as the query grows from 1 to 4 keywords, plus the exact
basic-scheme client that closes the gap at k-round cost.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import pytest

from repro.cloud.cluster import ClusterServer
from repro.cloud.network import LinkModel
from repro.cloud.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    MODE_CONJUNCTIVE,
    MultiSearchRequest,
    MultiSearchResponse,
    SearchRequest,
    SearchResponse,
    pack_multi_score,
    unpack_multi_score,
)
from repro.cloud.server import CloudServer
from repro.cloud.storage import BlobStore
from repro.core import (
    BasicRankedSSE,
    EfficientRSSE,
    PAPER_PARAMETERS,
    TEST_PARAMETERS,
)
from repro.core.multi_keyword import (
    ExactMultiKeywordClient,
    MultiKeywordSearcher,
    rank_correlation,
    top_k_overlap,
    true_conjunctive_ranking,
)
from repro.core.results import as_ranking
from repro.corpus.workload import zipf_multi_queries
from repro.ir import stem
from repro.ir.inverted_index import InvertedIndex
from repro.ir.topk import intersect_sums, rank_pairs

from conftest import write_result

MIN_ONE_ROUND_P50_SPEEDUP = 2.0
BASELINE_TOLERANCE = 0.30
TOP_K = 10
BLOB_BYTES = 2048
GATE_TERMS = 4
GATE_SHARDS = "shards4"

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_multi_keyword_baseline.json"
REPORT_PATH = RESULTS_DIR / "BENCH_multi_keyword.json"

QUERIES = (
    ["network"],
    ["network", "protocol"],
    ["network", "protocol", "packet"],
    ["network", "protocol", "packet", "server"],
)


# ---------------------------------------------------------------------------
# fast-path harness
# ---------------------------------------------------------------------------


class ModeledChannel:
    """In-process channel that *prices* the wire instead of sleeping.

    Every call accumulates the :class:`LinkModel` cost (one RTT plus
    transfer time for request and response bytes) into
    ``modeled_seconds``; the bench adds the per-query delta to the
    measured compute time.  Deterministic — no wall-clock sleeps — yet
    deployment-honest: round trips and bytes are the real ones.
    """

    def __init__(self, handler, link: LinkModel):
        self._handler = handler
        self._link = link
        self.modeled_seconds = 0.0
        self.round_trips = 0
        self.total_bytes = 0

    def call(self, request: bytes) -> bytes:
        response = self._handler(request)
        self.round_trips += 1
        self.total_bytes += len(request) + len(response)
        self.modeled_seconds += (
            self._link.rtt_seconds
            + (len(request) + len(response))
            / self._link.bandwidth_bytes_per_second
        )
        return response


def build_deployment(num_documents: int, vocabulary_size: int, seed: int):
    """A dense synthetic deployment: every term pair co-occurs often."""
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    rng = random.Random(seed)
    vocabulary = [f"kw{i:02d}" for i in range(vocabulary_size)]
    index = InvertedIndex()
    blobs = BlobStore()
    for position in range(num_documents):
        doc_id = f"d{position:06d}"
        index.add_document(
            doc_id, [rng.choice(vocabulary) for _ in range(40)]
        )
        blobs.put(
            doc_id, (doc_id.encode("utf-8") * BLOB_BYTES)[:BLOB_BYTES]
        )
    built = scheme.build_index(key, index)
    return scheme, key, index, built.secure_index, blobs, vocabulary


def sample_queries(vocabulary, terms_count: int, count: int, seed: int):
    """Zipf-weighted multi-keyword workloads (shared generator).

    Hot terms co-occur across queries, matching the skew the other
    serving benches use (:mod:`repro.corpus.workload`).
    """
    return [
        list(terms)
        for terms in zipf_multi_queries(
            vocabulary, count, terms_count, seed=seed
        )
    ]


def one_round_query(channel, trapdoors, k) -> MultiSearchResponse:
    request = MultiSearchRequest(
        trapdoors=trapdoors, mode=MODE_CONJUNCTIVE, top_k=k
    ).to_bytes(CODEC_BINARY)
    return MultiSearchResponse.from_bytes(channel.call(request))


def legacy_query(channel, trapdoors, k) -> MultiSearchResponse:
    """The pre-aggregation client: k round trips, merge locally.

    Reassembled into a :class:`MultiSearchResponse` so equivalence with
    the one-round path is a plain equality check.
    """
    per_term: list[dict[str, int]] = []
    blobs: dict[str, bytes] = {}
    for trapdoor_bytes in trapdoors:
        response = SearchResponse.from_bytes(
            channel.call(
                SearchRequest(trapdoor_bytes=trapdoor_bytes).to_bytes(
                    CODEC_BINARY
                )
            )
        )
        per_term.append(
            {
                file_id: int.from_bytes(field, "big")
                for file_id, field in response.matches
            }
        )
        blobs.update(response.files)
    ranked = rank_pairs(intersect_sums(per_term), k)
    return MultiSearchResponse(
        matches=tuple(
            (file_id, pack_multi_score(total)) for file_id, total in ranked
        ),
        files=tuple(
            (file_id, blobs[file_id])
            for file_id, _ in ranked
            if file_id in blobs
        ),
    )


def percentile(sorted_latencies: list[float], q: float) -> float:
    index = min(
        len(sorted_latencies) - 1,
        int(round(q * (len(sorted_latencies) - 1))),
    )
    return sorted_latencies[index]


def time_path(channel, run_one, queries) -> dict:
    """Per-query latency = compute wall-clock + modeled wire delta."""
    latencies = []
    for query in queries:
        wire_before = channel.modeled_seconds
        began = time.perf_counter()
        run_one(query)
        latencies.append(
            (time.perf_counter() - began)
            + (channel.modeled_seconds - wire_before)
        )
    total = sum(latencies)
    latencies.sort()
    return {
        "queries": len(queries),
        "qps": len(queries) / total,
        "p50_ms": percentile(latencies, 0.50) * 1e3,
        "p99_ms": percentile(latencies, 0.99) * 1e3,
    }


def check_equivalence(channel, query_trapdoors, k) -> None:
    """One-round and legacy must agree before either is timed."""
    for trapdoors in query_trapdoors:
        one = one_round_query(channel, trapdoors, k)
        legacy = legacy_query(channel, trapdoors, k)
        if one != legacy:
            raise AssertionError(
                "one-round multi-search diverged from the legacy "
                "k-round client-side merge"
            )


def measure_quality(
    scheme, key, index, secure_index, blobs, vocabulary
) -> dict:
    """Kendall tau / top-k overlap of the served ranking vs truth."""
    server = CloudServer(secure_index, blobs, can_rank=True)
    rows = []
    taus = []
    for terms_count in (1, 2, 3, 4):
        for terms in sample_queries(
            vocabulary, terms_count, 3, 11 * terms_count
        ):
            trapdoors = tuple(
                scheme.trapdoor(key, term).serialize() for term in terms
            )
            response = MultiSearchResponse.from_bytes(
                server.handle(
                    MultiSearchRequest(trapdoors=trapdoors).to_bytes()
                )
            )
            if len(response.matches) < 2:
                continue
            approx = as_ranking(
                [
                    (file_id, float(unpack_multi_score(field)))
                    for file_id, field in response.matches
                ]
            )
            truth = true_conjunctive_ranking(index, terms)
            tau = rank_correlation(approx, truth)
            overlap = top_k_overlap(truth, approx, TOP_K)
            rows.append(
                {
                    "terms": terms_count,
                    "matches": len(approx),
                    "kendall_tau": tau,
                    "top_k_overlap": overlap,
                }
            )
            if terms_count > 1:
                taus.append(tau)
    return {
        "rows": rows,
        "kendall_tau_min": min(taus),
        "kendall_tau_mean": sum(taus) / len(taus),
    }


def measure_wire_sizes(scheme, key, vocabulary, secure_index, blobs):
    """Measured bytes-on-wire for a 4-term query (the docs table)."""
    server = CloudServer(secure_index, blobs, can_rank=True)
    trapdoors = tuple(
        scheme.trapdoor(key, term).serialize()
        for term in vocabulary[:GATE_TERMS]
    )
    sizes = {}
    for codec in (CODEC_JSON, CODEC_BINARY):
        request = MultiSearchRequest(
            trapdoors=trapdoors, top_k=TOP_K
        ).to_bytes(codec)
        response = server.handle(request)
        legacy_bytes = 0
        for trapdoor_bytes in trapdoors:
            single = SearchRequest(trapdoor_bytes=trapdoor_bytes).to_bytes(
                codec
            )
            legacy_bytes += len(single) + len(server.handle(single))
        sizes[codec] = {
            "multi_search_request_bytes": len(request),
            "multi_search_response_bytes": len(response),
            "legacy_total_bytes": legacy_bytes,
        }
    return sizes


def run_benchmark(
    num_documents: int,
    queries_per_cell: int,
    vocabulary_size: int = 24,
    seed: int = 2010,
) -> dict:
    scheme, key, index, secure_index, blobs, vocabulary = build_deployment(
        num_documents, vocabulary_size, seed
    )
    link = LinkModel()  # 50 ms RTT, 100 Mbit/s — a WAN client
    query_pool = {
        terms_count: [
            tuple(
                scheme.trapdoor(key, term).serialize() for term in terms
            )
            for terms in sample_queries(
                vocabulary, terms_count, 8, seed + terms_count
            )
        ]
        for terms_count in (2, GATE_TERMS)
    }

    cells: dict[str, dict] = {}
    for shards in (1, 4):
        shard_cells: dict[str, dict] = {}
        with ClusterServer(
            secure_index,
            blobs,
            can_rank=True,
            num_shards=shards,
            cache_searches=True,
            log_capacity=256,
        ) as cluster:
            channel = ModeledChannel(cluster.handle, link)
            for terms_count, pool in query_pool.items():
                # Equivalence first (also warms every posting list).
                check_equivalence(channel, pool, TOP_K)
                queries = [
                    pool[i % len(pool)] for i in range(queries_per_cell)
                ]
                one = time_path(
                    channel,
                    lambda q: one_round_query(channel, q, TOP_K),
                    queries,
                )
                legacy = time_path(
                    channel,
                    lambda q: legacy_query(channel, q, TOP_K),
                    queries,
                )
                shard_cells[f"terms{terms_count}"] = {
                    "one_round": one,
                    "legacy": legacy,
                    "p50_speedup": legacy["p50_ms"] / one["p50_ms"],
                }
        cells[f"shards{shards}"] = shard_cells

    report = {
        "parameters": {
            "num_documents": num_documents,
            "vocabulary_size": vocabulary_size,
            "queries_per_cell": queries_per_cell,
            "top_k": TOP_K,
            "blob_bytes": BLOB_BYTES,
            "link_rtt_ms": link.rtt_seconds * 1e3,
            "link_bandwidth_mbps": link.bandwidth_bytes_per_second
            * 8
            / 1e6,
            "codec": CODEC_BINARY,
        },
        "cells": cells,
        "quality": measure_quality(
            scheme, key, index, secure_index, blobs, vocabulary
        ),
        "wire": measure_wire_sizes(
            scheme, key, vocabulary, secure_index, blobs
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_gates(report: dict) -> list[str]:
    """Machine-independent gates; returns failure messages (empty = ok)."""
    failures = []
    speedup = report["cells"][GATE_SHARDS][f"terms{GATE_TERMS}"][
        "p50_speedup"
    ]
    if speedup < MIN_ONE_ROUND_P50_SPEEDUP:
        failures.append(
            f"one-round p50 speedup {speedup:.2f}x for {GATE_TERMS}-term "
            f"conjunctive at 4 shards is below the required "
            f"{MIN_ONE_ROUND_P50_SPEEDUP:.1f}x"
        )
    return failures


def check_baseline(report: dict) -> list[str]:
    """Machine-dependent gate vs the committed baseline floor."""
    if not BASELINE_PATH.exists():
        return [f"no baseline at {BASELINE_PATH}"]
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    for shards, shard_cells in baseline["cells"].items():
        for terms, cell in shard_cells.items():
            floor = cell["one_round"]["qps"] * (1.0 - BASELINE_TOLERANCE)
            measured = report["cells"][shards][terms]["one_round"]["qps"]
            if measured < floor:
                failures.append(
                    f"{shards}/{terms} one-round at {measured:,.1f} qps is "
                    f"more than {BASELINE_TOLERANCE:.0%} below the "
                    f"baseline floor ({floor:,.1f})"
                )
    tau_floor = baseline["quality"]["kendall_tau_floor"]
    measured_tau = report["quality"]["kendall_tau_min"]
    if measured_tau < tau_floor:
        failures.append(
            f"minimum Kendall tau {measured_tau:.3f} fell below the "
            f"baseline floor {tau_floor:.3f}"
        )
    return failures


def format_report(report: dict) -> str:
    def cell(data: dict) -> str:
        return (
            f"{data['qps']:>8,.1f} qps  p50 {data['p50_ms']:8.2f} ms  "
            f"p99 {data['p99_ms']:8.2f} ms"
        )

    parameters = report["parameters"]
    lines = [
        "Multi-keyword serving "
        f"(docs={parameters['num_documents']}, k={parameters['top_k']}, "
        f"rtt={parameters['link_rtt_ms']:.0f}ms, binary codec, warm)",
    ]
    for shards, shard_cells in report["cells"].items():
        for terms, data in shard_cells.items():
            lines.append(
                f"  {shards:<8s}{terms:<7s} one-round: "
                f"{cell(data['one_round'])}"
            )
            lines.append(
                f"  {shards:<8s}{terms:<7s} legacy:    "
                f"{cell(data['legacy'])}  "
                f"(p50 speedup {data['p50_speedup']:.2f}x)"
            )
    quality = report["quality"]
    lines.append(
        f"  ranking quality vs exact eq-1: tau min "
        f"{quality['kendall_tau_min']:.3f}, mean "
        f"{quality['kendall_tau_mean']:.3f} over multi-term queries"
    )
    wire = report["wire"][CODEC_BINARY]
    lines.append(
        f"  wire ({GATE_TERMS} terms, binary): request "
        f"{wire['multi_search_request_bytes']}B, response "
        f"{wire['multi_search_response_bytes']}B, legacy total "
        f"{wire['legacy_total_bytes']}B"
    )
    return "\n".join(lines)


def test_multi_keyword_fastpath_gates():
    """Pytest entry point at smoke scale (the CI multi-keyword step)."""
    report = run_benchmark(num_documents=60, queries_per_cell=24)
    print(format_report(report))
    assert not check_gates(report), check_gates(report)


# ---------------------------------------------------------------------------
# ranking-quality ablation (Section VIII)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def searchable(bench_index):
    scheme = EfficientRSSE(PAPER_PARAMETERS)
    key = scheme.keygen()
    terms = {stem(word) for query in QUERIES for word in query}
    built = scheme.build_index(key, bench_index, terms=terms)
    return scheme, key, built


def test_multi_keyword_ranking_quality(benchmark, bench_index, searchable):
    scheme, key, built = searchable
    searcher = MultiKeywordSearcher(scheme)

    rows = []
    for query_words in QUERIES:
        terms = [stem(word) for word in query_words]
        query = searcher.make_query(key, terms)
        if len(terms) == 2:
            approx = benchmark.pedantic(
                searcher.search_ranked,
                args=(built.secure_index, query),
                rounds=3,
                iterations=1,
            )
        else:
            approx = searcher.search_ranked(built.secure_index, query)
        truth = true_conjunctive_ranking(bench_index, terms)
        tau = rank_correlation(approx, truth)
        overlap10 = top_k_overlap(truth, approx, 10)
        rows.append((len(terms), len(approx), tau, overlap10))

    lines = [
        "Multi-keyword ranked search: server-side OPM-sum ranking vs "
        "true equation-1 ranking",
        "",
        f"{'terms':>6} {'matches':>8} {'kendall tau':>12} "
        f"{'top-10 overlap':>15}",
    ]
    for terms_count, matches, tau, overlap in rows:
        lines.append(
            f"{terms_count:>6} {matches:>8} {tau:>12.3f} {overlap:>15.2f}"
        )
    # Contrast: the exact client over the basic scheme recovers the
    # true equation-1 order perfectly (at basic-scheme cost).
    basic = BasicRankedSSE(PAPER_PARAMETERS)
    basic_key = basic.keygen()
    two_terms = [stem(word) for word in QUERIES[1]]
    basic_secure = basic.build_index(
        basic_key, bench_index, terms=set(two_terms)
    )
    exact_client = ExactMultiKeywordClient(basic, bench_index.num_files)
    exact = exact_client.search_ranked(basic_key, basic_secure, two_terms)
    exact_truth = true_conjunctive_ranking(bench_index, two_terms)
    exact_tau = rank_correlation(exact, exact_truth)

    lines += [
        "",
        f"exact client (basic scheme, 2 terms): tau = {exact_tau:.3f} "
        "(per-keyword round trips + client-side eq-1 recombination)",
        "",
        "paper: 'new approaches still need to be designed to completely",
        "preserve the order when summing up scores' — the tau < 1 rows",
        "quantify exactly that gap; the exact client shows what it costs",
        "to close it.",
    ]
    write_result("ablation_multi_keyword.txt", "\n".join(lines))

    assert exact_tau == pytest.approx(1.0)

    single_tau = rows[0][2]
    assert single_tau > 0.95  # single keyword: order preserved exactly
    for _, matches, tau, _ in rows[1:]:
        if matches >= 10:
            assert tau > 0.3  # correlated but imperfect: the open problem


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="Multi-keyword fast-path benchmark and regression gate"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller workload for a fast CI smoke run",
    )
    parser.add_argument("--docs", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail if one-round qps regressed >30%% vs the committed "
        "baseline or Kendall tau fell below its recorded floor",
    )
    arguments = parser.parse_args()
    documents = arguments.docs or (60 if arguments.smoke else 200)
    per_cell = arguments.queries or (24 if arguments.smoke else 120)
    bench_report = run_benchmark(documents, per_cell)
    print(format_report(bench_report))
    problems = check_gates(bench_report)
    if arguments.check_baseline:
        problems += check_baseline(bench_report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        sys.exit(1)
    print("all gates passed")
