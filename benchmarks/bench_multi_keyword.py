"""Ablation — the future-work extension, measured.

Section VIII: summing per-keyword scores under an order-preserving
mapping does not exactly preserve the order of the summed true scores
(and the server cannot apply IDF weights).  This bench quantifies the
approximation: Kendall tau and top-k overlap between the server-side
OPM-sum ranking and the true equation-1 ranking, as the query grows
from 1 to 4 keywords.
"""

import pytest

from repro.core import BasicRankedSSE, EfficientRSSE, PAPER_PARAMETERS
from repro.core.multi_keyword import (
    ExactMultiKeywordClient,
    MultiKeywordSearcher,
    rank_correlation,
    top_k_overlap,
    true_conjunctive_ranking,
)
from repro.ir import stem

from conftest import write_result

QUERIES = (
    ["network"],
    ["network", "protocol"],
    ["network", "protocol", "packet"],
    ["network", "protocol", "packet", "server"],
)


@pytest.fixture(scope="module")
def searchable(bench_index):
    scheme = EfficientRSSE(PAPER_PARAMETERS)
    key = scheme.keygen()
    terms = {stem(word) for query in QUERIES for word in query}
    built = scheme.build_index(key, bench_index, terms=terms)
    return scheme, key, built


def test_multi_keyword_ranking_quality(benchmark, bench_index, searchable):
    scheme, key, built = searchable
    searcher = MultiKeywordSearcher(scheme)

    rows = []
    for query_words in QUERIES:
        terms = [stem(word) for word in query_words]
        query = searcher.make_query(key, terms)
        if len(terms) == 2:
            approx = benchmark.pedantic(
                searcher.search_ranked,
                args=(built.secure_index, query),
                rounds=3,
                iterations=1,
            )
        else:
            approx = searcher.search_ranked(built.secure_index, query)
        truth = true_conjunctive_ranking(bench_index, terms)
        tau = rank_correlation(approx, truth)
        overlap10 = top_k_overlap(truth, approx, 10)
        rows.append((len(terms), len(approx), tau, overlap10))

    lines = [
        "Multi-keyword ranked search: server-side OPM-sum ranking vs "
        "true equation-1 ranking",
        "",
        f"{'terms':>6} {'matches':>8} {'kendall tau':>12} "
        f"{'top-10 overlap':>15}",
    ]
    for terms_count, matches, tau, overlap in rows:
        lines.append(
            f"{terms_count:>6} {matches:>8} {tau:>12.3f} {overlap:>15.2f}"
        )
    # Contrast: the exact client over the basic scheme recovers the
    # true equation-1 order perfectly (at basic-scheme cost).
    basic = BasicRankedSSE(PAPER_PARAMETERS)
    basic_key = basic.keygen()
    two_terms = [stem(word) for word in QUERIES[1]]
    basic_secure = basic.build_index(
        basic_key, bench_index, terms=set(two_terms)
    )
    exact_client = ExactMultiKeywordClient(basic, bench_index.num_files)
    exact = exact_client.search_ranked(basic_key, basic_secure, two_terms)
    exact_truth = true_conjunctive_ranking(bench_index, two_terms)
    exact_tau = rank_correlation(exact, exact_truth)

    lines += [
        "",
        f"exact client (basic scheme, 2 terms): tau = {exact_tau:.3f} "
        "(per-keyword round trips + client-side eq-1 recombination)",
        "",
        "paper: 'new approaches still need to be designed to completely",
        "preserve the order when summing up scores' — the tau < 1 rows",
        "quantify exactly that gap; the exact client shows what it costs",
        "to close it.",
    ]
    write_result("ablation_multi_keyword.txt", "\n".join(lines))

    assert exact_tau == pytest.approx(1.0)

    single_tau = rows[0][2]
    assert single_tau > 0.95  # single keyword: order preserved exactly
    for _, matches, tau, _ in rows[1:]:
        if matches >= 10:
            assert tau > 0.3  # correlated but imperfect: the open problem
