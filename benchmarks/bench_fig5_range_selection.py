"""Fig. 5 — size selection of range R (equation 4 curves).

Paper: max/lambda = 0.06, M = 128, c = 1.1; LHS and RHS of equation 4
plotted over the range-size bit length k, giving |R| = 2**46 for the
5logM+12 bound, 2**34 for 5logM, 2**27 for 4logM.

Regenerates: the LHS/RHS series over k in [10, 60] for all three bound
variants and the crossover points.  Our crossovers sit a few bits above
the paper's (the paper leaves the RHS log base unspecified; see
EXPERIMENTS.md) while the spacing between variants matches exactly.
"""

from repro.core.range_selection import (
    BOUND_VARIANTS,
    minimal_range_bits,
    selection_series,
)

from conftest import write_result

RATIO = 0.06
M = 128
C = 1.1


def crossovers() -> dict[str, int]:
    return {
        variant: minimal_range_bits(RATIO, M, c=C, variant=variant)
        for variant in BOUND_VARIANTS
    }


def test_fig5_range_selection(benchmark):
    """Benchmark the owner's range-sizing procedure; regenerate Fig. 5."""
    result = benchmark(crossovers)

    lines = [
        "Fig. 5 — size selection of range R (eq. 4), max/lambda = 0.06, "
        "M = 128, c = 1.1",
        "",
        "crossover |R| per HGD-round bound (paper: 2^46, 2^34, 2^27):",
    ]
    paper = {"5logM+12": 46, "5logM": 34, "4logM": 27}
    for variant in BOUND_VARIANTS:
        lines.append(
            f"  {variant:>9}: 2^{result[variant]}   (paper: 2^{paper[variant]})"
        )
    lines.append("")
    lines.append("curves (k, LHS, RHS) for the tight bound:")
    for point in selection_series(RATIO, M, range(10, 61), c=C):
        marker = "  <-- admissible" if point.admissible else ""
        lines.append(
            f"  k={point.range_bits:>2}  lhs={point.lhs:.3e}  "
            f"rhs={point.rhs:.3e}{marker}"
        )
    write_result("fig5_range_selection.txt", "\n".join(lines))

    # Shape assertions: ordering and spacing of the three crossovers
    # match the paper exactly; absolute values sit within a few bits.
    assert result["5logM+12"] - result["5logM"] == 12
    assert 7 <= result["5logM"] - result["4logM"] <= 8
    assert 44 <= result["5logM+12"] <= 52
    assert 32 <= result["5logM"] <= 40
    assert 25 <= result["4logM"] <= 33
