"""Ablation — score dynamics (Section VII comparison).

The paper claims its OPM "gracefully handles" score dynamics because
the plaintext-to-bucket mapping never depends on other scores, while
the database-community baselines fit their transforms to the score
distribution and must rebuild when it drifts:

* RSSE insertions: 0 pre-existing entries remapped, ever;
* bucket OPE [18]: any unseen level -> full remap of the posting list;
* sampled OPE [16]: distribution drift past tolerance -> full retrain
  and remap.

Measures all three under the same insertion workload: documents whose
term frequencies shift the score distribution upward.
"""

from collections import Counter

import pytest

from repro.baselines.bucket_ope import BucketOpeMapper
from repro.baselines.sampled_ope import SampledOpeMapper
from repro.core import EfficientRSSE, IndexMaintainer, PAPER_PARAMETERS
from repro.corpus import generate_corpus
from repro.errors import DomainError
from repro.ir import Analyzer
from repro.ir.scoring import single_keyword_score

from conftest import NETWORK, write_result

INITIAL_DOCS = 120
INSERTED_DOCS = 40


@pytest.fixture(scope="module")
def staged_corpus():
    documents = generate_corpus(
        INITIAL_DOCS + INSERTED_DOCS, seed=77, vocabulary_size=600
    )
    return documents[:INITIAL_DOCS], documents[INITIAL_DOCS:]


def test_score_dynamics(benchmark, staged_corpus):
    initial, inserted = staged_corpus
    analyzer = Analyzer()

    # --- RSSE: build once, insert incrementally --------------------
    scheme = EfficientRSSE(PAPER_PARAMETERS)
    maintainer = IndexMaintainer(scheme, scheme.keygen())
    for document in initial:
        maintainer.add_document(document.doc_id, analyzer.analyze(document.text))
    maintainer.build()

    before = {
        address: list(entries)
        for address, entries in maintainer.secure_index.items()
    }

    def insert_all():
        reports = []
        for document in inserted:
            reports.append(
                maintainer.insert_document(
                    document.doc_id, analyzer.analyze(document.text)
                )
            )
        return reports

    reports = benchmark.pedantic(insert_all, rounds=1, iterations=1)
    rsse_written = sum(report.entries_written for report in reports)
    rsse_remapped = sum(report.entries_remapped for report in reports)

    # Invariant: every pre-existing entry is byte-identical.
    untouched = all(
        maintainer.secure_index.lookup(address)[: len(entries)] == entries
        for address, entries in before.items()
    )

    # --- baselines on the 'network' posting list ---------------------
    plain = maintainer.plain_index  # already contains initial + inserted
    initial_ids = {document.doc_id for document in initial}
    quantizer = maintainer.quantizer
    initial_levels = []
    updated_levels = []
    for posting in plain.posting_list(NETWORK):
        level = quantizer.quantize(
            single_keyword_score(
                posting.term_frequency, plain.file_length(posting.file_id)
            )
        )
        updated_levels.append(level)
        if posting.file_id in initial_ids:
            initial_levels.append(level)

    bucket = BucketOpeMapper.fit(b"dyn-bucket-key00", initial_levels, 1 << 46)
    bucket_unseen = [
        level for level in set(updated_levels)
        if level not in bucket.trained_levels
    ]
    bucket_rebuild = bucket.needs_rebuild(updated_levels)
    bucket_remapped = len(updated_levels) if bucket_rebuild else 0
    bucket_hard_failure = False
    for level in bucket_unseen[:1]:
        try:
            bucket.map_score(level, "new-doc")
        except DomainError:
            bucket_hard_failure = True

    sampled = SampledOpeMapper.fit(
        b"dyn-sample-key00", initial_levels, 128, 1 << 46
    )
    sampled_drift = sampled.distribution_drift(updated_levels)
    sampled_rebuild = sampled.needs_rebuild(updated_levels)
    sampled_remapped = len(updated_levels) if sampled_rebuild else 0

    lines = [
        "Score dynamics under insertion "
        f"({INITIAL_DOCS} initial docs + {INSERTED_DOCS} inserted)",
        "",
        f"{'scheme':<18} {'entries written':>15} {'entries remapped':>17}",
        f"{'rsse (paper)':<18} {rsse_written:>15} {rsse_remapped:>17}",
        f"{'bucket OPE [18]':<18} {'n/a':>15} {bucket_remapped:>17}"
        f"   rebuild={bucket_rebuild}, unseen levels={len(bucket_unseen)}, "
        f"hard failure on unseen={bucket_hard_failure}",
        f"{'sampled OPE [16]':<18} {'n/a':>15} {sampled_remapped:>17}"
        f"   rebuild={sampled_rebuild}, drift={sampled_drift:.3f}",
        "",
        f"rsse pre-existing entries byte-identical: {untouched}",
        f"level distribution before/after: "
        f"{dict(sorted(Counter(initial_levels).items()))} -> "
        f"{dict(sorted(Counter(updated_levels).items()))}",
    ]
    write_result("ablation_score_dynamics.txt", "\n".join(lines))

    assert rsse_remapped == 0
    assert untouched
    # The paper's comparison: at least one baseline is forced into a
    # full remap (or outright failure) by the same workload.
    assert bucket_rebuild or bucket_hard_failure or sampled_rebuild
