"""OPM fast-path perf harness — the regression gate for this layer.

Measures a full keyword build (map every posting of one posting list)
through two code paths that produce byte-identical output:

* **fast** — the shipped path: shared split-tree cache, batch
  :meth:`~repro.crypto.opm.OneToManyOpm.map_scores`, pre-keyed tape
  (one HMAC block per entry);
* **legacy** — an in-bench emulation of the pre-fast-path cached
  implementation: per-score bucket memoization but *no* shared split
  tree (every bucket miss pays the full descent's HGD draws) and a
  fresh ``CoinStream`` keying per mapped entry.

The report lands in ``benchmarks/results/BENCH_opm.json`` with
entries/sec for both paths, HGD draws per keyword build, and wall
times.  Two kinds of gates:

* machine-independent (always checked by ``test_opm_fastpath_gates``):
  the fast path must do >= 5x fewer HGD draws per keyword build and
  map >= 2x more entries/sec than the legacy path;
* machine-dependent (``--check-baseline``): fast entries/sec must not
  regress more than 30% below the committed
  ``benchmarks/results/BENCH_opm_baseline.json`` (a deliberately
  conservative floor so CI runners of different speeds all pass while
  a real regression — a lost cache — still trips it).

Run standalone (``python benchmarks/bench_opm_fastpath.py [--smoke]
[--check-baseline]``) or through pytest.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.crypto.opm import OneToManyOpm
from repro.crypto.opse import Interval, bucket_for_plaintext
from repro.crypto.stats import MappingStats
from repro.crypto.tape import CoinStream

SEED_KEY = bytes(range(32, 64))
DOMAIN = 128  # M, paper parameterization
RANGE_SIZE = 1 << 46  # |R| = 2**46
MIN_SPEEDUP = 2.0
MIN_DRAW_RATIO = 5.0
BASELINE_TOLERANCE = 0.30

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_opm_baseline.json"
REPORT_PATH = RESULTS_DIR / "BENCH_opm.json"


def make_workload(num_entries: int) -> list[tuple[int, bytes]]:
    """A posting list's worth of (level, file_id) pairs.

    Walks every level of the domain (stride 37 is coprime with 128, so
    the cycle covers all of them) — a full keyword build touches each
    quantized level, which is what the HGD-draw criterion is about.
    """
    items = []
    for i in range(num_entries):
        level = 1 + (i * 37) % DOMAIN
        items.append((level, b"file-%08d" % i))
    return items


def run_fast(items: list[tuple[int, bytes]]) -> tuple[float, MappingStats]:
    """Time a keyword build through the shipped fast path."""
    opm = OneToManyOpm(SEED_KEY, DOMAIN, RANGE_SIZE)
    start = time.perf_counter()
    values = opm.map_scores(items)
    elapsed = time.perf_counter() - start
    assert len(values) == len(items)
    return elapsed, opm.stats


def run_legacy(items: list[tuple[int, bytes]]) -> tuple[float, MappingStats]:
    """Time the same build through the pre-fast-path implementation.

    Mirrors the old cached ``map_score`` loop: per-score bucket
    memoization, no shared split tree, one fresh ``CoinStream`` keying
    per entry.  Output bytes are identical; only the work differs.
    """
    stats = MappingStats()
    domain = Interval(1, DOMAIN)
    range_ = Interval(1, RANGE_SIZE)
    bucket_cache: dict[int, object] = {}
    start = time.perf_counter()
    values = []
    for level, file_id in items:
        result = bucket_cache.get(level)
        if result is None:
            stats.bucket_cache_misses += 1
            result = bucket_for_plaintext(
                SEED_KEY, domain, range_, level, None, stats
            )
            bucket_cache[level] = result
        else:
            stats.bucket_cache_hits += 1
        coins = CoinStream(
            SEED_KEY,
            (result.bucket.low, result.bucket.high, 1, level, file_id),
        )
        values.append(coins.choice(result.bucket.low, result.bucket.high))
        stats.choices += 1
    elapsed = time.perf_counter() - start
    assert len(values) == len(items)
    return elapsed, stats


def check_equivalence(items: list[tuple[int, bytes]]) -> None:
    """Both paths must produce the same bytes before being timed."""
    opm = OneToManyOpm(SEED_KEY, DOMAIN, RANGE_SIZE)
    fast_values = opm.map_scores(items)
    domain = Interval(1, DOMAIN)
    range_ = Interval(1, RANGE_SIZE)
    for (level, file_id), fast_value in zip(items, fast_values):
        result = bucket_for_plaintext(SEED_KEY, domain, range_, level)
        coins = CoinStream(
            SEED_KEY,
            (result.bucket.low, result.bucket.high, 1, level, file_id),
        )
        legacy_value = coins.choice(result.bucket.low, result.bucket.high)
        if legacy_value != fast_value:
            raise AssertionError(
                f"fast path diverged at ({level}, {file_id!r}): "
                f"{fast_value} != {legacy_value}"
            )


def run_benchmark(num_entries: int, repeats: int = 3) -> dict:
    items = make_workload(num_entries)
    check_equivalence(items[: min(64, len(items))])

    fast_time = float("inf")
    legacy_time = float("inf")
    fast_stats = legacy_stats = None
    for _ in range(repeats):
        elapsed, stats = run_fast(items)
        if elapsed < fast_time:
            fast_time, fast_stats = elapsed, stats
        elapsed, stats = run_legacy(items)
        if elapsed < legacy_time:
            legacy_time, legacy_stats = elapsed, stats

    report = {
        "parameters": {
            "domain_size": DOMAIN,
            "range_size_log2": RANGE_SIZE.bit_length() - 1,
            "entries": num_entries,
            "repeats": repeats,
        },
        "fast": {
            "build_seconds": fast_time,
            "entries_per_sec": num_entries / fast_time,
            "hgd_draws_per_keyword": fast_stats.hgd_draws,
            "tape_blocks": fast_stats.tape_blocks,
            "stats": fast_stats.as_dict(),
        },
        "legacy": {
            "build_seconds": legacy_time,
            "entries_per_sec": num_entries / legacy_time,
            "hgd_draws_per_keyword": legacy_stats.hgd_draws,
            "stats": legacy_stats.as_dict(),
        },
        "speedup": legacy_time / fast_time,
        "hgd_draw_ratio": (
            legacy_stats.hgd_draws / max(1, fast_stats.hgd_draws)
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_gates(report: dict) -> list[str]:
    """Machine-independent gates; returns failure messages (empty = ok)."""
    failures = []
    if report["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"speedup {report['speedup']:.2f}x below required "
            f"{MIN_SPEEDUP:.1f}x"
        )
    if report["hgd_draw_ratio"] < MIN_DRAW_RATIO:
        failures.append(
            f"HGD draw ratio {report['hgd_draw_ratio']:.2f}x below "
            f"required {MIN_DRAW_RATIO:.1f}x"
        )
    return failures


def check_baseline(report: dict) -> list[str]:
    """Machine-dependent gate vs the committed baseline floor."""
    if not BASELINE_PATH.exists():
        return [f"no baseline at {BASELINE_PATH}"]
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["fast"]["entries_per_sec"] * (1.0 - BASELINE_TOLERANCE)
    measured = report["fast"]["entries_per_sec"]
    if measured < floor:
        return [
            f"fast path at {measured:,.0f} entries/sec is more than "
            f"{BASELINE_TOLERANCE:.0%} below the baseline floor "
            f"({floor:,.0f})"
        ]
    return []


def format_report(report: dict) -> str:
    fast = report["fast"]
    legacy = report["legacy"]
    return "\n".join(
        [
            "OPM fast path — keyword build "
            f"(M={DOMAIN}, |R|=2^{report['parameters']['range_size_log2']}, "
            f"{report['parameters']['entries']} entries)",
            f"  fast:   {fast['entries_per_sec']:>12,.0f} entries/sec  "
            f"({fast['build_seconds'] * 1e3:.1f} ms, "
            f"{fast['hgd_draws_per_keyword']} HGD draws, "
            f"{fast['tape_blocks']} tape blocks)",
            f"  legacy: {legacy['entries_per_sec']:>12,.0f} entries/sec  "
            f"({legacy['build_seconds'] * 1e3:.1f} ms, "
            f"{legacy['hgd_draws_per_keyword']} HGD draws)",
            f"  speedup: {report['speedup']:.2f}x   "
            f"HGD draw ratio: {report['hgd_draw_ratio']:.2f}x",
        ]
    )


def test_opm_fastpath_gates():
    """Pytest entry point at smoke scale (the CI perf-smoke step)."""
    report = run_benchmark(num_entries=2000, repeats=2)
    print(format_report(report))
    assert not check_gates(report), check_gates(report)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="OPM fast-path benchmark and regression gate"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller workload for a fast CI smoke run",
    )
    parser.add_argument("--entries", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail if fast entries/sec regressed >30%% vs the committed "
        "baseline",
    )
    arguments = parser.parse_args()
    entries = arguments.entries or (2000 if arguments.smoke else 10000)
    bench_report = run_benchmark(entries, arguments.repeats)
    print(format_report(bench_report))
    problems = check_gates(bench_report)
    if arguments.check_baseline:
        problems += check_baseline(bench_report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        sys.exit(1)
    print("all gates passed")
