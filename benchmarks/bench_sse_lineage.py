"""Ablation — the SSE lineage (paper Section VII related work).

The paper positions RSSE at the end of three generations of searchable
encryption, distinguished by search complexity:

* SWP [6]   — linear scan over *every word* of the collection;
* Goh [7]   — one Bloom test per *file*;
* Curtmola-style per-keyword index [10] — touch only the *posting list*
  (this repo's schemes).

This bench measures all three on the same collection and checks the
complexity ordering the paper's narrative relies on — plus the fact
that none of the predecessors rank, while RSSE returns a ranked top-k
from the same per-keyword index shape.
"""

import pytest

from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.corpus import generate_corpus
from repro.ir import Analyzer, InvertedIndex, stem
from repro.sse import GohIndex, SwpCollection, SwpScheme

from conftest import write_result

NUM_DOCS = 80
KEYWORD = "network"

_means: dict[str, float] = {}


@pytest.fixture(scope="module")
def corpus_views():
    documents = generate_corpus(NUM_DOCS, seed=55, vocabulary_size=500)
    analyzer = Analyzer()
    analyzed = {
        document.doc_id: analyzer.analyze_list(document.text)
        for document in documents
    }

    swp_scheme = SwpScheme(b"lineage-swp-key0")
    swp = SwpCollection(swp_scheme)
    for doc_id, words in analyzed.items():
        swp.add_document(doc_id, words)

    goh = GohIndex(b"lineage-goh-key0", false_positive_rate=0.001)
    for doc_id, words in analyzed.items():
        goh.add_document(doc_id, set(words))
    goh.finalize()

    plain = InvertedIndex()
    for doc_id, words in analyzed.items():
        plain.add_document(doc_id, words)
    rsse = EfficientRSSE(TEST_PARAMETERS)
    key = rsse.keygen()
    built = rsse.build_index(key, plain, terms={stem(KEYWORD)})

    return analyzed, swp_scheme, swp, goh, (rsse, key, built), plain


def test_lineage_swp_search(benchmark, corpus_views):
    _, swp_scheme, swp, _, _, plain = corpus_views
    trapdoor = swp_scheme.trapdoor(stem(KEYWORD))
    result = benchmark.pedantic(
        swp.search, args=(trapdoor,), rounds=3, iterations=1
    )
    assert set(result) == {
        posting.file_id for posting in plain.posting_list(stem(KEYWORD))
    }
    _means["swp"] = benchmark.stats["mean"]


def test_lineage_goh_search(benchmark, corpus_views):
    _, _, _, goh, _, plain = corpus_views
    trapdoor = goh.trapdoor(stem(KEYWORD))
    result = benchmark.pedantic(
        goh.search, args=(trapdoor,), rounds=5, iterations=1
    )
    expected = {
        posting.file_id for posting in plain.posting_list(stem(KEYWORD))
    }
    assert expected <= set(result)  # Bloom: no false negatives
    _means["goh"] = benchmark.stats["mean"]


def test_lineage_rsse_search(benchmark, corpus_views):
    _, _, _, _, (rsse, key, built), plain = corpus_views
    trapdoor = rsse.trapdoor(key, stem(KEYWORD))
    result = benchmark.pedantic(
        rsse.search_top_k,
        args=(built.secure_index, trapdoor, 10),
        rounds=5,
        iterations=1,
    )
    assert len(result) == 10
    _means["rsse"] = benchmark.stats["mean"]


def test_lineage_report(benchmark, corpus_views):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_means) < 3:
        pytest.skip("per-scheme benchmarks did not run")
    analyzed, _, swp, goh, _, plain = corpus_views
    total_words = swp.total_word_positions
    posting = plain.document_frequency(stem(KEYWORD))
    lines = [
        "SSE lineage: search work and cost for one keyword "
        f"({NUM_DOCS} docs, {total_words} word positions, posting list "
        f"{posting})",
        "",
        f"{'scheme':<28} {'work unit':<22} {'units':>8} {'mean time':>12}",
        f"{'SWP [6] linear scan':<28} {'word positions':<22} "
        f"{total_words:>8} {_means['swp'] * 1000:>9.2f} ms",
        f"{'Goh [7] Bloom per file':<28} {'files':<22} "
        f"{goh.num_files:>8} {_means['goh'] * 1000:>9.2f} ms",
        f"{'RSSE (this paper) top-10':<28} {'posting entries':<22} "
        f"{posting:>8} {_means['rsse'] * 1000:>9.2f} ms",
        "",
        "and only RSSE returns a *ranked* result.",
    ]
    write_result("ablation_sse_lineage.txt", "\n".join(lines))

    # The paper's complexity narrative, asserted on wall time.
    assert _means["swp"] > _means["goh"]
    assert _means["swp"] > _means["rsse"]
