"""Ablation — empirical validation of the range-size criterion (eq. 3-4).

Section IV-C's min-entropy argument picks |R| analytically.  This bench
checks the analysis against reality: sweep |R| from far too small to
the paper's 2^46 and measure actual ciphertext duplicates and flatness
after mapping the 'network' score multiset.  The eq.-4 threshold
should land comfortably inside the zero-duplicate regime — i.e. the
bound is safe (and visibly conservative, as worst-case bounds are).
"""

import pytest

from repro.analysis.flatness import flatness_report
from repro.core.range_selection import minimal_range_bits
from repro.crypto.opm import OneToManyOpm

from conftest import write_result

RANGE_BITS = (10, 14, 18, 22, 26, 30, 38, 46)


@pytest.fixture(scope="module")
def score_items(network_scores, paper_quantizer):
    return [
        (file_id, paper_quantizer.quantize(score))
        for file_id, score in network_scores.items()
    ]


def map_all(items, range_bits: int) -> list[int]:
    opm = OneToManyOpm(
        b"range-sweep-%d" % range_bits, 128, 1 << range_bits
    )
    return [opm.map_score(level, file_id) for file_id, level in items]


def test_range_size_sweep(benchmark, score_items, bench_index):
    rows = []
    for bits in RANGE_BITS:
        if bits == 46:
            values = benchmark(map_all, score_items, bits)
        else:
            values = map_all(score_items, bits)
        report = flatness_report(
            values, 1, 1 << bits, bins=min(128, 1 << bits)
        )
        rows.append(
            (bits, report.count - report.distinct, report.max_duplicates,
             report.ks_to_uniform)
        )

    levels = [level for _, level in score_items]
    raw_max_duplicates = max(levels.count(level) for level in set(levels))
    ratio = raw_max_duplicates / len(levels)
    threshold = minimal_range_bits(ratio, 128)

    lines = [
        "Range-size sweep: actual OPM ciphertext duplicates vs |R| "
        f"({len(score_items)} 'network' scores, M = 128)",
        f"raw max level duplicates: {raw_max_duplicates} "
        f"(ratio {ratio:.3f}); eq.-4 minimal range: 2^{threshold}",
        "",
        f"{'|R|':>6} {'duplicate values':>17} {'max multiplicity':>17} "
        f"{'KS-to-uniform':>14}",
    ]
    for bits, duplicates, multiplicity, ks in rows:
        marker = "  <- eq.4 regime" if bits >= threshold else ""
        lines.append(
            f"2^{bits:<4} {duplicates:>17} {multiplicity:>17} "
            f"{ks:>14.3f}{marker}"
        )
    write_result("ablation_range_sweep.txt", "\n".join(lines))

    by_bits = {bits: duplicates for bits, duplicates, _, _ in rows}
    # Duplicates must be (weakly) decreasing in |R| and hit zero well
    # before the analytical threshold — the bound is safe.
    duplicate_counts = [duplicates for _, duplicates, _, _ in rows]
    assert all(
        later <= earlier
        for earlier, later in zip(duplicate_counts, duplicate_counts[1:])
    )
    assert by_bits[46] == 0
    # Tiny ranges must visibly collide (sanity of the experiment).
    assert by_bits[RANGE_BITS[0]] > 0
