"""Ablation — the Section III-C trade-off table: basic vs efficient.

Measures, for the same corpus and keyword, what each retrieval protocol
costs: round trips, bytes moved, and estimated wall time under a
100 Mbit / 50 ms RTT link model — the quantitative version of the
paper's argument that the basic scheme either ships everything (one
round) or pays an extra round trip (two rounds), while RSSE does
server-ranked top-k in one round.
"""

import pytest

from repro.cloud import Channel, CloudServer, DataOwner, DataUser, LinkModel
from repro.core import BasicRankedSSE, EfficientRSSE, PAPER_PARAMETERS

from conftest import write_result

TOP_K = 10


@pytest.fixture(scope="module")
def deployments(bench_corpus):
    corpus = bench_corpus[: min(len(bench_corpus), 200)]

    rsse = EfficientRSSE(PAPER_PARAMETERS)
    rsse_owner = DataOwner(rsse)
    rsse_out = rsse_owner.setup(corpus)
    rsse_server = CloudServer(
        rsse_out.secure_index, rsse_out.blob_store, can_rank=True
    )
    rsse_channel = Channel(rsse_server.handle)
    rsse_user = DataUser(
        rsse, rsse_owner.authorize_user(), rsse_channel, rsse_owner.analyzer
    )

    basic = BasicRankedSSE(PAPER_PARAMETERS)
    basic_owner = DataOwner(basic)
    basic_out = basic_owner.setup(corpus)
    basic_server = CloudServer(
        basic_out.secure_index, basic_out.blob_store, can_rank=False
    )
    basic_channel = Channel(basic_server.handle)
    basic_user = DataUser(
        basic, basic_owner.authorize_user(), basic_channel,
        basic_owner.analyzer,
    )
    return (rsse_channel, rsse_user), (basic_channel, basic_user)


def test_protocol_tradeoff(benchmark, deployments):
    """Benchmark RSSE top-k retrieval; tabulate all three protocols."""
    (rsse_channel, rsse_user), (basic_channel, basic_user) = deployments
    link = LinkModel()

    benchmark.pedantic(
        rsse_user.search_ranked_topk, args=("network", TOP_K),
        rounds=3, iterations=1,
    )
    rsse_channel.stats.reset()
    rsse_user.search_ranked_topk("network", TOP_K)
    rsse_stats = (
        rsse_channel.stats.round_trips,
        rsse_channel.stats.total_bytes,
        link.estimate_seconds(rsse_channel.stats),
    )

    basic_channel.stats.reset()
    basic_user.search_all_and_rank("network")
    one_round_stats = (
        basic_channel.stats.round_trips,
        basic_channel.stats.total_bytes,
        link.estimate_seconds(basic_channel.stats),
    )

    basic_channel.stats.reset()
    basic_user.search_two_round_topk("network", TOP_K)
    two_round_stats = (
        basic_channel.stats.round_trips,
        basic_channel.stats.total_bytes,
        link.estimate_seconds(basic_channel.stats),
    )

    lines = [
        "Section III-C trade-off: retrieval protocols, top-k = "
        f"{TOP_K}, keyword 'network'",
        "",
        f"{'protocol':<24} {'round trips':>12} {'bytes':>12} "
        f"{'est. link time':>15}",
    ]
    for name, stats in [
        ("rsse one-round top-k", rsse_stats),
        ("basic one-round (all)", one_round_stats),
        ("basic two-round top-k", two_round_stats),
    ]:
        lines.append(
            f"{name:<24} {stats[0]:>12} {stats[1]:>12} {stats[2]:>14.3f}s"
        )
    write_result("ablation_basic_vs_rsse.txt", "\n".join(lines))

    # Paper's qualitative table, asserted:
    assert rsse_stats[0] == 1 and two_round_stats[0] == 2
    assert one_round_stats[1] > 3 * rsse_stats[1]
    assert two_round_stats[1] < one_round_stats[1]
