"""Fig. 4 — distribution of relevance scores for keyword "network".

Paper: 1000 files, scores encoded into 128 levels, histogram over 128
equally spaced containers; the distribution is strongly skewed (peak
around 60 duplicates in one container), which is what makes
deterministic score encryption attackable.

Regenerates: the 128-container histogram, its skew statistics, and the
``max/lambda`` ratio the paper reads off this figure (0.06).
"""

from collections import Counter

from repro.analysis.histogram import equal_width_histogram, histogram_summary, render_histogram
from repro.analysis.flatness import flatness_report

from conftest import NETWORK, write_result


def quantized_levels(network_scores, paper_quantizer) -> list[int]:
    return [
        paper_quantizer.quantize(score) for score in network_scores.values()
    ]


def test_fig4_score_distribution(
    benchmark, bench_index, network_scores, paper_quantizer
):
    """Benchmark scoring+quantization; regenerate the Fig. 4 histogram."""
    levels = benchmark(quantized_levels, network_scores, paper_quantizer)

    histogram = equal_width_histogram(levels, bins=128, low=1, high=128)
    summary = histogram_summary(histogram)
    report = flatness_report(levels, 1, 128, bins=128)
    duplicates = Counter(levels)
    max_duplicates = max(duplicates.values())
    ratio = max_duplicates / len(levels)

    lines = [
        "Fig. 4 — raw relevance score distribution, keyword 'network'",
        f"posting list length (paper: ~1000): {len(levels)}",
        f"score levels M = 128",
        f"max duplicates in one level (paper: ~60): {max_duplicates}",
        f"max/lambda ratio (paper: 0.06): {ratio:.3f}",
        f"peak container fraction: {summary['peak_fraction']:.3f}",
        f"non-empty containers of 128: {int(summary['nonzero_bins'])}",
        f"KS distance to uniform (skew measure): {report.ks_to_uniform:.3f}",
        "",
        "histogram (128 equally spaced containers):",
        render_histogram(histogram, max_width=50, label_every=16),
    ]
    write_result("fig4_score_distribution.txt", "\n".join(lines))

    # Shape assertions: the distribution must be visibly skewed, at any
    # corpus scale (duplicate mass grows with the posting-list length).
    assert max_duplicates >= max(4, len(levels) // 40)
    assert report.ks_to_uniform > 0.2
    assert summary["nonzero_bins"] < 128
