"""Fig. 6 — effectiveness of the one-to-many order-preserving mapping.

Paper: the same 'network' relevance score set mapped with |R| = 2**46
under two different random keys, histogrammed into 128 equally spaced
containers: both mappings come out flat, mutually different, and with
zero ciphertext duplicates.

Regenerates: both encrypted-value histograms plus flatness metrics, and
contrasts them against the skewed Fig. 4 input.
"""

from repro.analysis.flatness import flatness_report
from repro.analysis.histogram import equal_width_histogram, histogram_summary
from repro.crypto.opm import OneToManyOpm

from conftest import write_result

RANGE_SIZE = 1 << 46
KEY_A = b"fig6-random-key-A"
KEY_B = b"fig6-random-key-B"


def map_scores(key: bytes, items: list[tuple[str, int]]) -> list[int]:
    opm = OneToManyOpm(key, 128, RANGE_SIZE)
    return [opm.map_score(level, file_id) for file_id, level in items]


def test_fig6_opm_effectiveness(benchmark, network_scores, paper_quantizer):
    """Benchmark OPM-mapping the 'network' list; regenerate Fig. 6."""
    items = [
        (file_id, paper_quantizer.quantize(score))
        for file_id, score in network_scores.items()
    ]
    values_a = benchmark(map_scores, KEY_A, items)
    values_b = map_scores(KEY_B, items)

    # The paper histograms encrypted values over their observed range
    # ("putting encrypted values into 128 equally spaced containers");
    # we measure flatness the same way, and measure the *input* skew
    # identically for the comparison the figure makes against Fig. 4.
    raw_levels = [level for _, level in items]
    raw_report = flatness_report(raw_levels, min(raw_levels),
                                 max(raw_levels), bins=128)
    report_a = flatness_report(values_a, min(values_a), max(values_a),
                               bins=128)
    report_b = flatness_report(values_b, min(values_b), max(values_b),
                               bins=128)
    histogram_a = equal_width_histogram(values_a, bins=128,
                                        low=min(values_a), high=max(values_a))
    histogram_b = equal_width_histogram(values_b, bins=128,
                                        low=min(values_b), high=max(values_b))

    lines = [
        "Fig. 6 — OPM-encrypted score distribution, keyword 'network', "
        "|R| = 2^46, two random keys",
        f"scores mapped: {report_a.count}",
        f"raw input (Fig. 4) skew: KS-to-uniform="
        f"{raw_report.ks_to_uniform:.3f}, "
        f"normalized entropy={raw_report.normalized_entropy:.3f}",
        "",
        f"key A: duplicate values={report_a.count - report_a.distinct} "
        f"(paper: 0), KS-to-uniform={report_a.ks_to_uniform:.3f}, "
        f"normalized entropy={report_a.normalized_entropy:.3f}",
        f"key B: duplicate values={report_b.count - report_b.distinct} "
        f"(paper: 0), KS-to-uniform={report_b.ks_to_uniform:.3f}, "
        f"normalized entropy={report_b.normalized_entropy:.3f}",
        "",
        f"peak container count key A: {max(histogram_a)} "
        f"(raw Fig. 4 peak was far above the ~{report_a.count // 128} "
        "per-container average)",
        f"peak container count key B: {max(histogram_b)}",
        f"container histograms differ between keys: "
        f"{histogram_a != histogram_b}",
    ]
    write_result("fig6_opm_effectiveness.txt", "\n".join(lines))

    # Paper's claims: no duplicates at |R| = 2^46; distributions
    # flattened relative to the Fig. 4 input, and key-dependent.
    assert not report_a.has_duplicates
    assert not report_b.has_duplicates
    assert report_a.ks_to_uniform < raw_report.ks_to_uniform
    assert report_b.ks_to_uniform < raw_report.ks_to_uniform
    # The attack-relevant flattening: the raw levels carry a duplicate
    # (multiplicity) structure, the mapped values carry none.
    assert raw_report.max_duplicates > 1
    assert report_a.max_duplicates == report_b.max_duplicates == 1
    assert values_a != values_b
    assert histogram_a != histogram_b
