"""Shared fixtures for the paper-reproduction benchmark harness.

Scale control
-------------
The paper's experiments use a 1000-file RFC subset.  By default the
harness reproduces that scale; set ``REPRO_BENCH_DOCS`` to a smaller
number for a quick pass (the *shapes* hold at any scale, only the
absolute posting-list lengths change).

Every bench writes its figure/table series to
``benchmarks/results/<experiment>.txt`` so the regenerated data is
inspectable after a captured-output pytest run; EXPERIMENTS.md records
the paper-vs-measured comparison.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import EfficientRSSE, PAPER_PARAMETERS
from repro.corpus import generate_corpus
from repro.ir import Analyzer, InvertedIndex, ScoreQuantizer, stem
from repro.ir.scoring import score_posting_list

#: Documents in the benchmark corpus (paper: 1000).
BENCH_DOCS = int(os.environ.get("REPRO_BENCH_DOCS", "1000"))

#: The paper's worked-example keyword.
NETWORK = stem("network")

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benches write their regenerated figures/tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(name: str, text: str) -> None:
    """Persist one experiment's regenerated series."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text)


@pytest.fixture(scope="session")
def bench_corpus():
    """The paper-scale synthetic RFC corpus."""
    return generate_corpus(BENCH_DOCS, seed=2010, vocabulary_size=2000)


@pytest.fixture(scope="session")
def bench_index(bench_corpus):
    """Plaintext inverted index over the benchmark corpus."""
    analyzer = Analyzer()
    index = InvertedIndex()
    for document in bench_corpus:
        index.add_document(document.doc_id, analyzer.analyze(document.text))
    return index


@pytest.fixture(scope="session")
def network_scores(bench_index):
    """Equation-2 scores of the 'network' posting list (Fig. 4 input)."""
    return score_posting_list(bench_index, NETWORK)


@pytest.fixture(scope="session")
def paper_quantizer(network_scores) -> ScoreQuantizer:
    """128-level quantizer fitted to the 'network' scores (paper's M)."""
    return ScoreQuantizer.fit(network_scores.values(), levels=128,
                              headroom=1.05)


@pytest.fixture(scope="session")
def rsse_scheme() -> EfficientRSSE:
    """The efficient scheme at full paper parameters (|R| = 2**46)."""
    return EfficientRSSE(PAPER_PARAMETERS)


@pytest.fixture(scope="session")
def bench_obs():
    """Session-wide :class:`repro.obs.Obs` bundle for traced benches.

    Any bench that wants per-stage accounting requests this fixture
    and passes it down its serving stack (``obs=bench_obs``); at
    session end every recorded metric lands in
    ``results/BENCH_metrics.json`` so a CI run leaves an inspectable
    artifact next to the figure/table series.
    """
    from repro.obs import Obs

    obs = Obs.enabled()
    yield obs
    snapshot = obs.metrics.snapshot()
    if len(snapshot):
        write_result("BENCH_metrics.json", snapshot.to_json() + "\n")
