"""Ablation — window one-wayness of the one-to-many mapping.

Boldyreva et al.'s security yardstick for order-preserving encryption:
an order-preserving ciphertext necessarily reveals approximate
plaintext *position*, so the question is how much better than the
order-implied baseline an adversary can do.  This bench runs the
interpolation adversary (guess ``m ≈ c/N * M`` from the ciphertext
alone) against the OPM at the paper's parameters and reports success
rates across window sizes, next to the blind-guessing baseline and the
always-1.0 ordered-pair floor.
"""

import pytest

from repro.analysis.onewayness import (
    ordered_pair_advantage,
    window_onewayness_experiment,
)
from repro.crypto.opm import OneToManyOpm

from conftest import write_result

DOMAIN = 128
RANGE = 1 << 46
WINDOWS = (0, 1, 2, 4, 8, 16, 32)


@pytest.fixture(scope="module")
def opm():
    return OneToManyOpm(b"onewayness-key00", DOMAIN, RANGE)


def test_window_onewayness(benchmark, opm):
    plaintexts = list(range(1, DOMAIN + 1)) * 4

    def encryptor(level, file_id):
        return opm.map_score(level, file_id)

    result_w4 = benchmark.pedantic(
        window_onewayness_experiment,
        args=(encryptor, plaintexts, DOMAIN, RANGE, 4),
        rounds=1,
        iterations=1,
    )

    rows = []
    for window in WINDOWS:
        outcome = window_onewayness_experiment(
            encryptor, plaintexts, DOMAIN, RANGE, window
        )
        rows.append((window, outcome.success_rate, outcome.baseline,
                     outcome.advantage))

    pair_floor = ordered_pair_advantage(encryptor, 32, 96)

    lines = [
        "Window one-wayness of the OPM (interpolation adversary), "
        f"M = {DOMAIN}, |R| = 2^46",
        "",
        f"{'window':>7} {'success':>9} {'blind baseline':>15} "
        f"{'advantage':>10}",
    ]
    for window, success, baseline, advantage in rows:
        lines.append(
            f"{window:>7} {success:>9.3f} {baseline:>15.3f} "
            f"{advantage:>10.3f}"
        )
    lines += [
        "",
        f"ordered-pair visibility (by construction): {pair_floor:.2f}",
        "reading: the adversary locates plaintexts only to the coarse",
        "precision order-preservation inherently reveals; exact recovery",
        "stays rare because bucket boundaries are key-pseudo-random.",
    ]
    write_result("ablation_onewayness.txt", "\n".join(lines))

    exact = rows[0]
    assert exact[1] < 0.5          # exact recovery far from certain
    assert pair_floor == 1.0        # order always visible (by design)
    assert result_w4.advantage > 0  # position does leak — honestly reported
    # Success must be monotone in the window and reach 1.0 well before
    # the window covers the whole domain.
    successes = [row[1] for row in rows]
    assert successes == sorted(successes)
