"""Loopback network-serving benchmark — the regression gate for
``repro.cloud.netserve``.

Measures the full socket path (frame encode → TCP loopback → asyncio
front end → fork-worker pipe → ``CloudServer.handle`` → back) against
the in-process :class:`~repro.cloud.cluster.ClusterServer` reference
over an identical cold, decryption-heavy workload:

* **inprocess** — ``ClusterServer`` (4 shards, thread fan-out):
  sequential ``handle`` QPS and grouped ``handle_many`` batch QPS;
* **network pipelined** — one :class:`NetworkChannel`, requests
  pushed ``call_many``-deep so every shard worker process stays busy;
* **network threads** — one channel per client thread, sequential
  calls (the many-concurrent-users shape).

Responses are asserted byte-identical to the in-process reference
(both codecs) before anything is timed.

The throughput gate is CPU-aware: worker *processes* can only beat
the in-process thread fan-out when there are cores to run them on.
With >= 4 cores the best network cell must reach 1.5x the best
in-process cell; with 2-3 cores, 1.1x; on a single core the network
path cannot win (every byte crosses the loopback *and* a worker pipe
for zero added parallelism) and the gate becomes an overhead floor:
the socket path must still deliver >= 0.25x in-process throughput.
The core count is recorded in the report so a committed baseline is
never compared across machine shapes.

The report lands in ``benchmarks/results/BENCH_network.json``;
``--check-baseline`` adds a 30% floor against the committed
``BENCH_network_baseline.json`` (skipped with a warning when the core
counts differ).

Run standalone (``python benchmarks/bench_network_serving.py
[--smoke] [--check-baseline]``) or through pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cloud.cluster import ClusterServer
from repro.cloud.netserve import NetServer, NetworkChannel
from repro.cloud.protocol import CODEC_BINARY, CODEC_JSON, SearchRequest
from repro.cloud.storage import BlobStore
from repro.core import TEST_PARAMETERS, EfficientRSSE
from repro.ir.inverted_index import InvertedIndex
from repro.obs import Obs
from repro.obs.export import load_jsonl, validate_records

NUM_SHARDS = 4
TOP_K = 10
BLOB_BYTES = 2048
DOCS_PER_KEYWORD = 20
BASELINE_TOLERANCE = 0.30
TELEMETRY_QUERIES = 24

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_network_baseline.json"
REPORT_PATH = RESULTS_DIR / "BENCH_network.json"
TELEMETRY_PATH = RESULTS_DIR / "obs_network_cluster.jsonl"


def available_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def required_speedup(cores: int) -> float:
    """The network-vs-inprocess gate for this machine shape."""
    if cores >= 4:
        return 1.5
    if cores >= 2:
        return 1.1
    return 0.25


def build_deployment(keywords: int):
    """A cold, decryption-heavy deployment: every query decrypts a
    ``DOCS_PER_KEYWORD``-entry posting list and ships ``TOP_K`` blobs.
    """
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    index = InvertedIndex()
    blobs = BlobStore()
    for position in range(keywords * DOCS_PER_KEYWORD):
        doc_id = f"d{position:06d}"
        index.add_document(
            doc_id, [f"kw{position % keywords:03d}"] * 3
        )
        blobs.put(
            doc_id, (doc_id.encode("utf-8") * BLOB_BYTES)[:BLOB_BYTES]
        )
    built = scheme.build_index(key, index)
    return scheme, key, built.secure_index, blobs


def encode_requests(scheme, key, keywords, codec, repeats):
    encoded = [
        SearchRequest(
            trapdoor_bytes=scheme.trapdoor(key, keyword).serialize(),
            top_k=TOP_K,
        ).to_bytes(codec)
        for keyword in keywords
    ]
    return [encoded[i % len(encoded)] for i in range(repeats)]


def check_equivalence(cluster, channel, requests) -> None:
    """The socket path must be byte-identical to the in-process path."""
    for request_bytes in requests:
        if channel.call(request_bytes) != cluster.handle(request_bytes):
            raise AssertionError(
                "network serving diverged from the in-process reference"
            )


def time_sequential(handler, requests) -> float:
    start = time.perf_counter()
    for request_bytes in requests:
        handler(request_bytes)
    return len(requests) / (time.perf_counter() - start)


def time_batches(handler_many, requests, batch_size: int) -> float:
    start = time.perf_counter()
    for begin in range(0, len(requests), batch_size):
        handler_many(requests[begin : begin + batch_size])
    return len(requests) / (time.perf_counter() - start)


def time_threaded_clients(
    host: str, port: int, requests, num_threads: int
) -> float:
    """Each thread runs its own connection over a slice of the load."""
    slices = [requests[i::num_threads] for i in range(num_threads)]
    barrier = threading.Barrier(num_threads + 1)

    def client(batch):
        with NetworkChannel(host, port) as channel:
            barrier.wait()
            for request_bytes in batch:
                channel.call(request_bytes)

    threads = [
        threading.Thread(target=client, args=(piece,), daemon=True)
        for piece in slices
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return len(requests) / (time.perf_counter() - start)


def dump_cluster_telemetry(secure_index, blobs, workload) -> dict:
    """Post-timing telemetry pass: the merged cluster artifact.

    Served on a *separate*, obs-enabled server so the timed cells
    above keep measuring the obs-free path (the overhead guard for
    obs lives in the test suite, not here).  Dumps the merged
    frontend + per-worker JSONL to ``obs_network_cluster.jsonl`` and
    schema-checks it before returning a summary for the report.
    """
    obs = Obs.enabled()
    with NetServer(
        secure_index, blobs, can_rank=True, num_shards=NUM_SHARDS, obs=obs
    ) as server, NetworkChannel(server.host, server.port) as channel:
        for request_bytes in workload[:TELEMETRY_QUERIES]:
            channel.call(request_bytes)
        artifact = server.export_cluster_jsonl()
    problems = validate_records(artifact)
    if problems:
        raise AssertionError(
            f"merged cluster artifact failed schema check: {problems}"
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    TELEMETRY_PATH.write_text(artifact)
    dump = load_jsonl(artifact)
    workers = sorted(
        {
            str(span.attrs["worker"])
            for span in dump.spans
            if "worker" in span.attrs
        }
    )
    return {
        "path": str(TELEMETRY_PATH.relative_to(RESULTS_DIR.parent)),
        "queries": TELEMETRY_QUERIES,
        "spans": len(dump.spans),
        "metric_points": len(dump.metrics),
        "leakage_events": len(dump.leakage),
        "workers": workers,
    }


def run_benchmark(
    keywords: int, queries: int, batch_size: int = 32
) -> dict:
    scheme, key, secure_index, blobs = build_deployment(keywords)
    names = [f"kw{i:03d}" for i in range(keywords)]
    workload = encode_requests(scheme, key, names, CODEC_BINARY, queries)
    golden = encode_requests(
        scheme, key, names[: min(8, keywords)], CODEC_JSON, 8
    ) + encode_requests(
        scheme, key, names[: min(8, keywords)], CODEC_BINARY, 8
    )

    cells: dict[str, float] = {}
    with ClusterServer(
        secure_index,
        blobs,
        can_rank=True,
        num_shards=NUM_SHARDS,
        log_capacity=256,
    ) as cluster:
        with NetServer(
            secure_index, blobs, can_rank=True, num_shards=NUM_SHARDS
        ) as server, NetworkChannel(server.host, server.port) as channel:
            check_equivalence(cluster, channel, golden)
            cells["network_pipelined_qps"] = time_batches(
                channel.call_many, workload, batch_size
            )
            cells["network_threads_qps"] = time_threaded_clients(
                server.host, server.port, workload, NUM_SHARDS
            )
        cells["inprocess_sequential_qps"] = time_sequential(
            cluster.handle, workload
        )
        cells["inprocess_batch_qps"] = time_batches(
            cluster.handle_many, workload, batch_size
        )

    telemetry = dump_cluster_telemetry(secure_index, blobs, workload)

    cores = available_cores()
    network_best = max(
        cells["network_pipelined_qps"], cells["network_threads_qps"]
    )
    inprocess_best = max(
        cells["inprocess_sequential_qps"], cells["inprocess_batch_qps"]
    )
    report = {
        "parameters": {
            "keywords": keywords,
            "queries": queries,
            "batch_size": batch_size,
            "num_shards": NUM_SHARDS,
            "top_k": TOP_K,
            "blob_bytes": BLOB_BYTES,
            "docs_per_keyword": DOCS_PER_KEYWORD,
        },
        "cores": cores,
        "cells": cells,
        "network_best_qps": network_best,
        "inprocess_best_qps": inprocess_best,
        "network_speedup": network_best / inprocess_best,
        "required_speedup": required_speedup(cores),
        "telemetry": telemetry,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_gates(report: dict) -> list[str]:
    """CPU-aware throughput gate; returns failure messages (empty = ok)."""
    failures = []
    measured = report["network_speedup"]
    needed = report["required_speedup"]
    if measured < needed:
        failures.append(
            f"network serving at {measured:.2f}x the in-process path is "
            f"below the {needed:.2f}x gate for {report['cores']} core(s)"
        )
    return failures


def check_baseline(report: dict) -> list[str]:
    """30% floor vs the committed baseline (same machine shape only)."""
    if not BASELINE_PATH.exists():
        return [f"no baseline at {BASELINE_PATH}"]
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline["cores"] != report["cores"]:
        print(
            f"note: baseline recorded on {baseline['cores']} core(s), "
            f"running on {report['cores']} — absolute-QPS floor skipped"
        )
        return []
    failures = []
    for cell in ("network_pipelined_qps", "inprocess_batch_qps"):
        floor = baseline["cells"][cell] * (1.0 - BASELINE_TOLERANCE)
        measured = report["cells"][cell]
        if measured < floor:
            failures.append(
                f"{cell} at {measured:,.0f} qps is more than "
                f"{BASELINE_TOLERANCE:.0%} below the baseline floor "
                f"({floor:,.0f})"
            )
    return failures


def format_report(report: dict) -> str:
    parameters = report["parameters"]
    cells = report["cells"]
    return "\n".join(
        [
            "Network serving "
            f"(keywords={parameters['keywords']}, "
            f"queries={parameters['queries']}, "
            f"shards={parameters['num_shards']}, "
            f"cores={report['cores']})",
            "  network  pipelined: "
            f"{cells['network_pipelined_qps']:>9,.0f} qps",
            "  network  threads:   "
            f"{cells['network_threads_qps']:>9,.0f} qps",
            "  inproc   sequential:"
            f"{cells['inprocess_sequential_qps']:>9,.0f} qps",
            "  inproc   batch:     "
            f"{cells['inprocess_batch_qps']:>9,.0f} qps",
            f"  network vs in-process: {report['network_speedup']:.2f}x "
            f"(gate {report['required_speedup']:.2f}x "
            f"at {report['cores']} core(s))",
            "  cluster telemetry:   "
            f"{report['telemetry']['spans']} spans, "
            f"{report['telemetry']['metric_points']} metric points, "
            f"{report['telemetry']['leakage_events']} leakage events "
            f"from workers {report['telemetry']['workers']} "
            f"-> {report['telemetry']['path']}",
        ]
    )


def test_network_serving_gates():
    """Pytest entry point at smoke scale (the CI network-smoke step)."""
    report = run_benchmark(keywords=8, queries=160)
    print(format_report(report))
    assert not check_gates(report), check_gates(report)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="Loopback network-serving benchmark and regression gate"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller workload for a fast CI smoke run",
    )
    parser.add_argument("--keywords", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail if qps regressed >30%% vs the committed baseline "
        "(same core count only)",
    )
    arguments = parser.parse_args()
    keyword_count = arguments.keywords or (8 if arguments.smoke else 16)
    query_count = arguments.queries or (160 if arguments.smoke else 640)
    bench_report = run_benchmark(keyword_count, query_count)
    print(format_report(bench_report))
    problems = check_gates(bench_report)
    if arguments.check_baseline:
        problems += check_baseline(bench_report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        sys.exit(1)
    print("all gates passed")
