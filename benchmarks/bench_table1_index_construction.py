"""Table I — index construction overhead for 1000 RFC files.

Paper (per-keyword, 1000-entry posting list):
  list size        12.414 KB
  build time       5.44 s, of which the raw (unencrypted) inverted
                   index costs 2.31 s — the one-to-many mapping
                   (~70 ms per entry in their C+MATLAB stack, no bucket
                   reuse) dominates construction.

Regenerates: per-keyword list size and build time for the 'network'
posting list at paper parameters, split into raw scoring, OPM mapping
(uncached, the paper's regime), and entry encryption, plus the cached
figure our library uses in production.
"""

import time

import pytest

from repro.core.secure_index import encrypt_entry
from repro.crypto.opm import OneToManyOpm
from repro.ir.scoring import single_keyword_score

from conftest import NETWORK, write_result


@pytest.fixture(scope="module")
def posting_items(bench_index, paper_quantizer):
    """(file_id, level) pairs of the 'network' posting list."""
    items = []
    for posting in bench_index.posting_list(NETWORK):
        score = single_keyword_score(
            posting.term_frequency, bench_index.file_length(posting.file_id)
        )
        items.append((posting.file_id, paper_quantizer.quantize(score)))
    return items


def test_table1_per_keyword_build(benchmark, rsse_scheme, bench_index,
                                  paper_quantizer, posting_items):
    """Benchmark building one full per-keyword secure posting list."""
    key = rsse_scheme.keygen()
    built = rsse_scheme.build_index(
        key, bench_index, quantizer=paper_quantizer, terms={NETWORK}
    )
    list_bytes = built.secure_index.size_bytes()
    entries = len(posting_items)

    def build_once():
        fresh_key = rsse_scheme.keygen()
        return rsse_scheme.build_index(
            fresh_key, bench_index, quantizer=paper_quantizer,
            terms={NETWORK},
        )

    benchmark.pedantic(build_once, rounds=3, iterations=1)
    cached_build_seconds = benchmark.stats["mean"]

    # Timing breakdown measured directly (mean over the full list).
    key2 = rsse_scheme.keygen()
    trapdoor = rsse_scheme.trapdoor(key2, NETWORK)

    start = time.perf_counter()
    for posting in bench_index.posting_list(NETWORK):
        paper_quantizer.quantize(
            single_keyword_score(
                posting.term_frequency,
                bench_index.file_length(posting.file_id),
            )
        )
    raw_seconds = time.perf_counter() - start

    opm_uncached = OneToManyOpm(
        b"table1-key-0001", rsse_scheme.params.score_levels,
        rsse_scheme.params.range_size, cache_buckets=False,
    )
    start = time.perf_counter()
    opm_values = {
        file_id: opm_uncached.map_score(level, file_id)
        for file_id, level in posting_items
    }
    opm_uncached_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for file_id, level in posting_items:
        encrypt_entry(
            rsse_scheme.layout,
            trapdoor.list_key,
            file_id,
            rsse_scheme.encode_score_field(opm_values[file_id]),
        )
    encryption_seconds = time.perf_counter() - start

    uncached_total = raw_seconds + opm_uncached_seconds + encryption_seconds
    lines = [
        "Table I — index construction, per-keyword posting list 'network'",
        f"number of files: {bench_index.num_files} (paper: 1000)",
        f"posting list entries: {entries}",
        "",
        f"per-keyword list size: {list_bytes / 1024:.3f} KB "
        "(paper: 12.414 KB)",
        f"per-keyword build time, cached buckets: "
        f"{cached_build_seconds:.3f} s",
        f"per-keyword build time, uncached (paper regime): "
        f"{uncached_total:.3f} s (paper: 5.44 s)",
        "",
        "uncached breakdown:",
        f"  raw scoring/quantization: {raw_seconds:.3f} s "
        "(paper raw index: 2.31 s)",
        f"  one-to-many mapping:      {opm_uncached_seconds:.3f} s "
        f"({opm_uncached_seconds / entries * 1000:.2f} ms/entry; "
        "paper: ~70 ms/entry)",
        f"  entry encryption:         {encryption_seconds:.3f} s",
        "",
        "paper shape check: OPM dominates uncached construction: "
        f"{opm_uncached_seconds > raw_seconds + encryption_seconds}",
    ]
    write_result("table1_index_construction.txt", "\n".join(lines))

    assert entries > 0
    assert list_bytes > 0
    # The paper's headline shape: the OPM is the dominant cost of
    # (uncached) secure-index construction.
    assert opm_uncached_seconds > raw_seconds
