"""Query-serving throughput harness — the regression gate for the
serving fast path.

Measures the full byte-in/byte-out query path (``CloudServer.handle``
and ``ClusterServer.handle_many``) across the dimensions the serving
overhaul touches:

* **warm vs. legacy-warm** — the shipped warm path (ranked LRU cache:
  top-k is an O(k) slice of a list pre-sorted at fill time) against an
  in-bench emulation of the pre-overhaul warm path (cached *unranked*
  matches, a full ``rank_all`` whose result was then discarded for a
  second ``top_k`` pass, JSON framing).  Responses are asserted
  byte-identical before anything is timed.
* **cold, JSON vs. binary** — the same fresh-decrypt query served
  through both wire codecs: JSON+hex (the bandwidth-accounting
  reference) and the length-prefixed binary framing.
* **cluster cells** — cold/warm x JSON/binary x 1/4 shards, with QPS
  measured through the grouped batch fan-out
  (``handle_many``) and p50/p99 latency from per-request dispatch.

The report lands in ``benchmarks/results/BENCH_serving.json``.  Gates:

* machine-independent (always checked by
  ``test_serving_throughput_gates``): warm throughput >= 3x the legacy
  warm path, and cold throughput with the binary codec >= 1.5x cold
  JSON;
* machine-dependent (``--check-baseline``): warm-binary and
  cold-binary QPS must not regress more than 30% below the committed
  ``benchmarks/results/BENCH_serving_baseline.json`` floor.

Run standalone (``python benchmarks/bench_serving_throughput.py
[--smoke] [--check-baseline]``) or through pytest.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cloud.cluster import ClusterServer
from repro.cloud.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    SearchRequest,
    SearchResponse,
    peek_kind,
)
from repro.cloud.server import CloudServer
from repro.cloud.storage import BlobStore
from repro.core import TEST_PARAMETERS, EfficientRSSE
from repro.core.results import ServerMatch
from repro.core.secure_index import decrypt_posting_list
from repro.core.trapdoor import Trapdoor
from repro.corpus.workload import zipf_queries
from repro.ir.inverted_index import InvertedIndex
from repro.ir.topk import rank_all, top_k

MIN_WARM_SPEEDUP = 3.0
MIN_COLD_CODEC_SPEEDUP = 1.5
BASELINE_TOLERANCE = 0.30
TOP_K = 10
BLOB_BYTES = 4096
WARM_KEYWORDS = 8

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_serving_baseline.json"
REPORT_PATH = RESULTS_DIR / "BENCH_serving.json"


class LegacyWarmServer:
    """The pre-overhaul warm query path, reproduced for comparison.

    Mirrors what ``CloudServer`` did before the serving overhaul: the
    cache stored *unranked* decrypted matches, ``_handle_search`` ran a
    full ``rank_all`` whose result was discarded before a second
    ``top_k`` pass re-decoded every OPM score, and the only wire
    framing was JSON+hex.  Output bytes are identical to the shipped
    path (same tie-breaks, same codec); only the work differs.
    """

    def __init__(self, secure_index, blob_store: BlobStore):
        self._index = secure_index
        self._blobs = blob_store
        self._cache: dict[bytes, list[ServerMatch]] = {}

    def handle(self, request_bytes: bytes) -> bytes:
        peek_kind(request_bytes)  # pre-overhaul: full JSON parse
        request = SearchRequest.from_bytes(request_bytes)
        trapdoor = Trapdoor.deserialize(request.trapdoor_bytes)
        matches = self._cache.get(trapdoor.address)
        if matches is None:
            entries = self._index.lookup(trapdoor.address)
            matches = [
                ServerMatch(file_id=file_id, score_field=score_field)
                for file_id, score_field in decrypt_posting_list(
                    self._index.layout, trapdoor.list_key, entries or []
                )
            ]
            self._cache[trapdoor.address] = matches
        ordered = rank_all(matches, key=lambda match: match.opm_value())
        if request.top_k is not None:
            ordered = top_k(
                matches,
                request.top_k,
                key=lambda match: match.opm_value(),
            )
        returned = []
        payloads = []
        for match in ordered:
            blob = self._blobs.get_optional(match.file_id)
            if blob is None:
                continue
            returned.append(match)
            payloads.append((match.file_id, blob))
        # The curious-server bookkeeping the real path pays too.
        _observation = (
            trapdoor.address,
            tuple(match.file_id for match in matches),
            tuple(match.score_field for match in matches),
            tuple(match.file_id for match in returned),
        )
        response_matches = tuple(
            (match.file_id, match.score_field) for match in returned
        )
        return SearchResponse(
            matches=response_matches, files=tuple(payloads)
        ).to_bytes()


def build_deployment(posting_length: int, cold_keywords: int):
    """An efficient-scheme deployment sized for the serving workload.

    ``WARM_KEYWORDS`` hot keywords each match every document (long
    posting lists: the ranking cost a warm query used to re-pay), and
    ``cold_keywords`` rare keywords each match 10 documents (short
    lists: the cold cells measure framing cost, not decryption cost).
    """
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    index = InvertedIndex()
    blobs = BlobStore()
    num_documents = max(posting_length, 10 * cold_keywords)
    for position in range(num_documents):
        doc_id = f"d{position:06d}"
        terms = []
        for hot in range(WARM_KEYWORDS):
            terms.extend([f"hot{hot}"] * (1 + (position + hot) % 7))
        if position < 10 * cold_keywords:
            # Exactly 10 documents per cold keyword at any scale, so
            # the cold cells measure framing cost, not list length.
            terms.extend([f"cold{position // 10}"] * 2)
        index.add_document(doc_id, terms)
        blobs.put(doc_id, (doc_id.encode("utf-8") * BLOB_BYTES)[:BLOB_BYTES])
    built = scheme.build_index(key, index)
    return scheme, key, built.secure_index, blobs


def encode_requests(scheme, key, keywords, codec, repeats, seed=2010):
    """Pre-encode ``repeats`` search requests over a Zipfian draw.

    Uses the shared deterministic workload generator
    (:func:`repro.corpus.workload.zipf_queries`), so the keyword
    popularity skew matches the other serving benches and two runs see
    the identical sequence.
    """
    encoded = {
        keyword: SearchRequest(
            trapdoor_bytes=scheme.trapdoor(key, keyword).serialize(),
            top_k=TOP_K,
        ).to_bytes(codec)
        for keyword in keywords
    }
    return [
        encoded[keyword]
        for keyword in zipf_queries(keywords, repeats, seed=seed)
    ]


def percentile(sorted_latencies: list[float], q: float) -> float:
    index = min(
        len(sorted_latencies) - 1,
        int(round(q * (len(sorted_latencies) - 1))),
    )
    return sorted_latencies[index]


def time_handler(handler, requests) -> dict:
    """Serve every request through ``handler``; QPS + latency summary."""
    latencies = []
    start = time.perf_counter()
    for request_bytes in requests:
        began = time.perf_counter()
        handler(request_bytes)
        latencies.append(time.perf_counter() - began)
    total = time.perf_counter() - start
    latencies.sort()
    return {
        "queries": len(requests),
        "qps": len(requests) / total,
        "p50_ms": percentile(latencies, 0.50) * 1e3,
        "p99_ms": percentile(latencies, 0.99) * 1e3,
    }


def time_batches(cluster: ClusterServer, requests, batch_size: int) -> float:
    """QPS through the grouped batch fan-out (``handle_many``)."""
    start = time.perf_counter()
    for begin in range(0, len(requests), batch_size):
        cluster.handle_many(requests[begin : begin + batch_size])
    return len(requests) / (time.perf_counter() - start)


def measure_wire_sizes(scheme, key, secure_index, blobs) -> dict:
    """Measured bytes-on-wire per codec (the docs codec table)."""
    sizes: dict[str, dict[str, int]] = {}
    for codec in (CODEC_JSON, CODEC_BINARY):
        server = CloudServer(secure_index, blobs, can_rank=True)
        request = SearchRequest(
            trapdoor_bytes=scheme.trapdoor(key, "hot0").serialize(),
            top_k=TOP_K,
        ).to_bytes(codec)
        response = server.handle(request)
        sizes[codec] = {
            "search_request_bytes": len(request),
            "search_response_bytes": len(response),
        }
    return sizes


def check_warm_equivalence(secure_index, blobs, requests) -> None:
    """Shipped warm path and legacy emulation must agree byte-for-byte."""
    fast = CloudServer(
        secure_index, blobs, can_rank=True, cache_searches=True
    )
    legacy = LegacyWarmServer(secure_index, blobs)
    for request_bytes in requests:
        if fast.handle(request_bytes) != legacy.handle(request_bytes):
            raise AssertionError(
                "ranked-cache fast path diverged from the legacy path"
            )


def run_benchmark(
    posting_length: int,
    warm_queries: int,
    cold_queries: int,
    cold_keywords: int = 32,
    batch_size: int = 32,
) -> dict:
    scheme, key, secure_index, blobs = build_deployment(
        posting_length, cold_keywords
    )
    hot = [f"hot{i}" for i in range(WARM_KEYWORDS)]
    cold = [f"cold{i}" for i in range(cold_keywords)]
    check_warm_equivalence(
        secure_index,
        blobs,
        encode_requests(scheme, key, hot, CODEC_JSON, 2 * len(hot)),
    )

    server_cells: dict[str, dict] = {"warm": {}, "cold": {}}
    for codec in (CODEC_JSON, CODEC_BINARY):
        warm_requests = encode_requests(
            scheme, key, hot, codec, warm_queries
        )
        server = CloudServer(
            secure_index,
            blobs,
            can_rank=True,
            cache_searches=True,
            log_capacity=256,
        )
        for request_bytes in dict.fromkeys(warm_requests):  # prime
            server.handle(request_bytes)
        server_cells["warm"][codec] = time_handler(
            server.handle, warm_requests
        )

        cold_requests = encode_requests(
            scheme, key, cold, codec, cold_queries
        )
        uncached = CloudServer(
            secure_index,
            blobs,
            can_rank=True,
            cache_searches=False,
            log_capacity=256,
        )
        server_cells["cold"][codec] = time_handler(
            uncached.handle, cold_requests
        )

    legacy = LegacyWarmServer(secure_index, blobs)
    legacy_requests = encode_requests(
        scheme, key, hot, CODEC_JSON, warm_queries
    )
    for request_bytes in dict.fromkeys(legacy_requests):  # prime
        legacy.handle(request_bytes)
    server_cells["warm"]["legacy_json"] = time_handler(
        legacy.handle, legacy_requests
    )

    cluster_cells: dict[str, dict] = {}
    for shards in (1, 4):
        cluster_cells[f"shards{shards}"] = {"warm": {}, "cold": {}}
        for temperature, cached, keywords, queries in (
            ("warm", True, hot, warm_queries),
            ("cold", False, cold, cold_queries),
        ):
            for codec in (CODEC_JSON, CODEC_BINARY):
                requests = encode_requests(
                    scheme, key, keywords, codec, queries
                )
                with ClusterServer(
                    secure_index,
                    blobs,
                    can_rank=True,
                    num_shards=shards,
                    cache_searches=cached,
                    log_capacity=256,
                ) as cluster:
                    if cached:
                        cluster.handle_many(list(dict.fromkeys(requests)))
                    cell = time_handler(cluster.handle, requests)
                    cell["batch_qps"] = time_batches(
                        cluster, requests, batch_size
                    )
                cluster_cells[f"shards{shards}"][temperature][codec] = cell

    warm_speedup = (
        server_cells["warm"][CODEC_BINARY]["qps"]
        / server_cells["warm"]["legacy_json"]["qps"]
    )
    cold_codec_speedup = (
        server_cells["cold"][CODEC_BINARY]["qps"]
        / server_cells["cold"][CODEC_JSON]["qps"]
    )
    report = {
        "parameters": {
            "posting_length": posting_length,
            "warm_queries": warm_queries,
            "cold_queries": cold_queries,
            "cold_keywords": cold_keywords,
            "top_k": TOP_K,
            "blob_bytes": BLOB_BYTES,
            "batch_size": batch_size,
        },
        "server": server_cells,
        "cluster": cluster_cells,
        "wire": measure_wire_sizes(scheme, key, secure_index, blobs),
        "warm_speedup": warm_speedup,
        "cold_codec_speedup": cold_codec_speedup,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_gates(report: dict) -> list[str]:
    """Machine-independent gates; returns failure messages (empty = ok)."""
    failures = []
    if report["warm_speedup"] < MIN_WARM_SPEEDUP:
        failures.append(
            f"warm speedup {report['warm_speedup']:.2f}x below required "
            f"{MIN_WARM_SPEEDUP:.1f}x"
        )
    if report["cold_codec_speedup"] < MIN_COLD_CODEC_SPEEDUP:
        failures.append(
            f"cold binary-codec speedup {report['cold_codec_speedup']:.2f}x "
            f"below required {MIN_COLD_CODEC_SPEEDUP:.1f}x"
        )
    return failures


def check_baseline(report: dict) -> list[str]:
    """Machine-dependent gate vs the committed baseline floor."""
    if not BASELINE_PATH.exists():
        return [f"no baseline at {BASELINE_PATH}"]
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    for temperature in ("warm", "cold"):
        floor = baseline["server"][temperature]["binary"]["qps"] * (
            1.0 - BASELINE_TOLERANCE
        )
        measured = report["server"][temperature]["binary"]["qps"]
        if measured < floor:
            failures.append(
                f"{temperature} binary path at {measured:,.0f} qps is more "
                f"than {BASELINE_TOLERANCE:.0%} below the baseline floor "
                f"({floor:,.0f})"
            )
    return failures


def format_report(report: dict) -> str:
    def cell(data: dict) -> str:
        return (
            f"{data['qps']:>9,.0f} qps  p50 {data['p50_ms']:6.3f} ms  "
            f"p99 {data['p99_ms']:6.3f} ms"
        )

    parameters = report["parameters"]
    lines = [
        "Serving throughput "
        f"(postings={parameters['posting_length']}, "
        f"k={parameters['top_k']}, blobs={parameters['blob_bytes']}B)",
        f"  warm  binary: {cell(report['server']['warm']['binary'])}",
        f"  warm  json:   {cell(report['server']['warm']['json'])}",
        f"  warm  legacy: {cell(report['server']['warm']['legacy_json'])}",
        f"  cold  binary: {cell(report['server']['cold']['binary'])}",
        f"  cold  json:   {cell(report['server']['cold']['json'])}",
    ]
    for shards, cells in report["cluster"].items():
        for temperature in ("warm", "cold"):
            for codec in ("binary", "json"):
                data = cells[temperature][codec]
                lines.append(
                    f"  {shards:<7s} {temperature} {codec:<6s}: "
                    f"{cell(data)}  batch {data['batch_qps']:>9,.0f} qps"
                )
    lines.append(
        f"  warm speedup vs legacy: {report['warm_speedup']:.2f}x   "
        f"cold binary vs json: {report['cold_codec_speedup']:.2f}x"
    )
    return "\n".join(lines)


def test_serving_throughput_gates():
    """Pytest entry point at smoke scale (the CI perf-smoke step)."""
    report = run_benchmark(
        posting_length=300,
        warm_queries=300,
        cold_queries=120,
        cold_keywords=16,
    )
    print(format_report(report))
    assert not check_gates(report), check_gates(report)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="Query-serving throughput benchmark and regression gate"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller workload for a fast CI smoke run",
    )
    parser.add_argument("--postings", type=int, default=None)
    parser.add_argument("--warm-queries", type=int, default=None)
    parser.add_argument("--cold-queries", type=int, default=None)
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail if warm/cold binary qps regressed >30%% vs the "
        "committed baseline",
    )
    arguments = parser.parse_args()
    postings = arguments.postings or (300 if arguments.smoke else 1500)
    warm = arguments.warm_queries or (300 if arguments.smoke else 1000)
    cold = arguments.cold_queries or (120 if arguments.smoke else 400)
    bench_report = run_benchmark(
        postings,
        warm,
        cold,
        cold_keywords=16 if arguments.smoke else 32,
    )
    print(format_report(bench_report))
    problems = check_gates(bench_report)
    if arguments.check_baseline:
        problems += check_baseline(bench_report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        sys.exit(1)
    print("all gates passed")
