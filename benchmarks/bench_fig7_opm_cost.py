"""Fig. 7 — time cost of a single one-to-many mapping operation.

Paper: mean of 100 trials, domain size M swept over [60, 260], range
|R| in {2**40, 2**46, ...}; the cost grows faster than logarithmic in M
(more binary-search rounds *and* costlier HGD calls) and grows with
|R|; at M = 128, |R| = 2**46 the paper's C+MATLAB code needs < 70 ms.

Regenerates: the (M, |R|) -> mean mapping time surface.  Buckets are
deliberately uncached so each call pays the full binary-search descent,
exactly what the paper times.
"""

import time

import pytest

from repro.crypto.opm import OneToManyOpm

from conftest import write_result

DOMAIN_SIZES = (64, 96, 128, 160, 192, 224, 256)
RANGE_BITS = (40, 46, 52)

_collected: dict[tuple[int, int], float] = {}


def single_mapping(opm: OneToManyOpm, level: int, trial: int) -> int:
    return opm.map_score(level, b"fig7-file-%d" % trial)


@pytest.mark.parametrize("range_bits", RANGE_BITS)
@pytest.mark.parametrize("domain_size", DOMAIN_SIZES)
def test_fig7_single_opm_mapping(benchmark, domain_size, range_bits):
    """One uncached OPM mapping at each (M, |R|) of the Fig. 7 sweep."""
    opm = OneToManyOpm(
        b"fig7-key-%d-%d" % (domain_size, range_bits),
        domain_size,
        1 << range_bits,
        cache_buckets=False,
    )
    counter = iter(range(10**9))

    def mapping():
        trial = next(counter)
        return single_mapping(opm, (trial % domain_size) + 1, trial)

    benchmark.pedantic(mapping, rounds=30, iterations=1, warmup_rounds=2)
    _collected[(domain_size, range_bits)] = benchmark.stats["mean"]


def test_fig7_report(benchmark):
    """Aggregate the sweep into the Fig. 7 series file."""
    # A trivial timed op keeps this collector inside --benchmark-only runs.
    benchmark.pedantic(time.perf_counter, rounds=1, iterations=1)
    if not _collected:
        pytest.skip("per-point benchmarks did not run")

    lines = [
        "Fig. 7 — single one-to-many mapping cost (mean seconds)",
        "paper shape: super-logarithmic growth in M; larger |R| costlier;",
        "paper absolute: <70 ms at M=128, |R|=2^46 (C+MATLAB)",
        "",
        "        " + "".join(f"|R|=2^{bits:<10}" for bits in RANGE_BITS),
    ]
    for domain_size in DOMAIN_SIZES:
        row = [f"M={domain_size:<5}"]
        for bits in RANGE_BITS:
            mean = _collected.get((domain_size, bits))
            row.append(f"{mean * 1000:>10.3f} ms " if mean else "      n/a ")
        lines.append(" ".join(row))

    write_result("fig7_opm_cost.txt", "\n".join(lines))

    # Shape assertion on the collected sweep, aggregated across range
    # sizes to damp per-point timer noise: cost grows clearly with M.
    small_total = sum(_collected[(DOMAIN_SIZES[0], bits)] for bits in RANGE_BITS)
    large_total = sum(_collected[(DOMAIN_SIZES[-1], bits)] for bits in RANGE_BITS)
    assert large_total > small_total * 1.5
