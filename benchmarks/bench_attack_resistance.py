"""Ablation — keyword re-identification attack (Section IV-A motivation).

Gives the curious server exact background knowledge of per-keyword
score-level distributions and measures how often it re-identifies the
keyword from the protected score values alone (posting lists
length-normalized so only score structure can leak):

* plaintext levels — full identification (upper bound);
* deterministic OPSE — full identification (the strawman's failure);
* one-to-many OPM — chance level (the paper's fix).
"""

from repro.analysis.attacks import run_identification_experiment
from repro.baselines.det_opse import DeterministicOpseScoring
from repro.crypto.opm import OneToManyOpm
from repro.crypto.prf import Prf
from repro.ir.scoring import single_keyword_score

from conftest import write_result

MASTER_KEY = b"attack-bench-key"
NUM_KEYWORDS = 12


def keyword_backgrounds(bench_index, paper_quantizer):
    """Per-keyword score-level lists for the most frequent keywords."""
    by_frequency = sorted(
        bench_index.vocabulary,
        key=bench_index.document_frequency,
        reverse=True,
    )
    background = {}
    for term in by_frequency[:NUM_KEYWORDS]:
        levels = [
            paper_quantizer.quantize(
                single_keyword_score(
                    posting.term_frequency,
                    bench_index.file_length(posting.file_id),
                )
            )
            for posting in bench_index.posting_list(term)
        ]
        background[term] = levels
    return background


def test_attack_resistance(benchmark, bench_index, paper_quantizer):
    """Run the attack against all three score protections."""
    background = keyword_backgrounds(bench_index, paper_quantizer)

    plaintext_result = run_identification_experiment(
        background, lambda term, level, file_id: level
    )

    det = DeterministicOpseScoring(MASTER_KEY, 128, 1 << 46)
    det_result = run_identification_experiment(
        background,
        lambda term, level, file_id: det.map_score(term, level, file_id),
    )

    prf = Prf(MASTER_KEY)
    opms = {
        term: OneToManyOpm(prf.derive_key(term), 128, 1 << 46)
        for term in background
    }

    def opm_encrypt(term, level, file_id):
        return opms[term].map_score(level, file_id)

    opm_result = benchmark.pedantic(
        run_identification_experiment,
        args=(background, opm_encrypt),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Keyword re-identification from protected scores "
        f"({NUM_KEYWORDS} keywords, equal-length lists)",
        "",
        f"{'protection':<22} {'accuracy':>9}  (chance = "
        f"{plaintext_result.chance:.2f})",
        f"{'plaintext levels':<22} {plaintext_result.accuracy:>9.2f}",
        f"{'deterministic OPSE':<22} {det_result.accuracy:>9.2f}",
        f"{'one-to-many OPM':<22} {opm_result.accuracy:>9.2f}",
    ]
    write_result("ablation_attack_resistance.txt", "\n".join(lines))

    # Comparative shape (real-corpus keywords share similar score
    # shapes, so absolute accuracy depends on corpus scale): the
    # deterministic protections leak far above chance, the OPM sits at
    # chance.
    assert plaintext_result.accuracy >= 4 * plaintext_result.chance
    assert det_result.accuracy >= 4 * det_result.chance
    assert opm_result.accuracy <= opm_result.chance + 0.1
    assert det_result.accuracy >= 3 * opm_result.accuracy
