"""Cluster scaling — search throughput versus shard count.

Serves a Zipf-distributed keyword workload (queries concentrate on hot
keywords, as real search traffic does) against the Table-1 synthetic
corpus, first through a single :class:`CloudServer` and then through
:class:`ClusterServer` at increasing shard counts.  Each shard call
pays a simulated per-request service latency
(``Channel(simulate_latency=True)``), so wall-clock throughput scales
with the number of shards that can be in flight at once — the quantity
a deployment actually buys with horizontal sharding.

Correctness is asserted, not assumed: every sharded response must be
byte-identical to the unsharded reference.  The headline acceptance
check is >= 2x throughput at 4 shards versus 1.

Also reports parallel index construction (build workers 1 vs 4) and
verifies the builds are byte-identical — determinism is what makes the
worker count a pure performance knob.
"""

import random
import time

import pytest

from repro.cloud import BlobStore, CloudServer, LinkModel, SearchRequest
from repro.cloud.cluster import ClusterServer
from repro.corpus.zipf import zipf_sample_words

from conftest import write_result

TOP_K = 10
NUM_QUERIES = 400
HOT_TERMS = 64
SHARD_COUNTS = (1, 2, 4, 8)
#: Modeled per-request service latency (intra-datacenter RTT scale).
SERVICE_LINK = LinkModel(rtt_seconds=0.004)


@pytest.fixture(scope="module")
def cluster_deployment(rsse_scheme, bench_index, paper_quantizer):
    """Key, built index, blobs and the Zipf query workload."""
    key = rsse_scheme.keygen()
    built = rsse_scheme.build_index(
        key, bench_index, quantizer=paper_quantizer, workers=4
    )
    blobs = BlobStore()
    for doc_id in bench_index.file_ids():
        blobs.put(doc_id, b"\xAB" * 512)
    hot = sorted(
        bench_index.vocabulary,
        key=lambda term: (-len(bench_index.posting_list(term)), term),
    )[:HOT_TERMS]
    rng = random.Random(2010)
    keywords = zipf_sample_words(hot, NUM_QUERIES, exponent=1.0, rng=rng)
    requests = [
        SearchRequest(
            trapdoor_bytes=rsse_scheme.trapdoor(key, term).serialize(),
            top_k=TOP_K,
        ).to_bytes()
        for term in keywords
    ]
    return key, built, blobs, requests


def test_search_throughput_scales_with_shards(cluster_deployment):
    """>= 2x throughput at 4 shards, byte-identical responses throughout.

    Two timed passes per shard count: a **cold** pass that pays the
    one-time posting-list decryptions (pure-Python crypto, serialized
    by the GIL regardless of shard count) and a **steady** pass over
    the same workload with the per-shard caches hot, where per-request
    cost is the modeled service latency plus response assembly.  The
    steady pass is the serving throughput a deployment scales by adding
    shards; the acceptance check applies to it.
    """
    _, built, blobs, requests = cluster_deployment

    reference_server = CloudServer(
        built.secure_index, blobs, can_rank=True
    )
    expected = [
        reference_server.handle(request) for request in requests
    ]

    lines = [
        "Cluster search throughput vs shard count",
        f"queries={NUM_QUERIES} hot_terms={HOT_TERMS} top_k={TOP_K} "
        f"service_rtt={SERVICE_LINK.rtt_seconds * 1000:.1f}ms",
        "",
        f"{'shards':>6} {'cold_s':>7} {'steady_s':>8} {'queries/s':>10} "
        f"{'speedup':>8} {'cache_hit%':>10}",
    ]
    throughput: dict[int, float] = {}
    for num_shards in SHARD_COUNTS:
        with ClusterServer(
            built.secure_index,
            blobs,
            can_rank=True,
            num_shards=num_shards,
            cache_searches=True,
            max_workers=16,
            link_model=SERVICE_LINK,
            simulate_latency=True,
        ) as cluster:
            start = time.perf_counter()
            responses = cluster.handle_many(requests)
            cold = time.perf_counter() - start
            assert responses == expected, (
                f"sharded responses diverged at {num_shards} shards (cold)"
            )
            hits_before = cluster.cache_hits
            start = time.perf_counter()
            responses = cluster.handle_many(requests)
            steady = time.perf_counter() - start
            assert responses == expected, (
                f"sharded responses diverged at {num_shards} shards (steady)"
            )
            hit_rate = (
                100.0
                * (cluster.cache_hits - hits_before)
                / len(requests)
            )
        throughput[num_shards] = len(requests) / steady
        lines.append(
            f"{num_shards:>6} {cold:>7.2f} {steady:>8.2f} "
            f"{throughput[num_shards]:>10.1f} "
            f"{throughput[num_shards] / throughput[SHARD_COUNTS[0]]:>7.2f}x "
            f"{hit_rate:>9.1f}%"
        )

    speedup = throughput[4] / throughput[1]
    lines += [
        "",
        f"4-shard steady-state speedup over 1 shard: {speedup:.2f}x",
    ]
    write_result("cluster_scaling.txt", "\n".join(lines) + "\n")
    print("\n".join(lines))
    assert speedup >= 2.0, (
        f"expected >= 2x throughput at 4 shards, got {speedup:.2f}x"
    )


def test_parallel_build_speed_and_determinism(
    rsse_scheme, bench_index, paper_quantizer
):
    """Report build wall time at 1 vs 4 workers; bytes must match."""
    key = rsse_scheme.keygen()
    timings = {}
    serialized = {}
    for workers in (1, 4):
        start = time.perf_counter()
        built = rsse_scheme.build_index(
            key, bench_index, quantizer=paper_quantizer, workers=workers
        )
        timings[workers] = time.perf_counter() - start
        serialized[workers] = built.secure_index.serialize()
    assert serialized[1] == serialized[4]
    lines = [
        "Parallel index construction (Table-1 corpus)",
        f"workers=1: {timings[1]:.2f}s",
        f"workers=4: {timings[4]:.2f}s",
        "builds byte-identical: yes",
    ]
    write_result("cluster_build_workers.txt", "\n".join(lines) + "\n")
    print("\n".join(lines))
