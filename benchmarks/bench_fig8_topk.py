"""Fig. 8 — time cost for top-k retrieval.

Paper: on the 1000-file index, the server's top-k search time (fetch
posting list, decrypt entries, rank-order) grows mildly with k and
stays under ~1.6 ms for k up to 300 (C implementation) — i.e. "almost
as efficient as on unencrypted data".

Regenerates: the k -> search time series on the efficient scheme's
'network' posting list, plus the plaintext-search reference at the same
k (the paper's implicit comparison).
"""

import pytest

from repro.baselines.plaintext import PlaintextRankedSearch

from conftest import NETWORK, write_result

K_VALUES = (1, 50, 100, 150, 200, 250, 300)

_collected: dict[str, dict[int, float]] = {"rsse": {}, "plaintext": {}}


@pytest.fixture(scope="module")
def searchable(rsse_scheme, bench_index):
    key = rsse_scheme.keygen()
    built = rsse_scheme.build_index(key, bench_index, terms={NETWORK})
    trapdoor = rsse_scheme.trapdoor(key, NETWORK)
    return rsse_scheme, built.secure_index, trapdoor


@pytest.mark.parametrize("k", K_VALUES)
def test_fig8_rsse_topk(benchmark, searchable, k):
    """Server-side top-k over OPM-encrypted scores."""
    scheme, secure_index, trapdoor = searchable
    result = benchmark.pedantic(
        scheme.search_top_k,
        args=(secure_index, trapdoor, k),
        rounds=10,
        iterations=1,
        warmup_rounds=1,
    )
    assert len(result) == min(k, len(scheme.search(secure_index, trapdoor)))
    _collected["rsse"][k] = benchmark.stats["mean"]


@pytest.mark.parametrize("k", K_VALUES)
def test_fig8_plaintext_topk(benchmark, bench_index, k):
    """The unencrypted reference the paper compares against."""
    search = PlaintextRankedSearch(bench_index)
    result = benchmark.pedantic(
        search.search_top_k,
        args=(NETWORK, k),
        rounds=10,
        iterations=1,
        warmup_rounds=1,
    )
    assert result
    _collected["plaintext"][k] = benchmark.stats["mean"]


def test_fig8_report(benchmark, bench_index):
    """Aggregate the sweep into the Fig. 8 series file."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _collected["rsse"]:
        pytest.skip("per-k benchmarks did not run")

    list_length = bench_index.document_frequency(NETWORK)
    lines = [
        "Fig. 8 — top-k retrieval time on the 'network' posting list",
        f"posting list length: {list_length} (paper: ~1000)",
        "paper shape: mild growth in k, sub-2ms absolute (C); ours is "
        "pure Python so absolutes are larger, the shape is what matters",
        "",
        f"{'k':>5}  {'rsse (ms)':>12}  {'plaintext (ms)':>15}  {'ratio':>7}",
    ]
    for k in K_VALUES:
        rsse_ms = _collected["rsse"].get(k)
        plain_ms = _collected["plaintext"].get(k)
        if rsse_ms is None or plain_ms is None:
            continue
        lines.append(
            f"{k:>5}  {rsse_ms * 1000:>12.3f}  {plain_ms * 1000:>15.3f}  "
            f"{rsse_ms / plain_ms:>7.1f}"
        )
    write_result("fig8_topk.txt", "\n".join(lines))

    # Shape: search cost must not blow up with k — top-k over an
    # n-entry list is O(n log k); between k=1 and k=300 the growth must
    # stay well under the 300x a naive per-k cost would give.
    if 1 in _collected["rsse"] and 300 in _collected["rsse"]:
        assert _collected["rsse"][300] < _collected["rsse"][1] * 10
