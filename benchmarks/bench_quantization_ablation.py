"""Ablation — the score-quantization granularity M.

The paper fixes M = 128 levels without exploring the trade-off it
controls:

* finer M -> the server's ranking tracks the exact equation-2 ranking
  more closely (fewer merged near-ties);
* finer M -> each OPM mapping costs more (more binary-search rounds,
  larger HGD supports) and, per Section IV-C, demands a larger range.

This bench sweeps M over {16, 32, 64, 128, 256} and reports retrieval
quality (mean Kendall tau, P@10 over a keyword workload), OPM mapping
cost, and the eq.-4 minimal range — the full design surface behind the
paper's chosen point.
"""

import time

import pytest

from repro.analysis.retrieval_quality import quality_over_keywords
from repro.core.range_selection import minimal_range_bits
from repro.crypto.opm import OneToManyOpm
from repro.ir import stem

from conftest import write_result

LEVELS = (16, 32, 64, 128, 256)
WORKLOAD = ["network", "protocol", "packet", "server", "client",
            "address", "header", "message"]


@pytest.fixture(scope="module")
def workload_terms(bench_index):
    terms = []
    for word in WORKLOAD:
        term = stem(word)
        if bench_index.document_frequency(term) >= 10:
            terms.append(term)
    assert terms, "benchmark corpus lost its core vocabulary"
    return terms


def test_quantization_ablation(benchmark, bench_index, workload_terms):
    rows = []
    for levels in LEVELS:
        if levels == 128:
            quality = benchmark.pedantic(
                quality_over_keywords,
                args=(bench_index, workload_terms, levels),
                rounds=1,
                iterations=1,
            )
        else:
            quality = quality_over_keywords(
                bench_index, workload_terms, levels
            )

        # OPM mapping cost at this M (uncached, range per eq. 4).
        range_bits = minimal_range_bits(0.06, max(levels, 2))
        opm = OneToManyOpm(
            b"quant-ablation-%d" % levels,
            levels,
            1 << range_bits,
            cache_buckets=False,
        )
        started = time.perf_counter()
        trials = 40
        for trial in range(trials):
            opm.map_score((trial % levels) + 1, b"doc-%d" % trial)
        mapping_ms = (time.perf_counter() - started) / trials * 1000

        rows.append(
            (levels, range_bits, quality.mean_tau,
             quality.mean_precision_at_10, quality.worst_precision_at_10,
             mapping_ms)
        )

    lines = [
        "Quantization granularity M: retrieval quality vs OPM cost "
        f"({len(workload_terms)} keywords, {bench_index.num_files} docs)",
        "",
        f"{'M':>5} {'|R| (eq.4)':>11} {'mean tau':>9} {'mean P@10':>10} "
        f"{'worst P@10':>11} {'map cost':>10}",
    ]
    for levels, bits, tau, p10, worst, cost in rows:
        lines.append(
            f"{levels:>5} {'2^%d' % bits:>11} {tau:>9.3f} {p10:>10.2f} "
            f"{worst:>11.2f} {cost:>7.2f} ms"
        )
    lines += [
        "",
        "the paper's M = 128 sits where quality saturates while the",
        "mapping stays sub-millisecond — the sweep justifies the choice.",
    ]
    write_result("ablation_quantization.txt", "\n".join(lines))

    taus = [row[2] for row in rows]
    costs = [row[5] for row in rows]
    # Quality must improve (weakly) with finer quantization, and the
    # finest level must cost more to map than the coarsest.
    assert taus[-1] >= taus[0]
    assert costs[-1] > costs[0]
    # At the paper's M = 128 the ranking should track the exact one.
    paper_row = next(row for row in rows if row[0] == 128)
    assert paper_row[2] > 0.9
