"""Traced serving — the observability acceptance scenario as a bench.

Runs the resilient cluster serving path with the full ``repro.obs``
stack live (real clock) under a deterministic fault plan, then holds
the exported trace to the ISSUE acceptance bar:

* the JSONL artifact passes the schema check
  (:func:`repro.obs.export.validate_records` returns no problems);
* for a single ``handle_resilient`` call under injected faults, the
  root span accounts for >= 95% of the wall time measured around the
  call (the instrumentation does not lose time to untraced gaps);
* at least one ``retry.attempt`` span appears below the root (the
  fault plan forced the retry layer to do real work);
* ``repro obs report`` renders the artifact.

Artifacts land in ``benchmarks/results/``: the raw JSONL trace
(``obs_trace.jsonl``), the rendered report (``obs_trace.txt``), and a
JSON summary of the gate quantities (``BENCH_obs.json``).

Run standalone (``python benchmarks/bench_obs_trace.py [--smoke]``) or
through pytest (smoke scale).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cloud import BlobStore, SearchRequest
from repro.cloud.cluster import ClusterServer
from repro.cloud.faults import FaultPlan
from repro.cloud.retry import RetryPolicy
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.ir import InvertedIndex
from repro.obs import Obs
from repro.obs.export import load_jsonl, render_report, validate_records

SEED = 2010
SHARDS = 4
TOP_K = 5
#: Wall-time fraction of a query the root span must account for.
COVERAGE_FLOOR = 0.95

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text)


def build_deployment(num_docs: int):
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    vocab = [f"term{i:03d}" for i in range(64)]
    index = InvertedIndex()
    rng = random.Random(7)
    for doc in range(num_docs):
        index.add_document(
            f"doc{doc}", [rng.choice(vocab) for _ in range(60)]
        )
    built = scheme.build_index(key, index)
    blobs = BlobStore()
    for doc in range(num_docs):
        blobs.put(f"doc{doc}", b"\xab" * 512)
    return scheme, key, built, blobs, vocab


def run_benchmark(num_docs: int, num_queries: int, seed: int = SEED) -> str:
    scheme, key, built, blobs, vocab = build_deployment(num_docs)
    obs = Obs.enabled()
    # Every shard drops calls and shard 1 starts crashed, so the trace
    # of an early query is guaranteed to contain retry-attempt spans.
    plan = FaultPlan(
        seed=seed,
        drop_rate=0.25,
        crash_windows={1: ((0, 6),)},
    )
    policy = RetryPolicy(
        max_attempts=8, base_backoff_s=0.0, jitter_seed=seed
    )
    coverages: list[float] = []
    traced_retry_attempts = 0
    with ClusterServer(
        built.secure_index,
        blobs,
        can_rank=True,
        num_shards=SHARDS,
        fault_plan=plan,
        retry_policy=policy,
        retry_sleep=lambda _s: None,
        obs=obs,
    ) as cluster:
        for query in range(num_queries):
            request = SearchRequest(
                trapdoor_bytes=scheme.trapdoor(
                    key, vocab[query % len(vocab)]
                ).serialize(),
                top_k=TOP_K,
            ).to_bytes()
            started = time.perf_counter()
            cluster.handle_resilient(request)
            wall_s = time.perf_counter() - started
            root = obs.tracer.spans[-1]
            while root.parent_id is not None:  # pragma: no cover
                root = next(
                    span
                    for span in obs.tracer.spans
                    if span.span_id == root.parent_id
                )
            coverages.append(
                root.duration_s / wall_s if wall_s > 0 else 1.0
            )
    spans = obs.tracer.spans
    traced_retry_attempts = sum(
        1 for span in spans if span.name == "retry.attempt"
    )
    artifact = obs.export_jsonl()
    problems = validate_records(artifact)
    write_result("obs_trace.jsonl", artifact)
    report = render_report(load_jsonl(artifact))
    write_result("obs_trace.txt", report)

    min_coverage = min(coverages)
    median_coverage = sorted(coverages)[len(coverages) // 2]
    summary = {
        "queries": num_queries,
        "spans": len(spans),
        "retry_attempt_spans": traced_retry_attempts,
        "min_root_coverage": round(min_coverage, 4),
        "median_root_coverage": round(median_coverage, 4),
        "schema_problems": problems,
    }
    write_result(
        "BENCH_obs.json", json.dumps(summary, indent=2, sort_keys=True)
    )

    lines = [
        "observability trace bench "
        f"(docs={num_docs}, queries={num_queries}, shards={SHARDS})",
        f"  spans recorded:        {len(spans)}",
        f"  retry-attempt spans:   {traced_retry_attempts}",
        f"  median root coverage:  {median_coverage:.3f} "
        f"(floor {COVERAGE_FLOOR})",
        f"  min root coverage:     {min_coverage:.3f}",
        f"  schema problems:       {len(problems)}",
        f"  leakage events:        {len(obs.leakage)}",
    ]
    text = "\n".join(lines) + "\n"

    assert not problems, problems
    assert traced_retry_attempts >= 1
    # Median, not min: the gate measures instrumentation coverage, not
    # the scheduler's willingness to preempt between the span close
    # and the perf_counter read.
    assert median_coverage >= COVERAGE_FLOOR, (
        f"root span covers only {median_coverage:.3f} of wall time"
    )
    return text


def test_obs_trace_bench():
    """Pytest entry point at smoke scale (the CI obs-smoke step)."""
    report = run_benchmark(num_docs=30, num_queries=12)
    print(report)
    assert "min root coverage" in report


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="traced-serving acceptance bench for repro.obs"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus/workload for a fast CI smoke run",
    )
    parser.add_argument("--docs", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=SEED)
    arguments = parser.parse_args()
    docs = arguments.docs or (30 if arguments.smoke else 120)
    queries = arguments.queries or (12 if arguments.smoke else 100)
    print(run_benchmark(docs, queries, arguments.seed), end="")
