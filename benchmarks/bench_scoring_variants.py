"""Ablation — sensitivity of the ranking to the scoring formula.

The paper chooses equation 2 "without loss of generality", citing
Zobel & Moffat's finding that no TF x IDF variant dominates.  This
bench quantifies the claim on our corpus: how much does the top-k
actually change when the formula changes?  (The scheme itself is
agnostic — any monotone score quantizes and OPM-maps identically.)
"""

import pytest

from repro.core.multi_keyword import rank_correlation, top_k_overlap
from repro.core.results import as_ranking
from repro.ir import stem
from repro.ir.scoring_variants import SCORER_REGISTRY, bm25_tf_score
from repro.ir.topk import rank_all

from conftest import NETWORK, write_result


def ranking_under(scorer, index, term):
    scored = [
        (
            posting.file_id,
            scorer(posting.term_frequency, index.file_length(posting.file_id)),
        )
        for posting in index.posting_list(term)
    ]
    return as_ranking(rank_all(scored, key=lambda pair: pair[1]))


def test_scoring_variant_sensitivity(benchmark, bench_index):
    average_length = sum(
        bench_index.file_length(f) for f in bench_index.file_ids()
    ) / bench_index.num_files

    scorers = dict(SCORER_REGISTRY)
    scorers["bm25-tf"] = lambda tf, length: bm25_tf_score(
        tf, length, average_file_length=average_length
    )

    reference = benchmark(
        ranking_under, scorers["paper-eq2"], bench_index, NETWORK
    )

    rows = []
    for name, scorer in scorers.items():
        candidate = ranking_under(scorer, bench_index, NETWORK)
        rows.append(
            (
                name,
                rank_correlation(candidate, reference),
                top_k_overlap(reference, candidate, 10),
                top_k_overlap(reference, candidate, 50),
            )
        )

    lines = [
        "Scoring-formula sensitivity vs the paper's equation 2 "
        f"(keyword 'network', {len(reference)} matches)",
        "",
        f"{'formula':<14} {'tau vs eq2':>11} {'top-10 overlap':>15} "
        f"{'top-50 overlap':>15}",
    ]
    for name, tau, p10, p50 in rows:
        lines.append(f"{name:<14} {tau:>11.3f} {p10:>15.2f} {p50:>15.2f}")
    lines += [
        "",
        "reading: on this corpus term frequency grows with document",
        "length, so unnormalized TF (raw/log) ranks long documents",
        "first while the paper's density-style eq. 2 ranks them last —",
        "the formulas produce *very* different rankings.  Zobel &",
        "Moffat's 'no variant dominates' is about retrieval",
        "effectiveness, not rank agreement; since this scheme bakes the",
        "scores into the index at build time, the formula is a real,",
        "committed design choice, and eq. 2's length normalization is",
        "its substantive content.",
    ]
    write_result("ablation_scoring_variants.txt", "\n".join(lines))

    by_name = {name: tau for name, tau, _, _ in rows}
    assert by_name["paper-eq2"] == pytest.approx(1.0)
    # raw and log TF are the same monotone transform of tf: identical
    # rankings, hence identical agreement with eq. 2.
    assert by_name["raw-tf"] == pytest.approx(by_name["log-tf"])
    # Unnormalized TF diverges sharply from the paper's normalized
    # formula on a length-correlated corpus.
    assert by_name["raw-tf"] < 0.5
