"""Hot-query fast-lane benchmark — the regression gate for the
front-end result cache in ``repro.cloud.netserve``.

A Zipfian query workload (most traffic concentrated on a few hot
keywords — the shape the fast lane is built for) is served twice over
real TCP loopback at 4 shards:

* **warm** — the PR-9 warm path: per-shard search-context caching on
  (``cache_searches=True``), front-end result cache *off*.  Every
  query still crosses the fork-worker pipe and re-encodes its
  response;
* **cached** — the same server with ``result_cache_bytes`` set.  Hot
  queries are answered from the asyncio front end out of the
  pre-encoded frame cache with zero worker IPC.

Before anything is timed, both deployments are asserted byte-identical
on a golden frame set in both codecs (cold *and* hit responses).

Gates (machine-independent):

* hot-set p50 latency with the cache on must be >= 3x faster than the
  warm path (the ISSUE acceptance floor);
* a pipelined burst of identical cold queries on one connection must
  dispatch at most 2 worker round trips — the rest coalesce behind the
  single-flight leader, proven via the cache's ``misses`` counter
  (which counts actual worker dispatches through the cached path).

The report lands in ``benchmarks/results/BENCH_hot_query.json``;
``--check-baseline`` adds a 30% throughput floor against the committed
``BENCH_hot_query_baseline.json`` (skipped with a note when the core
counts differ — latency on a different machine shape is not
comparable).

Run standalone (``python benchmarks/bench_hot_query_cache.py
[--smoke] [--check-baseline]``) or through pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cloud.netserve import NetServer, NetworkChannel
from repro.cloud.protocol import CODEC_BINARY, CODEC_JSON, SearchRequest
from repro.cloud.storage import BlobStore
from repro.core import TEST_PARAMETERS, EfficientRSSE
from repro.corpus.workload import hot_set, zipf_queries
from repro.ir.inverted_index import InvertedIndex

NUM_SHARDS = 4
TOP_K = 8
BLOB_BYTES = 3072
DOCS_PER_KEYWORD = 20
ZIPF_EXPONENT = 1.1
WORKLOAD_SEED = 2010
HOT_FRACTION = 0.9
RESULT_CACHE_BYTES = 32 << 20
BURST_SIZE = 16
BURST_WORKER_DELAY_S = 0.05
MAX_BURST_DISPATCHES = 2
REQUIRED_HOT_SPEEDUP = 3.0
BASELINE_TOLERANCE = 0.30

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_hot_query_baseline.json"
REPORT_PATH = RESULTS_DIR / "BENCH_hot_query.json"


def available_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def build_deployment(keywords: int):
    """A decryption-heavy deployment: every query decrypts a
    ``DOCS_PER_KEYWORD``-entry posting list and ships ``TOP_K`` blobs.
    """
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    index = InvertedIndex()
    blobs = BlobStore()
    for position in range(keywords * DOCS_PER_KEYWORD):
        doc_id = f"d{position:06d}"
        index.add_document(doc_id, [f"kw{position % keywords:03d}"] * 3)
        blobs.put(
            doc_id, (doc_id.encode("utf-8") * BLOB_BYTES)[:BLOB_BYTES]
        )
    built = scheme.build_index(key, index)
    return scheme, key, built.secure_index, blobs


def encode_frames(scheme, key, names, codec) -> dict[str, bytes]:
    """One request frame per keyword — trapdoors are deterministic, so
    repeats of a hot keyword are byte-identical (what the cache keys on).
    """
    return {
        name: SearchRequest(
            trapdoor_bytes=scheme.trapdoor(key, name).serialize(),
            top_k=TOP_K,
        ).to_bytes(codec)
        for name in names
    }


def percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def check_equivalence(secure_index, blobs, scheme, key, names) -> None:
    """Cached responses (cold fill *and* hot hit) must be byte-identical
    to the cache-off server in both codecs before anything is timed.
    """
    golden = {
        codec: encode_frames(scheme, key, names, codec)
        for codec in (CODEC_JSON, CODEC_BINARY)
    }
    with NetServer(
        secure_index,
        blobs,
        can_rank=True,
        num_shards=NUM_SHARDS,
        cache_searches=True,
    ) as plain, NetServer(
        secure_index,
        blobs,
        can_rank=True,
        num_shards=NUM_SHARDS,
        cache_searches=True,
        result_cache_bytes=RESULT_CACHE_BYTES,
    ) as cached, NetworkChannel(
        plain.host, plain.port
    ) as plain_channel, NetworkChannel(
        cached.host, cached.port
    ) as cached_channel:
        for frames in golden.values():
            for frame in frames.values():
                expected = plain_channel.call(frame)
                cold = cached_channel.call(frame)
                hit = cached_channel.call(frame)
                if cold != expected or hit != expected:
                    raise AssertionError(
                        "result cache diverged from the cache-off "
                        "reference"
                    )


def time_workload(
    secure_index, blobs, frames, terms, hot, result_cache_bytes
) -> dict:
    """Per-request latency over the Zipfian workload on one connection.

    A priming pass over the *distinct* frames warms both layers the
    same way (search contexts on the warm server, search contexts plus
    the result cache on the cached server), so the timed cell compares
    steady-state hot traffic rather than first-touch fills.
    """
    with NetServer(
        secure_index,
        blobs,
        can_rank=True,
        num_shards=NUM_SHARDS,
        cache_searches=True,
        result_cache_bytes=result_cache_bytes,
    ) as server, NetworkChannel(server.host, server.port) as channel:
        for frame in frames.values():
            channel.call(frame)
        samples: list[tuple[str, float]] = []
        start = time.perf_counter()
        for term in terms:
            begin = time.perf_counter()
            channel.call(frames[term])
            samples.append((term, time.perf_counter() - begin))
        elapsed = time.perf_counter() - start
        cell = summarize(samples, hot)
        cell["qps"] = len(terms) / elapsed
        if server.result_cache is not None:
            cell["cache"] = server.result_cache.stats()
        return cell


def summarize(samples: list[tuple[str, float]], hot: set[str]) -> dict:
    latencies = sorted(latency for _, latency in samples)
    hot_latencies = sorted(
        latency for term, latency in samples if term in hot
    )
    return {
        "p50_ms": percentile(latencies, 0.50) * 1e3,
        "p99_ms": percentile(latencies, 0.99) * 1e3,
        "hot_p50_ms": percentile(hot_latencies, 0.50) * 1e3,
        "hot_p99_ms": percentile(hot_latencies, 0.99) * 1e3,
        "hot_queries": len(hot_latencies),
    }


def measure_burst(secure_index, blobs, frame) -> dict:
    """A cold pipelined burst of one frame: single-flight coalescing
    must collapse it to at most ``MAX_BURST_DISPATCHES`` worker round
    trips.  ``worker_delay_s`` holds the leader in the worker long
    enough that every follower arrives while it is still in flight.
    """
    with NetServer(
        secure_index,
        blobs,
        can_rank=True,
        num_shards=NUM_SHARDS,
        cache_searches=True,
        result_cache_bytes=RESULT_CACHE_BYTES,
        worker_delay_s=BURST_WORKER_DELAY_S,
    ) as server, NetworkChannel(server.host, server.port) as channel:
        responses = channel.call_many([frame] * BURST_SIZE)
        if len(set(responses)) != 1:
            raise AssertionError("coalesced burst responses diverged")
        stats = server.result_cache.stats()
        return {
            "burst_size": BURST_SIZE,
            "worker_dispatches": stats["misses"],
            "coalesced": stats["coalesced"],
            "hits": stats["hits"],
        }


def run_benchmark(keywords: int, queries: int) -> dict:
    scheme, key, secure_index, blobs = build_deployment(keywords)
    names = [f"kw{i:03d}" for i in range(keywords)]
    terms = zipf_queries(
        names, queries, exponent=ZIPF_EXPONENT, seed=WORKLOAD_SEED
    )
    hot = set(hot_set(names, terms, fraction=HOT_FRACTION))
    frames = encode_frames(scheme, key, names, CODEC_BINARY)

    check_equivalence(
        secure_index, blobs, scheme, key, names[: min(8, keywords)]
    )
    warm = time_workload(secure_index, blobs, frames, terms, hot, None)
    cached = time_workload(
        secure_index, blobs, frames, terms, hot, RESULT_CACHE_BYTES
    )
    burst = measure_burst(secure_index, blobs, frames[names[0]])

    report = {
        "parameters": {
            "keywords": keywords,
            "queries": queries,
            "num_shards": NUM_SHARDS,
            "top_k": TOP_K,
            "blob_bytes": BLOB_BYTES,
            "docs_per_keyword": DOCS_PER_KEYWORD,
            "zipf_exponent": ZIPF_EXPONENT,
            "hot_fraction": HOT_FRACTION,
            "hot_set_size": len(hot),
            "result_cache_bytes": RESULT_CACHE_BYTES,
        },
        "cores": available_cores(),
        "warm": warm,
        "cached": cached,
        "hot_p50_speedup": warm["hot_p50_ms"] / cached["hot_p50_ms"],
        "required_hot_speedup": REQUIRED_HOT_SPEEDUP,
        "burst": burst,
        "max_burst_dispatches": MAX_BURST_DISPATCHES,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_gates(report: dict) -> list[str]:
    """Machine-independent gates; returns failure messages (empty = ok)."""
    failures = []
    speedup = report["hot_p50_speedup"]
    if speedup < report["required_hot_speedup"]:
        failures.append(
            f"hot-set p50 with the result cache is only {speedup:.2f}x "
            f"the warm path, below the "
            f"{report['required_hot_speedup']:.1f}x gate"
        )
    dispatches = report["burst"]["worker_dispatches"]
    if dispatches > report["max_burst_dispatches"]:
        failures.append(
            f"a {report['burst']['burst_size']}-query identical burst "
            f"dispatched {dispatches} worker round trips "
            f"(gate: <= {report['max_burst_dispatches']})"
        )
    return failures


def check_baseline(report: dict) -> list[str]:
    """30% throughput floor vs the committed baseline (same cores only)."""
    if not BASELINE_PATH.exists():
        return [f"no baseline at {BASELINE_PATH}"]
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline["cores"] != report["cores"]:
        print(
            f"note: baseline recorded on {baseline['cores']} core(s), "
            f"running on {report['cores']} — absolute-QPS floor skipped"
        )
        return []
    failures = []
    for cell in ("warm", "cached"):
        floor = baseline[cell]["qps"] * (1.0 - BASELINE_TOLERANCE)
        measured = report[cell]["qps"]
        if measured < floor:
            failures.append(
                f"{cell} path at {measured:,.0f} qps is more than "
                f"{BASELINE_TOLERANCE:.0%} below the baseline floor "
                f"({floor:,.0f})"
            )
    return failures


def format_report(report: dict) -> str:
    parameters = report["parameters"]
    warm = report["warm"]
    cached = report["cached"]
    burst = report["burst"]
    return "\n".join(
        [
            "Hot-query fast lane "
            f"(keywords={parameters['keywords']}, "
            f"queries={parameters['queries']}, "
            f"shards={parameters['num_shards']}, "
            f"zipf s={parameters['zipf_exponent']}, "
            f"hot set={parameters['hot_set_size']} kw, "
            f"cores={report['cores']})",
            f"  warm   path: {warm['qps']:>9,.0f} qps  "
            f"hot p50 {warm['hot_p50_ms']:7.3f} ms  "
            f"hot p99 {warm['hot_p99_ms']:7.3f} ms",
            f"  cached path: {cached['qps']:>9,.0f} qps  "
            f"hot p50 {cached['hot_p50_ms']:7.3f} ms  "
            f"hot p99 {cached['hot_p99_ms']:7.3f} ms",
            f"  hot p50 speedup: {report['hot_p50_speedup']:.2f}x "
            f"(gate {report['required_hot_speedup']:.1f}x)",
            f"  cache: {cached['cache']['hits']} hit(s), "
            f"{cached['cache']['misses']} dispatch(es), "
            f"{cached['cache']['resident_bytes'] / 1024:,.0f} KiB resident",
            f"  burst: {burst['burst_size']} identical queries -> "
            f"{burst['worker_dispatches']} worker dispatch(es), "
            f"{burst['coalesced']} coalesced "
            f"(gate <= {report['max_burst_dispatches']})",
        ]
    )


def test_hot_query_cache_gates():
    """Pytest entry point at smoke scale (the CI hot-query-smoke step)."""
    report = run_benchmark(keywords=12, queries=240)
    print(format_report(report))
    assert not check_gates(report), check_gates(report)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="Hot-query result-cache benchmark and regression gate"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller workload for a fast CI smoke run",
    )
    parser.add_argument("--keywords", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail if qps regressed >30%% vs the committed baseline "
        "(same core count only)",
    )
    arguments = parser.parse_args()
    keyword_count = arguments.keywords or (12 if arguments.smoke else 24)
    query_count = arguments.queries or (240 if arguments.smoke else 1200)
    bench_report = run_benchmark(keyword_count, query_count)
    print(format_report(bench_report))
    problems = check_gates(bench_report)
    if arguments.check_baseline:
        problems += check_baseline(bench_report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        sys.exit(1)
    print("all gates passed")
