"""Fault recovery — serving latency and time-to-recovery under faults.

Drives the resilient cluster serving path through a deterministic
fault plan (call drops, response corruption, injected delays, one
crashed shard) and reports what the robustness layer costs and buys:

* **recovery** — rounds of sequential probing until the crashed
  shard's circuit breaker closes and its responses return to
  byte-equivalence with the fault-free run;
* **degraded pass** — throughput and modeled per-query latency
  (p50/p99) for a first workload pass that straddles the crash
  window, with the count of queries degraded to ``PartialResult``;
* **steady pass** — the same workload once the cluster is healthy:
  every response must be byte-identical to the fault-free baseline.

Latency is *modeled*, not slept: per query it is the sum of the retry
layer's backoff waits plus the fault plan's injected delays, read from
the per-call attempt traces.  That keeps the bench fast while still
measuring the tail the retry/hedging policy is tuned for.

Run standalone (``python benchmarks/bench_fault_recovery.py
[--smoke]``) or through pytest; either way the report lands in
``benchmarks/results/fault_recovery.txt``.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cloud import BlobStore, SearchRequest
from repro.cloud.cluster import ClusterServer
from repro.cloud.faults import FaultPlan
from repro.cloud.retry import BreakerConfig, RetryPolicy
from repro.corpus.zipf import zipf_sample_words
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.ir import InvertedIndex

SEED = 2010
SHARDS = 4
CRASHED_SHARD = 1
CRASH_WINDOW = (0, 40)
TOP_K = 10

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text)


def percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[int(fraction * (len(ordered) - 1))]


def build_deployment(num_docs: int, vocab_size: int):
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    vocab = [f"term{i:03d}" for i in range(vocab_size)]
    index = InvertedIndex()
    rng = random.Random(7)
    for doc in range(num_docs):
        index.add_document(
            f"doc{doc}", [rng.choice(vocab) for _ in range(60)]
        )
    built = scheme.build_index(key, index)
    blobs = BlobStore()
    for doc in range(num_docs):
        blobs.put(f"doc{doc}", b"\xab" * 512)
    return scheme, key, built, blobs, vocab


def fault_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        drop_rate=0.2,
        corrupt_rate=0.05,
        delay_rate=0.1,
        delay_s=0.02,
        crash_windows={CRASHED_SHARD: (CRASH_WINDOW,)},
    )


def retry_policy(seed: int) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=8,
        base_backoff_s=0.005,
        max_backoff_s=0.05,
        jitter_seed=seed,
        hedge_after_s=0.015,  # hedge queries hit by an injected delay
    )


def make_cluster(built, blobs, seed: int | None) -> ClusterServer:
    return ClusterServer(
        built.secure_index,
        blobs,
        can_rank=True,
        num_shards=SHARDS,
        fault_plan=fault_plan(seed) if seed is not None else None,
        retry_policy=retry_policy(seed) if seed is not None else None,
        breaker=BreakerConfig(failure_threshold=3, probe_interval=4),
        retry_sleep=lambda _s: None,  # latency is modeled, not slept
    )


def modeled_latency_of(cluster: ClusterServer, shard: int, before: int):
    """Backoff + injected delay of the traces recorded since `before`."""
    traces = cluster.retrying_channels[shard].trace[before:]
    return sum(
        attempt.backoff_s + attempt.modeled_delay_s
        for trace in traces
        for attempt in trace.attempts
    )


def timed_pass(cluster, requests, baseline):
    """One sequential resilient pass; returns (wall_s, latencies, degraded)."""
    latencies = []
    degraded = 0
    start = time.perf_counter()
    for position, request in enumerate(requests):
        shard = cluster.shard_id_for(request)
        seen = len(cluster.retrying_channels[shard].trace)
        result = cluster.handle_resilient(request)
        latencies.append(modeled_latency_of(cluster, shard, seen))
        if result.complete:
            assert result.responses == (baseline[position],), (
                f"served response diverged from fault-free at {position}"
            )
        else:
            degraded += 1
    return time.perf_counter() - start, latencies, degraded


def run_benchmark(
    num_docs: int = 200, num_queries: int = 600, seed: int = SEED
) -> str:
    scheme, key, built, blobs, vocab = build_deployment(
        num_docs, vocab_size=max(48, num_docs // 4)
    )
    rng = random.Random(seed)
    keywords = zipf_sample_words(
        vocab[: len(vocab) // 2], num_queries, exponent=1.0, rng=rng
    )
    requests = [
        SearchRequest(
            trapdoor_bytes=scheme.trapdoor(key, term).serialize(),
            top_k=TOP_K,
        ).to_bytes()
        for term in keywords
    ]

    with make_cluster(built, blobs, seed=None) as reference:
        baseline = [reference.handle(request) for request in requests]
        crashed_query = next(
            request
            for request in requests
            if reference.shard_id_for(request) == CRASHED_SHARD
        )
        crashed_baseline = reference.handle(crashed_query)

    # -- recovery probe: rounds until the crashed shard answers again --
    with make_cluster(built, blobs, seed) as cluster:
        recovery_round = None
        start = time.perf_counter()
        for round_number in range(1, 201):
            result = cluster.handle_resilient(crashed_query)
            if result.complete and result.responses == (crashed_baseline,):
                recovery_round = round_number
                break
        recovery_wall = time.perf_counter() - start
        assert recovery_round is not None, "crashed shard never recovered"
        health = cluster.shard_health[CRASHED_SHARD]
        assert health.state == "closed"
        shard_calls = cluster.fault_stats[CRASHED_SHARD].calls

    # -- workload passes: one straddling the crash window, one healthy --
    with make_cluster(built, blobs, seed) as cluster:
        cold_wall, cold_latency, cold_degraded = timed_pass(
            cluster, requests, baseline
        )
        steady_wall, steady_latency, steady_degraded = timed_pass(
            cluster, requests, baseline
        )
        assert steady_degraded == 0, "cluster still degraded after recovery"
        retry_stats = [
            channel.retry_stats for channel in cluster.retrying_channels
        ]
        faults = cluster.fault_stats

    lines = [
        "Fault recovery under drops + corruption + one crashed shard",
        f"docs={num_docs} queries={num_queries} shards={SHARDS} "
        f"seed={seed}",
        f"plan: drop=20% corrupt=5% delay=10%@20ms "
        f"crash=shard{CRASHED_SHARD}{CRASH_WINDOW}",
        f"policy: attempts=8 backoff=5..50ms hedge>15ms "
        f"breaker=3fails/probe4",
        "",
        "recovery probe (sequential searches on the crashed shard):",
        f"  recovered at round {recovery_round} "
        f"({shard_calls} channel calls, {recovery_wall * 1000:.1f}ms "
        f"wall)",
        f"  breaker: opened {health.times_opened}x, "
        f"{health.probes} probes, {health.suppressed_calls} suppressed",
        "",
        f"{'pass':>8} {'wall_s':>7} {'q/s':>7} {'p50_ms':>7} "
        f"{'p99_ms':>7} {'degraded':>9}",
        f"{'cold':>8} {cold_wall:>7.2f} "
        f"{num_queries / cold_wall:>7.1f} "
        f"{percentile(cold_latency, 0.5) * 1000:>7.2f} "
        f"{percentile(cold_latency, 0.99) * 1000:>7.2f} "
        f"{cold_degraded:>9}",
        f"{'steady':>8} {steady_wall:>7.2f} "
        f"{num_queries / steady_wall:>7.1f} "
        f"{percentile(steady_latency, 0.5) * 1000:>7.2f} "
        f"{percentile(steady_latency, 0.99) * 1000:>7.2f} "
        f"{steady_degraded:>9}",
        "",
        "injected faults / retry work per shard:",
    ]
    for shard in range(SHARDS):
        stats = faults[shard]
        retries = retry_stats[shard]
        lines.append(
            f"  shard {shard}: calls={stats.calls} drops={stats.drops} "
            f"corrupt={stats.corruptions} delays={stats.delays} "
            f"crash={stats.crash_rejections} | retries={retries.retries} "
            f"hedged={retries.hedged_calls} timeouts={retries.timeouts} "
            f"exhausted={retries.exhausted}"
        )
    report = "\n".join(lines) + "\n"
    write_result("fault_recovery.txt", report)
    return report


def test_fault_recovery_reports_p99_and_recovery():
    """Pytest entry point at smoke scale (the CI bench smoke step)."""
    report = run_benchmark(num_docs=40, num_queries=120)
    print(report)
    assert "recovered at round" in report
    assert "p99" in report


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="fault-recovery benchmark for the resilient cluster"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus/workload for a fast CI smoke run",
    )
    parser.add_argument("--docs", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=SEED)
    arguments = parser.parse_args()
    docs = arguments.docs or (40 if arguments.smoke else 200)
    queries = arguments.queries or (120 if arguments.smoke else 600)
    print(run_benchmark(docs, queries, arguments.seed), end="")
