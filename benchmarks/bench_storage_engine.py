"""Storage-engine harness — the regression gate for the packed store.

Builds a synthetic packed index through the constant-memory spilling
writer (timed: build throughput), then measures the two load paths in
*separate child processes* so peak resident memory (``ru_maxrss``) is
attributable per path:

Resident memory is compared on **anonymous RSS** (``RssAnon`` from
``/proc/self/status``): the dict path's cost is process-private heap,
while the mmap path's mapped posting blocks are shared, evictable
page-cache pages — the kernel's fault-around maps ~64 KB of cached
file pages per fault even under ``MADV_RANDOM``, so total RSS
overstates the mmap path's memory *pressure* by the size of the
touched file region.  Anonymous RSS is what the OOM killer charges a
process for; ``ru_maxrss`` is reported alongside for transparency.

* **null child** — imports everything, loads nothing: the interpreter
  baseline subtracted from both measurements;
* **dict child** — eagerly materializes the packed file as an
  in-memory :class:`SecureIndex` (``load_packed_index``: plain file
  reads, one ``bytes`` object per entry — the deterministic reference
  memory shape);
* **mmap child** — opens the same file as a lazy
  :class:`PackedStore` (offset table in memory, posting blocks paged
  in per query).

Each loaded child serves the same cold binary-codec query stream
through a real :class:`CloudServer` and reports one JSON line: peak
RSS, load seconds, QPS, p50/p99 latency, and a SHA-256 digest over
every response *and* every raw posting block it looked up — the
dict-vs-mmap digest comparison is the bench's byte-identity guard.

The report lands in ``benchmarks/results/BENCH_storage.json``.  Gates:

* machine-independent (``check_gates``): dict and mmap digests equal,
  mmap net RSS <= 25% of dict net RSS, mmap cold p99 <= 2x dict cold
  p99 (both children do identical decrypt work per query, so the
  ratio isolates lookup cost);
* machine-dependent (``--check-baseline``): build entries/sec and
  mmap cold QPS must not regress more than 30% below the committed
  ``benchmarks/results/BENCH_storage_baseline.json`` floor.

The default (full) scale packs ~2.4M encrypted entries across 20k
terms — about 100x the postings of the seed 1000-document corpus.
Run standalone (``python benchmarks/bench_storage_engine.py [--smoke]
[--check-baseline]``) or through pytest (reduced scale, digest + p99
gates).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path

if True:  # allow running without PYTHONPATH=src (parent and children)
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cloud.protocol import CODEC_BINARY, SearchRequest
from repro.cloud.server import CloudServer
from repro.cloud.storage import BlobStore
from repro.cloud.store import (
    PackedStore,
    SpillingPackWriter,
    load_packed_index,
)
from repro.core.secure_index import EntryLayout
from repro.core.trapdoor import Trapdoor

MAX_MEMORY_RATIO = 0.25
MAX_P99_RATIO = 2.0
BASELINE_TOLERANCE = 0.30
TOP_K = 10

#: The default entry geometry (matches TEST_PARAMETERS-scale scores).
LAYOUT = EntryLayout(zero_pad_bytes=4, file_id_bytes=24, score_bytes=3)

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_storage_baseline.json"
REPORT_PATH = RESULTS_DIR / "BENCH_storage.json"


def derive_addresses(terms: int, seed: int) -> list[bytes]:
    """Deterministic 20-byte addresses, in derivation (unsorted) order."""
    key = seed.to_bytes(8, "big")
    return [
        hashlib.blake2b(
            b"addr-%d" % i, key=key, digest_size=20
        ).digest()
        for i in range(terms)
    ]


def derive_list_key(address: bytes, seed: int) -> bytes:
    """The per-list trapdoor key a querying user would present."""
    return hashlib.blake2b(
        b"key-" + address, key=seed.to_bytes(8, "big"), digest_size=16
    ).digest()


def list_length(rank: int, terms: int, average: int) -> int:
    """Zipf-flavoured deterministic list length around ``average``."""
    skew = 1.0 + 2.0 * (terms - rank) / terms  # head lists ~3x tail
    return max(4, int(average * skew * 0.5))


def build_packed_fixture(
    path: Path, terms: int, average_entries: int, seed: int
) -> dict:
    """Pack the synthetic index through the spilling writer (timed)."""
    addresses = derive_addresses(terms, seed)
    width = LAYOUT.ciphertext_bytes
    total_target = sum(
        list_length(rank, terms, average_entries)
        for rank in range(terms)
    )
    writer = SpillingPackWriter(
        path,
        LAYOUT,
        run_entries=max(1024, total_target // 6),
        tmp_dir=path.parent,
    )
    started = time.perf_counter()
    entries_written = 0
    for rank, address in enumerate(addresses):
        rng = random.Random(seed * 1000003 + rank)
        count = list_length(rank, terms, average_entries)
        writer.add_list(
            address, [rng.randbytes(width) for _ in range(count)]
        )
        entries_written += count
    runs = writer.runs_spilled
    writer.close()
    elapsed = time.perf_counter() - started
    file_bytes = path.stat().st_size
    return {
        "terms": terms,
        "entries": entries_written,
        "file_bytes": file_bytes,
        "runs_spilled": runs,
        "seconds": elapsed,
        "entries_per_s": entries_written / elapsed,
        "mb_per_s": file_bytes / elapsed / 1e6,
    }


def _anon_rss_kb() -> int | None:
    """Anonymous (process-private) resident KB; None off-Linux."""
    try:
        status = Path("/proc/self/status").read_text()
    except OSError:
        return None
    for line in status.splitlines():
        if line.startswith("RssAnon:"):
            return int(line.split()[1])
    return None


def _percentile(sorted_latencies: list[float], q: float) -> float:
    index = min(
        len(sorted_latencies) - 1,
        int(round(q * (len(sorted_latencies) - 1))),
    )
    return sorted_latencies[index]


def run_child(
    mode: str, path: Path, terms: int, queries: int, seed: int
) -> dict:
    """The child-process body; prints one JSON line on stdout.

    ``null`` reports the interpreter + import baseline.  ``dict`` and
    ``mmap`` load the packed file through their respective paths and
    serve ``queries`` cold binary-codec searches over an evenly-strided
    subset of the sorted address space.
    """
    import resource

    result: dict = {"mode": mode}
    anon_peak = _anon_rss_kb()
    if mode != "null":
        started = time.perf_counter()
        if mode == "dict":
            store = load_packed_index(path)
        else:
            store = PackedStore(path)
        result["load_s"] = time.perf_counter() - started

        addresses = sorted(derive_addresses(terms, seed))
        stride = max(1, len(addresses) // queries)
        queried = [
            addresses[(i * stride) % len(addresses)]
            for i in range(queries)
        ]
        server = CloudServer(
            store, BlobStore(), can_rank=True, cache_searches=False
        )
        requests = [
            SearchRequest(
                trapdoor_bytes=Trapdoor(
                    address=address,
                    list_key=derive_list_key(address, seed),
                ).serialize(),
                top_k=TOP_K,
            ).to_bytes(CODEC_BINARY)
            for address in queried
        ]
        digest = hashlib.sha256()
        latencies = []
        started = time.perf_counter()
        for request_bytes in requests:
            began = time.perf_counter()
            digest.update(server.handle(request_bytes))
            latencies.append(time.perf_counter() - began)
        total = time.perf_counter() - started
        # Raw posting-block bytes: the actual dict-vs-mmap identity
        # proof (responses alone could agree for other reasons).
        for address in queried:
            entries = store.lookup(address)
            assert entries is not None
            for entry in entries:
                digest.update(entry)
        latencies.sort()
        result.update(
            {
                "qps": queries / total,
                "p50_ms": _percentile(latencies, 0.50) * 1e3,
                "p99_ms": _percentile(latencies, 0.99) * 1e3,
                "digest": digest.hexdigest(),
            }
        )
    max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    result["max_rss_kb"] = max_rss_kb
    final_anon = _anon_rss_kb()
    if anon_peak is not None and final_anon is not None:
        result["anon_rss_kb"] = max(anon_peak, final_anon)
    else:  # non-Linux fallback: total peak RSS
        result["anon_rss_kb"] = max_rss_kb
    print(json.dumps(result))
    return result


def spawn_child(
    mode: str, path: Path, terms: int, queries: int, seed: int
) -> dict:
    """Run one measurement child; returns its parsed JSON report."""
    completed = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--child",
            mode,
            "--path",
            str(path),
            "--terms",
            str(terms),
            "--queries",
            str(queries),
            "--seed",
            str(seed),
        ],
        capture_output=True,
        text=True,
        check=False,
        env={
            **os.environ,
            "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src"),
        },
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"{mode} child failed:\n{completed.stderr}"
        )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def run_benchmark(
    terms: int,
    average_entries: int,
    queries: int,
    seed: int = 2010,
    keep_fixture: Path | None = None,
) -> dict:
    """Build the fixture, run the three children, assemble the report."""
    import tempfile

    if keep_fixture is not None:
        fixture_dir = keep_fixture
        fixture_dir.mkdir(parents=True, exist_ok=True)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="bench-storage-")
        fixture_dir = Path(cleanup.name)
    try:
        packed_path = fixture_dir / "bench.rpk"
        build = build_packed_fixture(
            packed_path, terms, average_entries, seed
        )
        children = {
            mode: spawn_child(mode, packed_path, terms, queries, seed)
            for mode in ("null", "dict", "mmap")
        }
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    baseline_kb = children["null"]["anon_rss_kb"]
    dict_net = max(1, children["dict"]["anon_rss_kb"] - baseline_kb)
    mmap_net = max(1, children["mmap"]["anon_rss_kb"] - baseline_kb)
    report = {
        "parameters": {
            "terms": terms,
            "average_entries": average_entries,
            "queries": queries,
            "seed": seed,
            "entry_bytes": LAYOUT.ciphertext_bytes,
            "top_k": TOP_K,
        },
        "build": build,
        "children": children,
        "memory": {
            "interpreter_kb": baseline_kb,
            "dict_net_kb": dict_net,
            "mmap_net_kb": mmap_net,
            "ratio": mmap_net / dict_net,
        },
        "cold": {
            "dict_qps": children["dict"]["qps"],
            "mmap_qps": children["mmap"]["qps"],
            "dict_p99_ms": children["dict"]["p99_ms"],
            "mmap_p99_ms": children["mmap"]["p99_ms"],
            "p99_ratio": (
                children["mmap"]["p99_ms"] / children["dict"]["p99_ms"]
            ),
        },
        "digests_match": (
            children["dict"]["digest"] == children["mmap"]["digest"]
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_gates(report: dict) -> list[str]:
    """Machine-independent gates; returns failure messages (empty = ok)."""
    failures = []
    if not report["digests_match"]:
        failures.append(
            "dict and mmap children disagree on response/posting bytes"
        )
    ratio = report["memory"]["ratio"]
    if ratio > MAX_MEMORY_RATIO:
        failures.append(
            f"mmap net RSS is {ratio:.1%} of the dict path "
            f"(required <= {MAX_MEMORY_RATIO:.0%})"
        )
    p99_ratio = report["cold"]["p99_ratio"]
    if p99_ratio > MAX_P99_RATIO:
        failures.append(
            f"mmap cold p99 is {p99_ratio:.2f}x the dict path "
            f"(required <= {MAX_P99_RATIO:.1f}x)"
        )
    return failures


def check_baseline(report: dict) -> list[str]:
    """Machine-dependent gate vs the committed baseline floor."""
    if not BASELINE_PATH.exists():
        return [f"no baseline at {BASELINE_PATH}"]
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    floor = baseline["build"]["entries_per_s"] * (1.0 - BASELINE_TOLERANCE)
    if report["build"]["entries_per_s"] < floor:
        failures.append(
            f"build at {report['build']['entries_per_s']:,.0f} entries/s "
            f"is more than {BASELINE_TOLERANCE:.0%} below the baseline "
            f"floor ({floor:,.0f})"
        )
    floor = baseline["cold"]["mmap_qps"] * (1.0 - BASELINE_TOLERANCE)
    if report["cold"]["mmap_qps"] < floor:
        failures.append(
            f"mmap cold path at {report['cold']['mmap_qps']:,.0f} qps is "
            f"more than {BASELINE_TOLERANCE:.0%} below the baseline "
            f"floor ({floor:,.0f})"
        )
    return failures


def format_report(report: dict) -> str:
    """Human-readable report block."""
    build = report["build"]
    memory = report["memory"]
    cold = report["cold"]
    return "\n".join(
        [
            "Storage engine "
            f"(terms={build['terms']}, entries={build['entries']:,}, "
            f"file={build['file_bytes'] / 1e6:.1f} MB)",
            f"  build : {build['entries_per_s']:>10,.0f} entries/s  "
            f"{build['mb_per_s']:6.1f} MB/s  "
            f"({build['runs_spilled']} spilled runs)",
            f"  memory: dict {memory['dict_net_kb']:>9,} KB   "
            f"mmap {memory['mmap_net_kb']:>9,} KB   "
            f"ratio {memory['ratio']:.1%}",
            f"  cold  : dict {cold['dict_qps']:>9,.0f} qps "
            f"(p99 {cold['dict_p99_ms']:6.3f} ms)   "
            f"mmap {cold['mmap_qps']:>9,.0f} qps "
            f"(p99 {cold['mmap_p99_ms']:6.3f} ms)",
            f"  digests match: {report['digests_match']}",
        ]
    )


def test_storage_engine_gates():
    """Pytest entry point: digest identity + relaxed p99 at tiny scale.

    The memory and absolute-throughput gates need the smoke scale (or
    larger) to rise above interpreter noise; the CI ``storage-smoke``
    job applies them via the CLI.  Here the byte-identity digest and a
    relaxed latency ratio guard the correctness-critical properties on
    every tier-1 run.
    """
    report = run_benchmark(terms=600, average_entries=40, queries=150)
    print(format_report(report))
    assert report["digests_match"], "dict and mmap children disagree"
    assert report["cold"]["p99_ratio"] < 2 * MAX_P99_RATIO, report["cold"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="Packed storage engine benchmark and regression gate"
    )
    parser.add_argument("--child", choices=("null", "dict", "mmap"))
    parser.add_argument("--path", type=Path)
    parser.add_argument("--terms", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller workload for a fast CI smoke run",
    )
    parser.add_argument("--average-entries", type=int, default=None)
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail if build or mmap-qps regressed >30%% vs the "
        "committed baseline",
    )
    arguments = parser.parse_args()
    if arguments.child:
        run_child(
            arguments.child,
            arguments.path,
            arguments.terms,
            arguments.queries,
            arguments.seed,
        )
        sys.exit(0)
    terms = arguments.terms or (2000 if arguments.smoke else 20000)
    average = arguments.average_entries or (120 if arguments.smoke else 120)
    queries = arguments.queries or (400 if arguments.smoke else 1000)
    bench_report = run_benchmark(terms, average, queries, arguments.seed)
    print(format_report(bench_report))
    problems = check_gates(bench_report)
    if arguments.check_baseline:
        problems += check_baseline(bench_report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        sys.exit(1)
    print("all gates passed")
