"""The reverse-engineering adversary of Section IV-A.

The paper motivates the one-to-many mapping with an attack: a curious
server with background knowledge of keyword-specific score
distributions (e.g. Fig. 4's skewed "network" profile) can match an
*encrypted* posting list's score distribution against known keyword
profiles and re-identify the keyword — without breaking the trapdoor
or the OPSE — because deterministic OPSE preserves the multiplicity
structure of the plaintext distribution exactly.

:class:`FrequencyAttacker` implements that adversary.  Its invariant
signal is the **multiplicity profile**: the sorted vector of duplicate
counts of the observed values.  Under deterministic encryption the
profile of the ciphertexts equals the profile of the plaintext levels;
under the one-to-many mapping (with an adequately sized range) every
ciphertext is distinct and the profile degenerates to all-ones,
carrying no keyword signal.

``run_identification_experiment`` measures identification accuracy for
any score-protection function, with all candidate posting lists
subsampled to equal length so that list length (inherent SSE leakage,
orthogonal to score protection) cannot act as a side channel.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import ParameterError

#: A score-protection function: (keyword, level, file_id) -> value.
ScoreEncryptor = Callable[[str, int, str], int]


def multiplicity_profile(values: Sequence[int]) -> tuple[int, ...]:
    """Sorted duplicate-count vector — the attack's invariant signal."""
    if not values:
        raise ParameterError("values must be non-empty")
    return tuple(sorted(Counter(values).values(), reverse=True))


def profile_distance(
    profile_a: tuple[int, ...], profile_b: tuple[int, ...]
) -> int:
    """L1 distance between multiplicity profiles (zero-padded)."""
    length = max(len(profile_a), len(profile_b))
    padded_a = profile_a + (0,) * (length - len(profile_a))
    padded_b = profile_b + (0,) * (length - len(profile_b))
    return sum(abs(a - b) for a, b in zip(padded_a, padded_b))


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one identification experiment.

    Attributes
    ----------
    correct:
        Keywords identified correctly.
    total:
        Keywords attacked.
    chance:
        Random-guessing baseline (``1 / total``).
    """

    correct: int
    total: int

    @property
    def accuracy(self) -> float:
        """Identification accuracy."""
        return self.correct / self.total if self.total else 0.0

    @property
    def chance(self) -> float:
        """Random-guess accuracy over the candidate set."""
        return 1.0 / self.total if self.total else 0.0


class FrequencyAttacker:
    """A curious server with background score-distribution knowledge.

    Parameters
    ----------
    background:
        keyword -> plaintext score levels of its posting list.  This is
        the strongest variant (exact knowledge); accuracy with it upper
        bounds any weaker background.
    """

    def __init__(self, background: Mapping[str, Sequence[int]]):
        if not background:
            raise ParameterError("background knowledge must be non-empty")
        self._profiles = {
            keyword: multiplicity_profile(levels)
            for keyword, levels in background.items()
        }

    def guess(self, observed_values: Sequence[int]) -> str:
        """Name the keyword whose profile best matches the observation.

        Ties break alphabetically (deterministic, and pessimistic for
        the attacker no more than chance).
        """
        observed = multiplicity_profile(observed_values)
        best_keyword = None
        best_distance = None
        for keyword in sorted(self._profiles):
            distance = profile_distance(observed, self._profiles[keyword])
            if best_distance is None or distance < best_distance:
                best_keyword = keyword
                best_distance = distance
        assert best_keyword is not None
        return best_keyword


def run_identification_experiment(
    keyword_levels: Mapping[str, Sequence[int]],
    encryptor: ScoreEncryptor,
    sample_length: int | None = None,
    seed: int = 0,
) -> AttackResult:
    """Measure keyword re-identification accuracy against ``encryptor``.

    Parameters
    ----------
    keyword_levels:
        keyword -> plaintext score levels of its posting list.
    encryptor:
        The score protection under attack.  ``lambda kw, level, fid:
        level`` models no protection; a per-keyword deterministic OPSE
        ignores ``fid``; the paper's OPM uses all three arguments.
    sample_length:
        All lists are subsampled (seeded) to this common length so the
        attacker cannot key on list length; defaults to the shortest
        list.
    seed:
        Subsampling seed.
    """
    if not keyword_levels:
        raise ParameterError("keyword_levels must be non-empty")
    rng = random.Random(seed)
    shortest = min(len(levels) for levels in keyword_levels.values())
    if shortest == 0:
        raise ParameterError("every keyword needs at least one score")
    length = shortest if sample_length is None else min(sample_length, shortest)

    sampled = {
        keyword: rng.sample(list(levels), length)
        for keyword, levels in keyword_levels.items()
    }
    attacker = FrequencyAttacker(sampled)

    correct = 0
    for keyword, levels in sampled.items():
        observed = [
            encryptor(keyword, level, f"{keyword}-doc-{position}")
            for position, level in enumerate(levels)
        ]
        if attacker.guess(observed) == keyword:
            correct += 1
    return AttackResult(correct=correct, total=len(sampled))
