"""Window one-wayness experiments for OPSE/OPM.

Boldyreva et al. analyze order-preserving encryption through *window
one-wayness*: given a ciphertext, how precisely can an adversary locate
the plaintext?  Any order-preserving scheme leaks order, so exact
recovery is not the bar — the bar is whether the adversary can pin the
plaintext into a window smaller than what order information alone
implies.

These experiments make the paper's "as-strong-as-possible" claim
measurable on our instantiation:

* :func:`ciphertext_position_estimate` — the natural adversary: guess
  ``m ≈ ceil(c / N * M)`` by linear interpolation of the ciphertext
  position (this uses *only* public parameters);
* :func:`window_onewayness_experiment` — empirical success rate of the
  interpolation adversary at hitting a ±window around the truth, for
  any score-protection function;
* :func:`ordered_pair_advantage` — sanity floor: order of two known
  ciphertexts is always learnable (by design), so the reported
  advantage of any stronger guess should be read against that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ParameterError

#: A score-protection function mapping (level, file id) -> ciphertext.
Encryptor = Callable[[int, str], int]


def ciphertext_position_estimate(
    ciphertext: int, domain_size: int, range_size: int
) -> int:
    """Interpolation guess: plaintext proportional to ciphertext position."""
    if not 1 <= ciphertext <= range_size:
        raise ParameterError(
            f"ciphertext {ciphertext} outside range [1, {range_size}]"
        )
    estimate = math.ceil(ciphertext / range_size * domain_size)
    return max(1, min(domain_size, estimate))


@dataclass(frozen=True)
class OnewaynessResult:
    """Outcome of a window one-wayness experiment.

    Attributes
    ----------
    trials:
        Ciphertexts attacked.
    hits:
        Guesses within the window of the true plaintext.
    window:
        The +- window size (in score levels).
    baseline:
        Success probability of a *blind* guesser that knows only the
        domain size: ``min(1, (2*window + 1) / domain_size)``.
    """

    trials: int
    hits: int
    window: int
    baseline: float

    @property
    def success_rate(self) -> float:
        """Empirical adversary success probability."""
        return self.hits / self.trials if self.trials else 0.0

    @property
    def advantage(self) -> float:
        """Success beyond blind guessing (can be negative)."""
        return self.success_rate - self.baseline


def window_onewayness_experiment(
    encryptor: Encryptor,
    plaintexts: Sequence[int],
    domain_size: int,
    range_size: int,
    window: int = 0,
) -> OnewaynessResult:
    """Run the interpolation adversary over ``plaintexts``.

    For each plaintext (paired with a distinct file id, matching how
    the one-to-many mapping is used), encrypt, hand the adversary only
    the ciphertext and public parameters, and score a hit when its
    estimate lands within ``±window`` of the truth.
    """
    if not plaintexts:
        raise ParameterError("plaintexts must be non-empty")
    if window < 0:
        raise ParameterError(f"window must be >= 0, got {window}")
    if domain_size < 1 or range_size < domain_size:
        raise ParameterError("invalid domain/range sizes")
    hits = 0
    for position, plaintext in enumerate(plaintexts):
        if not 1 <= plaintext <= domain_size:
            raise ParameterError(
                f"plaintext {plaintext} outside domain [1, {domain_size}]"
            )
        ciphertext = encryptor(plaintext, f"ow-file-{position}")
        guess = ciphertext_position_estimate(
            ciphertext, domain_size, range_size
        )
        if abs(guess - plaintext) <= window:
            hits += 1
    baseline = min(1.0, (2 * window + 1) / domain_size)
    return OnewaynessResult(
        trials=len(plaintexts), hits=hits, window=window, baseline=baseline
    )


def ordered_pair_advantage(
    encryptor: Encryptor, low: int, high: int, trials: int = 32
) -> float:
    """Fraction of (low, high) encryption pairs whose order is visible.

    For an order-preserving scheme this is 1.0 by construction — the
    floor against which window-one-wayness advantages should be read.
    """
    if high <= low:
        raise ParameterError("high must exceed low")
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    visible = 0
    for trial in range(trials):
        a = encryptor(low, f"pair-a-{trial}")
        b = encryptor(high, f"pair-b-{trial}")
        if a < b:
            visible += 1
    return visible / trials
