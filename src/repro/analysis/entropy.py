"""Min-entropy tools (paper Section IV-C).

The range-size argument is phrased in min-entropy: after the
one-to-many mapping, the ciphertext distribution restricted to any
posting list must have *high* min-entropy — ``H_inf(X) in omega(log k)``
where ``k`` is the bit length describing the states of ``X`` — so that
no single encrypted value (hence no single score) is predictable.  The
paper operationalizes "high" as ``H_inf >= (log k)^c`` with ``c > 1``.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Mapping

from repro.errors import ParameterError


def min_entropy(distribution: Mapping[object, int] | Counter) -> float:
    """``H_inf(X) = -log2 max_a Pr[X = a]`` from observed counts."""
    total = sum(distribution.values())
    if total <= 0:
        raise ParameterError("distribution must contain at least one sample")
    if any(count < 0 for count in distribution.values()):
        raise ParameterError("counts must be non-negative")
    peak = max(distribution.values())
    return -math.log2(peak / total)


def min_entropy_of_values(values: Iterable[object]) -> float:
    """Convenience: min-entropy of a raw sample list."""
    counter = Counter(values)
    if not counter:
        raise ParameterError("values must be non-empty")
    return min_entropy(counter)


def high_min_entropy_threshold(state_bits: int, c: float = 1.1) -> float:
    """The ``(log2 k)^c`` threshold for "high" min-entropy.

    ``state_bits`` is ``k``, the bit width describing the states of the
    variable (``log2 |R|`` for OPM ciphertexts).
    """
    if state_bits < 2:
        raise ParameterError(f"state_bits must be >= 2, got {state_bits}")
    if not c > 1:
        raise ParameterError(f"c must be > 1, got {c}")
    return math.log2(state_bits) ** c


def has_high_min_entropy(
    distribution: Mapping[object, int] | Counter,
    state_bits: int,
    c: float = 1.1,
) -> bool:
    """Does the observed distribution meet the high-min-entropy bar?"""
    return min_entropy(distribution) >= high_min_entropy_threshold(
        state_bits, c
    )


def shannon_entropy(distribution: Mapping[object, int] | Counter) -> float:
    """Shannon entropy in bits (supplementary flatness metric)."""
    total = sum(distribution.values())
    if total <= 0:
        raise ParameterError("distribution must contain at least one sample")
    entropy = 0.0
    for count in distribution.values():
        if count < 0:
            raise ParameterError("counts must be non-negative")
        if count:
            p = count / total
            entropy -= p * math.log2(p)
    return entropy
