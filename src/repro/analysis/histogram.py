"""Equally spaced container histograms (Figs. 4 and 6 methodology).

The paper visualizes both raw score distributions (Fig. 4) and
OPM-encrypted value distributions (Fig. 6) by counting points in 128
equally spaced containers over the value range.  This module provides
exactly that binning, plus a text rendering used by the benches to
print the figure series.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ParameterError


def equal_width_histogram(
    values: Iterable[int | float],
    bins: int = 128,
    low: float | None = None,
    high: float | None = None,
) -> list[int]:
    """Count ``values`` into ``bins`` equally spaced containers.

    ``low``/``high`` default to the observed min/max; the top edge is
    inclusive (the paper's containers cover the full value range).
    """
    if bins < 1:
        raise ParameterError(f"bins must be >= 1, got {bins}")
    materialized = list(values)
    if not materialized:
        raise ParameterError("cannot histogram an empty value set")
    lo = float(min(materialized)) if low is None else float(low)
    hi = float(max(materialized)) if high is None else float(high)
    if hi < lo:
        raise ParameterError(f"empty range [{lo}, {hi}]")
    counts = [0] * bins
    if hi == lo:
        counts[0] = len(materialized)
        return counts
    width = (hi - lo) / bins
    for value in materialized:
        if value < lo or value > hi:
            raise ParameterError(
                f"value {value} outside histogram range [{lo}, {hi}]"
            )
        position = int((value - lo) / width)
        if position == bins:  # top edge inclusive
            position -= 1
        counts[position] += 1
    return counts


def render_histogram(
    counts: Sequence[int],
    max_width: int = 60,
    label_every: int = 16,
) -> str:
    """Render a histogram as fixed-width text rows (bench output)."""
    if not counts:
        raise ParameterError("cannot render an empty histogram")
    peak = max(counts) or 1
    lines = []
    for position, count in enumerate(counts):
        bar = "#" * max(0, round(count / peak * max_width))
        label = f"{position:>4}" if position % label_every == 0 else "    "
        lines.append(f"{label} |{bar} {count}" if count else f"{label} |")
    return "\n".join(lines)


def histogram_summary(counts: Sequence[int]) -> dict[str, float]:
    """Summary statistics of a histogram (bench reporting)."""
    if not counts:
        raise ParameterError("cannot summarize an empty histogram")
    total = sum(counts)
    nonzero = [count for count in counts if count]
    return {
        "bins": float(len(counts)),
        "total": float(total),
        "peak": float(max(counts)),
        "nonzero_bins": float(len(nonzero)),
        "peak_fraction": max(counts) / total if total else 0.0,
    }
