"""Security analysis tooling: entropy, histograms, flatness, attacks, leakage.

Implements the quantitative side of the paper's Sections IV-C and V:
min-entropy range sizing, the Fig. 4/6 histogram methodology, the
reverse-engineering adversary, and per-protocol leakage accounting.
"""

from repro.analysis.attacks import (
    AttackResult,
    FrequencyAttacker,
    multiplicity_profile,
    profile_distance,
    run_identification_experiment,
)
from repro.analysis.entropy import (
    has_high_min_entropy,
    high_min_entropy_threshold,
    min_entropy,
    min_entropy_of_values,
    shannon_entropy,
)
from repro.analysis.flatness import (
    FlatnessReport,
    duplicate_profile,
    flatness_report,
    ks_distance_to_uniform,
)
from repro.analysis.histogram import (
    equal_width_histogram,
    histogram_summary,
    render_histogram,
)
from repro.analysis.leakage import (
    LeakageProfile,
    ordered_pairs_full,
    ordered_pairs_topk,
    profile_search,
)
from repro.analysis.onewayness import (
    OnewaynessResult,
    ciphertext_position_estimate,
    ordered_pair_advantage,
    window_onewayness_experiment,
)
from repro.analysis.retrieval_quality import (
    QualityReport,
    WorkloadQuality,
    precision_at_k,
    quality_over_keywords,
    quantized_ranking_quality,
)

__all__ = [
    "AttackResult",
    "FlatnessReport",
    "FrequencyAttacker",
    "LeakageProfile",
    "OnewaynessResult",
    "QualityReport",
    "WorkloadQuality",
    "ciphertext_position_estimate",
    "duplicate_profile",
    "equal_width_histogram",
    "flatness_report",
    "has_high_min_entropy",
    "high_min_entropy_threshold",
    "histogram_summary",
    "ks_distance_to_uniform",
    "min_entropy",
    "min_entropy_of_values",
    "multiplicity_profile",
    "ordered_pair_advantage",
    "ordered_pairs_full",
    "ordered_pairs_topk",
    "precision_at_k",
    "profile_distance",
    "profile_search",
    "quality_over_keywords",
    "quantized_ranking_quality",
    "render_histogram",
    "run_identification_experiment",
    "shannon_entropy",
    "window_onewayness_experiment",
]
