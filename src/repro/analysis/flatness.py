"""Distribution-flatness metrics for the OPM effectiveness claims.

Section V argues the one-to-many mapping flattens the keyword-specific
score distribution; Fig. 6 shows it visually.  These metrics make the
claim quantitative so tests and benches can assert it:

* duplicate profile — how many ciphertexts collide (the paper reports
  *zero* duplicates at ``|R| = 2**46`` with 1000-score lists);
* peak-to-average ratio of the container histogram;
* Kolmogorov-Smirnov distance of the mapped values to the uniform
  distribution over the range (flat = small);
* normalized Shannon entropy of the container histogram (flat = near 1).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.entropy import shannon_entropy
from repro.analysis.histogram import equal_width_histogram
from repro.errors import ParameterError


@dataclass(frozen=True)
class FlatnessReport:
    """Flatness metrics of one value distribution."""

    count: int
    distinct: int
    max_duplicates: int
    peak_to_average: float
    ks_to_uniform: float
    normalized_entropy: float

    @property
    def has_duplicates(self) -> bool:
        """True when any two values collide."""
        return self.max_duplicates > 1


def duplicate_profile(values: Iterable[int]) -> Counter:
    """Multiplicity profile: value -> occurrence count."""
    counter = Counter(values)
    if not counter:
        raise ParameterError("values must be non-empty")
    return counter


def ks_distance_to_uniform(
    values: Sequence[int | float], low: float, high: float
) -> float:
    """Kolmogorov-Smirnov statistic against Uniform(low, high)."""
    if not values:
        raise ParameterError("values must be non-empty")
    if not high > low:
        raise ParameterError(f"invalid range [{low}, {high}]")
    ordered = sorted(values)
    n = len(ordered)
    worst = 0.0
    for position, value in enumerate(ordered):
        theoretical = (value - low) / (high - low)
        theoretical = min(1.0, max(0.0, theoretical))
        empirical_above = (position + 1) / n
        empirical_below = position / n
        worst = max(
            worst,
            abs(empirical_above - theoretical),
            abs(theoretical - empirical_below),
        )
    return worst


def flatness_report(
    values: Sequence[int],
    low: float,
    high: float,
    bins: int = 128,
) -> FlatnessReport:
    """Compute all flatness metrics over ``values`` in ``[low, high]``."""
    profile = duplicate_profile(values)
    histogram = equal_width_histogram(values, bins=bins, low=low, high=high)
    total = len(values)
    nonzero_average = total / bins
    max_bits = math.log2(bins)
    return FlatnessReport(
        count=total,
        distinct=len(profile),
        max_duplicates=max(profile.values()),
        peak_to_average=max(histogram) / nonzero_average,
        ks_to_uniform=ks_distance_to_uniform(values, low, high),
        normalized_entropy=(
            shannon_entropy(Counter(dict(enumerate(histogram)))) / max_bits
            if max_bits > 0
            else 1.0
        ),
    )
