"""Leakage profiles: what each protocol reveals to the server.

Section III-A fixes the baseline SSE leakage (access pattern + search
pattern); Section III-C notes the basic two-round protocol additionally
reveals that the requested files outrank the rest; Section IV trades
the *full relevance order* for one-round efficiency.  This module turns
those qualitative statements into a countable quantity — the number of
ordered file pairs the server learns per search — so the schemes'
leakage can sit next to their performance in one table:

* basic one-round: server learns **0** ordered pairs;
* basic two-round top-k over ``n`` matches: the ``k`` requested files
  each outrank the ``n - k`` others — ``k * (n - k)`` pairs;
* efficient RSSE over ``n`` matches: the full order — ``n(n-1)/2``
  pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.server import ServerLog
from repro.errors import ParameterError


@dataclass(frozen=True)
class LeakageProfile:
    """Quantified leakage of one search protocol execution.

    Attributes
    ----------
    access_pattern:
        Matched file ids the server saw.
    search_pattern_hits:
        How many times this address was queried before (equality
        pattern across searches).
    ordered_pairs_learned:
        Relevance-order pairs the server can now write down.
    score_values_seen:
        Distinct protected score values observed (OPM values leak
        order; ``E_z`` ciphertexts leak nothing and count as 0).
    """

    access_pattern: tuple[str, ...]
    search_pattern_hits: int
    ordered_pairs_learned: int
    score_values_seen: int


def ordered_pairs_full(n: int) -> int:
    """Pairs learned when the full ranking of ``n`` files is visible."""
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    return n * (n - 1) // 2


def ordered_pairs_topk(n: int, k: int) -> int:
    """Pairs learned when only "top-k beats the rest" is visible."""
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if k < 0:
        raise ParameterError(f"k must be >= 0, got {k}")
    k = min(k, n)
    return k * (n - k)


def profile_search(
    log: ServerLog,
    observation_index: int,
    scheme: str,
    top_k: int | None = None,
) -> LeakageProfile:
    """Build the leakage profile of one logged search.

    Parameters
    ----------
    log:
        The curious server's log.
    observation_index:
        Which observation to profile.
    scheme:
        ``"basic-one-round"``, ``"basic-two-round"`` or ``"rsse"``.
    top_k:
        The ``k`` of a top-k request where applicable.
    """
    try:
        observation = log.observations[observation_index]
    except IndexError:
        raise ParameterError(
            f"no observation at index {observation_index}"
        ) from None
    n = len(observation.matched_file_ids)
    if scheme == "basic-one-round":
        pairs = 0
        score_values = 0
    elif scheme == "basic-two-round":
        if top_k is None:
            raise ParameterError("basic-two-round requires top_k")
        pairs = ordered_pairs_topk(n, top_k)
        score_values = 0
    elif scheme == "rsse":
        pairs = ordered_pairs_full(n)
        score_values = len(set(observation.score_fields))
    else:
        raise ParameterError(f"unknown scheme {scheme!r}")
    earlier_hits = sum(
        1
        for earlier in log.observations[:observation_index]
        if earlier.address == observation.address and earlier.address
    )
    return LeakageProfile(
        access_pattern=observation.matched_file_ids,
        search_pattern_hits=earlier_hits,
        ordered_pairs_learned=pairs,
        score_values_seen=score_values,
    )


def server_log_from_events(events) -> ServerLog:
    """Replay an exported leakage-event stream as a :class:`ServerLog`.

    Takes the :class:`~repro.obs.events.LeakageEvent` sequence of an
    observability dump (live, or parsed back from a JSONL trace
    artifact via :func:`repro.obs.export.load_jsonl`) and rebuilds the
    curious server's log from it, so every analysis in this module —
    and the attack simulations that consume a :class:`ServerLog` —
    runs unchanged against *real serving traces* instead of
    synthesized ones.

    Two fidelity caveats, both inherent to the artifact format: the
    event stream stores a keyed *digest* of each trapdoor address
    (equal digests still mean equal keywords, so search-pattern
    analysis is exact), and it does not carry protected score fields
    (``score_values_seen`` of a replayed profile is therefore 0).
    """
    from repro.cloud.server import SearchObservation

    log = ServerLog()
    for event in events:
        log.observations.append(
            SearchObservation(
                address=bytes.fromhex(event.trapdoor),
                matched_file_ids=tuple(event.matched_file_ids),
                score_fields=(),
                returned_file_ids=tuple(event.returned_file_ids),
            )
        )
    return log
