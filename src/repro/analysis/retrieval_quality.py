"""Retrieval-quality metrics: what score quantization costs.

The efficient scheme cannot rank by exact scores — it ranks by scores
quantized to ``M`` levels (then OPM-mapped).  Coarser quantization
merges near-ties, so the server's ranking can deviate from the exact
equation-2 ranking within level boundaries.  The paper fixes
``M = 128`` without analyzing this trade-off; these metrics make it
measurable (see ``benchmarks/bench_quantization_ablation.py``):

* :func:`precision_at_k` — fraction of the true top-k retrieved;
* :func:`quantized_ranking_quality` — P@k and Kendall tau of the
  quantized ranking against the exact ranking for one keyword;
* :func:`quality_over_keywords` — averages over a keyword workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.multi_keyword import rank_correlation
from repro.core.results import RankedFile, as_ranking
from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex
from repro.ir.scoring import ScoreQuantizer, single_keyword_score
from repro.ir.topk import rank_all


def precision_at_k(
    true_ranking: Sequence[RankedFile],
    observed_ranking: Sequence[RankedFile],
    k: int,
) -> float:
    """|true top-k  ∩  observed top-k| / k (capped by list length)."""
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    effective = min(k, len(true_ranking))
    if effective == 0:
        return 1.0
    true_top = {entry.file_id for entry in true_ranking[:effective]}
    observed_top = {entry.file_id for entry in observed_ranking[:effective]}
    return len(true_top & observed_top) / effective


@dataclass(frozen=True)
class QualityReport:
    """Quantization-quality numbers for one keyword."""

    keyword: str
    matches: int
    kendall_tau: float
    precision_at_5: float
    precision_at_10: float
    precision_at_50: float


def _exact_ranking(index: InvertedIndex, term: str) -> list[RankedFile]:
    scored = [
        (
            posting.file_id,
            single_keyword_score(
                posting.term_frequency, index.file_length(posting.file_id)
            ),
        )
        for posting in index.posting_list(term)
    ]
    return as_ranking(rank_all(scored, key=lambda pair: pair[1]))


def _quantized_ranking(
    index: InvertedIndex, term: str, quantizer: ScoreQuantizer
) -> list[RankedFile]:
    scored = [
        (
            posting.file_id,
            quantizer.quantize(
                single_keyword_score(
                    posting.term_frequency,
                    index.file_length(posting.file_id),
                )
            ),
        )
        for posting in index.posting_list(term)
    ]
    return as_ranking(rank_all(scored, key=lambda pair: pair[1]))


def quantized_ranking_quality(
    index: InvertedIndex, term: str, quantizer: ScoreQuantizer
) -> QualityReport:
    """Compare the M-level ranking against the exact ranking."""
    exact = _exact_ranking(index, term)
    if not exact:
        raise ParameterError(f"term {term!r} has no postings")
    quantized = _quantized_ranking(index, term, quantizer)
    return QualityReport(
        keyword=term,
        matches=len(exact),
        kendall_tau=rank_correlation(quantized, exact),
        precision_at_5=precision_at_k(exact, quantized, 5),
        precision_at_10=precision_at_k(exact, quantized, 10),
        precision_at_50=precision_at_k(exact, quantized, 50),
    )


@dataclass(frozen=True)
class WorkloadQuality:
    """Averages of :class:`QualityReport` over a keyword workload."""

    levels: int
    keywords: int
    mean_tau: float
    mean_precision_at_10: float
    worst_precision_at_10: float


def quality_over_keywords(
    index: InvertedIndex,
    terms: Sequence[str],
    levels: int,
    headroom: float = 1.05,
) -> WorkloadQuality:
    """Fit an M-level quantizer collection-wide; average quality."""
    if not terms:
        raise ParameterError("terms must be non-empty")
    scores = [
        single_keyword_score(
            posting.term_frequency, index.file_length(posting.file_id)
        )
        for _, postings in index.items()
        for posting in postings
    ]
    quantizer = ScoreQuantizer.fit(scores, levels=levels, headroom=headroom)
    reports = [
        quantized_ranking_quality(index, term, quantizer) for term in terms
    ]
    return WorkloadQuality(
        levels=levels,
        keywords=len(reports),
        mean_tau=sum(report.kendall_tau for report in reports) / len(reports),
        mean_precision_at_10=sum(
            report.precision_at_10 for report in reports
        )
        / len(reports),
        worst_precision_at_10=min(
            report.precision_at_10 for report in reports
        ),
    )
