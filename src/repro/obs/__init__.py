"""Unified tracing + metrics subsystem (``repro.obs``).

One dependency-free observability layer for the serving, crypto, and
benchmark layers:

* :class:`~repro.obs.metrics.MetricsRegistry` — named counters,
  gauges, and fixed-bucket histograms; thread-safe, snapshot/merge-able
  (and :class:`~repro.obs.base.StatsBase`, the shared
  snapshot/reset/merge base behind ``ChannelStats`` / ``FaultStats`` /
  ``RetryStats`` / ``MappingStats``);
* :class:`~repro.obs.trace.Tracer` — per-query trace trees with
  deterministic span ids, injectable clocks, and a zero-overhead
  :data:`~repro.obs.trace.NOOP_TRACER` off switch;
* :class:`~repro.obs.events.LeakageLog` — the replayable stream of
  server-side observations (query id, trapdoor digest, matched files)
  that :mod:`repro.analysis.leakage` consumes;
* :mod:`~repro.obs.export` — JSONL artifacts, Prometheus text, and
  the human ``repro obs report`` table.

Instrumented classes accept a single optional :class:`Obs` bundle;
``obs=None`` (the default) keeps every instrumented path on the no-op
tracer with metrics updates skipped — the overhead-guard test pins
that this costs < 5% on the serving hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field as _field
from typing import Callable

from repro.obs.base import StatsBase
from repro.obs.events import LeakageEvent, LeakageLog, trapdoor_digest
from repro.obs.export import (
    ObsDump,
    SpanRecord,
    dump_jsonl,
    export_jsonl,
    load_jsonl,
    merge_dumps,
    render_prometheus,
    render_report,
    validate_records,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricPoint,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.trace import (
    NOOP_TRACER,
    FakeClock,
    NoopTracer,
    RemoteParent,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "FakeClock",
    "Gauge",
    "Histogram",
    "LeakageEvent",
    "LeakageLog",
    "MetricPoint",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NOOP_TRACER",
    "NoopTracer",
    "Obs",
    "ObsDump",
    "RemoteParent",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "SpanRecord",
    "StatsBase",
    "Tracer",
    "dump_jsonl",
    "export_jsonl",
    "load_jsonl",
    "merge_dumps",
    "render_prometheus",
    "render_report",
    "trapdoor_digest",
    "validate_records",
]


@dataclass
class Obs:
    """The observability bundle instrumented classes accept.

    One tracer + one metrics registry + one leakage log + one
    slow-query log, created together so a deployment has exactly one
    of each.  Construct via :meth:`enabled` (or directly, to share
    components).
    """

    tracer: Tracer
    metrics: MetricsRegistry
    leakage: LeakageLog = _field(default_factory=LeakageLog)
    slowlog: SlowQueryLog = _field(default_factory=SlowQueryLog)

    @classmethod
    def enabled(
        cls,
        clock: Callable[[], float] | None = None,
        slowlog: SlowQueryLog | None = None,
    ) -> "Obs":
        """A fully live bundle (optionally on an injected clock)."""
        return cls(
            tracer=Tracer(clock=clock),
            metrics=MetricsRegistry(),
            leakage=LeakageLog(),
            slowlog=slowlog if slowlog is not None else SlowQueryLog(),
        )

    def export_jsonl(self) -> str:
        """Serialize everything this bundle collected to JSONL."""
        return export_jsonl(
            tracer=self.tracer,
            metrics=self.metrics.snapshot(),
            leakage=self.leakage.events,
            slow=self.slowlog.entries,
        )

    def report(self) -> str:
        """Human-readable rendering of everything collected."""
        return render_report(load_jsonl(self.export_jsonl()))
