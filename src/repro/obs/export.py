"""Exporters: JSONL dump, Prometheus text, and a human report table.

One artifact format carries everything (``*.jsonl``, one JSON object
per line, ``type``-tagged):

* ``{"type": "meta", "format": "repro-obs", "version": 1}`` — first
  line, identifies the artifact;
* ``{"type": "span", ...}`` — one per finished span (trace id, span
  id, parent id, name, start/end seconds, attrs);
* ``{"type": "metric", ...}`` — one per metric point of a registry
  snapshot;
* ``{"type": "leakage", ...}`` — one per leakage event;
* ``{"type": "slowquery", ...}`` — one per kept slow-query entry
  (per-phase latency attribution).

:func:`validate_records` is the schema check CI runs over exported
artifacts (``scripts/check_trace_schema.py`` is a thin wrapper), and
:func:`render_report` is what ``repro obs report`` prints.

Multi-process deployments produce one artifact per process;
:func:`merge_dumps` labels and combines them into a single cluster
artifact (re-serialized by :func:`dump_jsonl`).  A span whose parent
lives in another process carries a ``remote_parent`` attribute, which
exempts it from the parent-resolvability check when its process-local
dump is validated on its own.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.errors import ParameterError
from repro.obs.events import LeakageEvent
from repro.obs.metrics import (
    GAUGE,
    HISTOGRAM,
    MetricPoint,
    MetricsSnapshot,
)
from repro.obs.slowlog import SlowQuery
from repro.obs.trace import Span, Tracer

#: Artifact format tag and version written to the meta line.
FORMAT = "repro-obs"
VERSION = 1


# -- JSONL writing ---------------------------------------------------------


def span_record(span: Span) -> dict[str, object]:
    """JSON-ready encoding of one finished span."""
    return {
        "type": "span",
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start_s": span.start_s,
        "end_s": span.end_s,
        "attrs": dict(span.attrs),
    }


def export_jsonl(
    tracer: Tracer | None = None,
    metrics: MetricsSnapshot | None = None,
    leakage: tuple[LeakageEvent, ...] = (),
    slow: tuple[SlowQuery, ...] = (),
) -> str:
    """Serialize traces + metrics + leakage + slow queries to JSONL."""
    lines = [
        json.dumps(
            {"type": "meta", "format": FORMAT, "version": VERSION},
            sort_keys=True,
        )
    ]
    if tracer is not None:
        for span in tracer.spans:
            lines.append(json.dumps(span_record(span), sort_keys=True))
    if metrics is not None:
        for point in metrics:
            record = {"type": "metric", **point.as_dict()}
            lines.append(json.dumps(record, sort_keys=True))
    for event in leakage:
        record = {"type": "leakage", **event.as_dict()}
        lines.append(json.dumps(record, sort_keys=True))
    for entry in slow:
        record = {"type": "slowquery", **entry.as_dict()}
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + "\n"


# -- JSONL reading ---------------------------------------------------------


@dataclass(frozen=True)
class SpanRecord:
    """A span as read back from a JSONL artifact."""

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    end_s: float
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Elapsed seconds."""
        return self.end_s - self.start_s

    def as_record(self) -> dict[str, object]:
        """JSON-ready encoding (for re-serializing a loaded dump)."""
        return {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
        }


@dataclass(frozen=True)
class ObsDump:
    """Everything one JSONL artifact contained."""

    spans: tuple[SpanRecord, ...]
    metrics: tuple[MetricPoint, ...]
    leakage: tuple[LeakageEvent, ...]
    slow: tuple[SlowQuery, ...] = ()

    def roots(self) -> tuple[SpanRecord, ...]:
        """Root spans (no parent), in trace order."""
        return tuple(
            span for span in self.spans if span.parent_id is None
        )

    def children(self, parent: SpanRecord) -> tuple[SpanRecord, ...]:
        """Direct children of ``parent``, in span-id order."""
        return tuple(
            span
            for span in self.spans
            if span.trace_id == parent.trace_id
            and span.parent_id == parent.span_id
        )


def load_jsonl(text: str) -> ObsDump:
    """Parse an exported artifact (errors raise ParameterError)."""
    problems = validate_records(text)
    if problems:
        raise ParameterError(
            f"malformed obs artifact: {problems[0]} "
            f"({len(problems)} problem(s) total)"
        )
    spans: list[SpanRecord] = []
    metrics: list[MetricPoint] = []
    leakage: list[LeakageEvent] = []
    slow: list[SlowQuery] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record["type"]
        if kind == "span":
            spans.append(
                SpanRecord(
                    trace_id=record["trace_id"],
                    span_id=record["span_id"],
                    parent_id=record["parent_id"],
                    name=record["name"],
                    start_s=record["start_s"],
                    end_s=record["end_s"],
                    attrs=dict(record.get("attrs", {})),
                )
            )
        elif kind == "metric":
            metrics.append(
                MetricPoint(
                    name=record["name"],
                    kind=record["kind"],
                    labels=tuple(
                        sorted(
                            (str(k), str(v))
                            for k, v in record.get("labels", {}).items()
                        )
                    ),
                    value=record["value"],
                    buckets=tuple(record.get("buckets", ())),
                    bucket_counts=tuple(record.get("bucket_counts", ())),
                    count=record.get("count", 0),
                )
            )
        elif kind == "leakage":
            leakage.append(LeakageEvent.from_dict(record))
        elif kind == "slowquery":
            slow.append(SlowQuery.from_dict(record))
    spans.sort(key=lambda span: (span.trace_id, span.span_id))
    return ObsDump(
        spans=tuple(spans),
        metrics=tuple(metrics),
        leakage=tuple(leakage),
        slow=tuple(slow),
    )


def dump_jsonl(dump: ObsDump) -> str:
    """Re-serialize a loaded (or merged) dump back to JSONL text."""
    lines = [
        json.dumps(
            {"type": "meta", "format": FORMAT, "version": VERSION},
            sort_keys=True,
        )
    ]
    for span in dump.spans:
        lines.append(json.dumps(span.as_record(), sort_keys=True))
    for point in dump.metrics:
        record = {"type": "metric", **point.as_dict()}
        lines.append(json.dumps(record, sort_keys=True))
    for event in dump.leakage:
        record = {"type": "leakage", **event.as_dict()}
        lines.append(json.dumps(record, sort_keys=True))
    for entry in dump.slow:
        record = {"type": "slowquery", **entry.as_dict()}
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + "\n"


def merge_dumps(
    labeled: list[tuple[str, ObsDump]],
) -> ObsDump:
    """Combine per-process dumps into one labeled cluster dump.

    Each ``(label, dump)`` pair contributes its spans (tagged with a
    ``worker`` attribute), its metric points (relabeled with
    ``worker=label`` then merged via
    :meth:`~repro.obs.metrics.MetricsSnapshot.merged`, so per-process
    series stay distinct), and its leakage/slow-query records (tagged
    with the label in their ``worker`` field).  Tagging never
    overwrites: a record already carrying a ``worker``
    label/attribute/field keeps it — that is how a front end
    publishing per-shard breaker gauges
    (``repro_net_breaker_state{worker="2"}``) contributes them
    without having them collapsed under its own label.  An empty
    label leaves records untagged.  Cross-process trace ids are shared — the traced
    wire envelope propagates the front end's — so the merged span set
    forms complete trees where every worker-side remote parent now
    resolves.
    """
    spans: list[SpanRecord] = []
    snapshots: list[MetricsSnapshot] = []
    leakage: list[LeakageEvent] = []
    slow: list[SlowQuery] = []
    for label, dump in labeled:
        for span in dump.spans:
            if label and "worker" not in span.attrs:
                span = replace(
                    span, attrs={**span.attrs, "worker": label}
                )
            spans.append(span)
        points = []
        for point in dump.metrics:
            if label and "worker" not in dict(point.labels):
                combined = dict(point.labels)
                combined["worker"] = label
                point = replace(
                    point, labels=tuple(sorted(combined.items()))
                )
            points.append(point)
        snapshots.append(MetricsSnapshot(points=tuple(points)))
        for event in dump.leakage:
            if label and not event.worker:
                event = replace(event, worker=label)
            leakage.append(event)
        for entry in dump.slow:
            if label and not entry.worker:
                entry = replace(entry, worker=label)
            slow.append(entry)
    spans.sort(key=lambda span: (span.trace_id, span.span_id))
    return ObsDump(
        spans=tuple(spans),
        metrics=MetricsSnapshot.merged(snapshots).points,
        leakage=tuple(leakage),
        slow=tuple(slow),
    )


# -- schema validation -----------------------------------------------------

_SPAN_FIELDS = {
    "trace_id": int,
    "span_id": int,
    "name": str,
    "start_s": (int, float),
    "end_s": (int, float),
    "attrs": dict,
}
_METRIC_FIELDS = {"name": str, "kind": str, "labels": dict}
_LEAKAGE_FIELDS = {
    "query_id": int,
    "trapdoor": str,
    "matched_file_ids": list,
    "returned_file_ids": list,
}
_SLOWQUERY_FIELDS = {
    "trace_id": int,
    "kind": str,
    "total_s": (int, float),
    "phases": list,
}


def validate_records(text: str) -> list[str]:
    """Schema-check a JSONL artifact; returns a list of problems.

    An empty list means the artifact is well-formed: a valid meta
    header, every line a known ``type`` with required typed fields,
    span times monotonic, and every span parent resolvable within its
    trace — except spans flagged ``remote_parent``, whose parent lives
    in another process's dump (they resolve once dumps are merged).
    """
    problems: list[str] = []
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return ["artifact is empty"]
    records = []
    for number, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {number}: not JSON ({exc})")
            continue
        if not isinstance(record, dict) or "type" not in record:
            problems.append(f"line {number}: missing 'type' tag")
            continue
        records.append((number, record))
    if problems:
        return problems
    first = records[0][1]
    if first.get("type") != "meta" or first.get("format") != FORMAT:
        problems.append(
            "line 1: first line must be the "
            f'{{"type": "meta", "format": "{FORMAT}"}} header'
        )
    elif first.get("version") != VERSION:
        problems.append(
            f"line 1: unsupported version {first.get('version')!r}"
        )

    span_ids: dict[int, set[int]] = {}
    parents: list[tuple[int, int, int]] = []
    for number, record in records[1:]:
        kind = record["type"]
        if kind == "span":
            required = _SPAN_FIELDS
        elif kind == "metric":
            required = _METRIC_FIELDS
        elif kind == "leakage":
            required = _LEAKAGE_FIELDS
        elif kind == "slowquery":
            required = _SLOWQUERY_FIELDS
        elif kind == "meta":
            problems.append(f"line {number}: duplicate meta line")
            continue
        else:
            problems.append(
                f"line {number}: unknown record type {kind!r}"
            )
            continue
        field_problems: list[str] = []
        for name, expected in required.items():
            if name not in record:
                field_problems.append(
                    f"line {number}: {kind} missing field {name!r}"
                )
            elif not isinstance(record[name], expected) or isinstance(
                record[name], bool
            ):
                field_problems.append(
                    f"line {number}: {kind} field {name!r} has type "
                    f"{type(record[name]).__name__}"
                )
        problems.extend(field_problems)
        if kind == "span" and not field_problems:
            if record["end_s"] < record["start_s"]:
                problems.append(
                    f"line {number}: span ends before it starts"
                )
            span_ids.setdefault(record["trace_id"], set()).add(
                record["span_id"]
            )
            if record.get("parent_id") is not None and not record[
                "attrs"
            ].get("remote_parent"):
                parents.append(
                    (number, record["trace_id"], record["parent_id"])
                )
    for number, trace_id, parent_id in parents:
        if parent_id not in span_ids.get(trace_id, set()):
            problems.append(
                f"line {number}: parent span {parent_id} not found in "
                f"trace {trace_id}"
            )
    return problems


# -- Prometheus text rendering ---------------------------------------------


def _labels_text(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """Prometheus exposition-format text for one registry snapshot."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for point in snapshot:
        if point.name not in seen_types:
            seen_types.add(point.name)
            lines.append(f"# TYPE {point.name} {point.kind}")
        if point.kind == HISTOGRAM:
            cumulative = 0
            for bound, count in zip(point.buckets, point.bucket_counts):
                cumulative += count
                labels = _labels_text(point.labels, f'le="{bound}"')
                lines.append(
                    f"{point.name}_bucket{labels} {cumulative}"
                )
            cumulative += point.bucket_counts[-1]
            labels = _labels_text(point.labels, 'le="+Inf"')
            lines.append(f"{point.name}_bucket{labels} {cumulative}")
            base = _labels_text(point.labels)
            lines.append(f"{point.name}_sum{base} {point.value}")
            lines.append(f"{point.name}_count{base} {point.count}")
        else:
            labels = _labels_text(point.labels)
            lines.append(f"{point.name}{labels} {point.value}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- human report ----------------------------------------------------------


def _format_attrs(attrs: dict[str, object]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(
        f"{key}={value}" for key, value in sorted(attrs.items())
    )
    return f"  [{inner}]"


def _render_span(
    dump: ObsDump,
    span: SpanRecord,
    root_duration: float,
    depth: int,
    lines: list[str],
) -> None:
    share = (
        span.duration_s / root_duration * 100.0
        if root_duration > 0
        else 100.0
    )
    indent = "  " * depth
    lines.append(
        f"  {span.duration_s * 1000:9.3f} ms  {share:5.1f}%  "
        f"{indent}{span.name}{_format_attrs(span.attrs)}"
    )
    for child in dump.children(span):
        _render_span(dump, child, root_duration, depth + 1, lines)


def render_report(dump: ObsDump) -> str:
    """The ``repro obs report`` rendering: traces, metrics, leakage."""
    lines: list[str] = []
    roots = dump.roots()
    lines.append(
        f"== traces ({len(roots)} root span(s), "
        f"{len(dump.spans)} total) =="
    )
    for root in roots:
        lines.append(
            f"trace {root.trace_id}  "
            f"({root.duration_s * 1000:.3f} ms total)"
        )
        _render_span(dump, root, root.duration_s, 0, lines)
    if dump.metrics:
        lines.append("")
        lines.append(f"== metrics ({len(dump.metrics)} point(s)) ==")
        for point in dump.metrics:
            labels = _labels_text(point.labels)
            if point.kind == HISTOGRAM:
                mean = point.value / point.count if point.count else 0.0
                lines.append(
                    f"  {point.name}{labels}  count={point.count} "
                    f"sum={point.value:.6g} mean={mean:.6g}"
                )
            else:
                tag = " (gauge)" if point.kind == GAUGE else ""
                lines.append(
                    f"  {point.name}{labels}  {point.value:g}{tag}"
                )
    if dump.leakage:
        lines.append("")
        distinct = len({event.trapdoor for event in dump.leakage})
        lines.append(
            f"== leakage events ({len(dump.leakage)} queries, "
            f"{distinct} distinct trapdoor(s)) =="
        )
        for event in dump.leakage:
            lines.append(
                f"  q{event.query_id}  trapdoor={event.trapdoor[:12]}… "
                f"matched={len(event.matched_file_ids)} "
                f"returned={len(event.returned_file_ids)}"
            )
    if dump.slow:
        lines.append("")
        lines.append(f"== slow queries ({len(dump.slow)} kept) ==")
        for entry in dump.slow:
            breakdown = " ".join(
                f"{name}={seconds * 1000:.3f}ms"
                for name, seconds in entry.phases
            )
            origin = f" worker={entry.worker}" if entry.worker else ""
            tag = " (sampled)" if entry.sampled else ""
            lines.append(
                f"  trace {entry.trace_id}  {entry.kind}  "
                f"{entry.total_s * 1000:.3f} ms{origin}{tag}  "
                f"[{breakdown}]"
            )
    return "\n".join(lines) + "\n"
