"""Named counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the cluster's one place for numeric
observability: instruments are created on first use (idempotently, so
instrumented code never checks "does this metric exist"), every update
and every :meth:`MetricsRegistry.snapshot` serialize on one registry
lock — a sampled view is never torn, the same guarantee the PR 2
``ChannelStats`` fix established for channel counters — and snapshots
merge across registries (per-shard, per-process, per-bench) into one
aggregate.

Design constraints, in order:

* **dependency-free** — plain stdlib, importable everywhere including
  the crypto layer;
* **deterministic** — iteration order is insertion order, snapshots
  sort by (name, labels), histogram buckets are fixed at creation; two
  identical runs produce byte-identical exports;
* **cheap** — an update is one lock acquisition and one integer add;
  instruments are cached by the caller or re-fetched via a dict hit.

Naming scheme (see docs/ARCHITECTURE.md): ``repro_<layer>_<what>`` with
``_total`` for counters and ``_seconds``/``_bytes`` unit suffixes, e.g.
``repro_cluster_requests_total`` or ``repro_retry_backoff_seconds``.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ParameterError

#: Default histogram upper bounds (seconds-flavoured, log-ish spacing).
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

#: Instrument kinds.
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def _label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (updates under registry lock)."""

    kind = COUNTER

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ParameterError(
                f"counter increments must be >= 0, got {amount}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = GAUGE

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        """Shift the level by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current level."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram (cumulative counts, Prometheus-style).

    ``buckets`` are the finite upper bounds; an implicit ``+Inf``
    bucket catches the rest.  ``observe`` updates the bucket counts,
    the running sum, and the observation count under one lock, so a
    snapshot can never see ``count != sum(bucket counts)``.
    """

    kind = HISTOGRAM

    def __init__(
        self,
        lock: threading.Lock,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ParameterError(
                "histogram buckets must be a strictly increasing, "
                f"non-empty sequence, got {buckets!r}"
            )
        self._lock = lock
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[position] += 1
                    break
            else:
                self._counts[-1] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum


@dataclass(frozen=True)
class MetricPoint:
    """One instrument's state inside a :class:`MetricsSnapshot`.

    ``value`` carries the counter/gauge value (and the histogram sum);
    ``bucket_counts`` / ``count`` are histogram-only (empty/0 else).
    """

    name: str
    kind: str
    labels: tuple[tuple[str, str], ...]
    value: float
    buckets: tuple[float, ...] = ()
    bucket_counts: tuple[int, ...] = ()
    count: int = 0

    def as_dict(self) -> dict[str, object]:
        """JSON-ready encoding (used by the JSONL exporter)."""
        record: dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }
        if self.kind == HISTOGRAM:
            record["buckets"] = list(self.buckets)
            record["bucket_counts"] = list(self.bucket_counts)
            record["count"] = self.count
        return record


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable, internally consistent registry view."""

    points: tuple[MetricPoint, ...]

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def get(
        self, name: str, **labels: object
    ) -> MetricPoint | None:
        """The point for ``(name, labels)``, or None."""
        key = _label_key(labels)
        for point in self.points:
            if point.name == name and point.labels == key:
                return point
        return None

    def value(self, name: str, **labels: object) -> float:
        """Counter/gauge value (0.0 when the metric never fired)."""
        point = self.get(name, **labels)
        return point.value if point is not None else 0.0

    def with_labels(self, **labels: object) -> "MetricsSnapshot":
        """A copy with ``labels`` merged into every point.

        New labels win on key collision.  This is how a coordinator
        tags each process's snapshot (``worker="2"``) before
        :meth:`merged`, so identically named per-worker series stay
        distinct instead of summing into one anonymous aggregate.
        """
        relabeled = []
        for point in self.points:
            combined = dict(point.labels)
            combined.update(
                (str(k), str(v)) for k, v in labels.items()
            )
            relabeled.append(
                MetricPoint(
                    name=point.name,
                    kind=point.kind,
                    labels=tuple(sorted(combined.items())),
                    value=point.value,
                    buckets=point.buckets,
                    bucket_counts=point.bucket_counts,
                    count=point.count,
                )
            )
        relabeled.sort(key=lambda point: (point.name, point.labels))
        return MetricsSnapshot(points=tuple(relabeled))

    def as_dict(self) -> dict[str, object]:
        """JSON-ready encoding of every point."""
        return {"metrics": [point.as_dict() for point in self.points]}

    def to_json(self) -> str:
        """Stable (sorted-key) JSON encoding."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    @classmethod
    def merged(
        cls, snapshots: Iterable["MetricsSnapshot"]
    ) -> "MetricsSnapshot":
        """Sum several snapshots (gauges: last write wins).

        Counters and histogram sums/counts add; bucket geometries must
        agree for histograms sharing a name+labels.
        """
        combined: dict[
            tuple[str, tuple[tuple[str, str], ...]], MetricPoint
        ] = {}
        for snapshot in snapshots:
            for point in snapshot.points:
                key = (point.name, point.labels)
                present = combined.get(key)
                if present is None:
                    combined[key] = point
                    continue
                if present.kind != point.kind:
                    raise ParameterError(
                        f"metric {point.name!r} merged across kinds "
                        f"{present.kind!r} and {point.kind!r}"
                    )
                if point.kind == GAUGE:
                    combined[key] = point
                elif point.kind == COUNTER:
                    combined[key] = MetricPoint(
                        name=point.name,
                        kind=COUNTER,
                        labels=point.labels,
                        value=present.value + point.value,
                    )
                else:
                    if present.buckets != point.buckets:
                        raise ParameterError(
                            f"histogram {point.name!r} merged across "
                            "different bucket geometries"
                        )
                    combined[key] = MetricPoint(
                        name=point.name,
                        kind=HISTOGRAM,
                        labels=point.labels,
                        value=present.value + point.value,
                        buckets=point.buckets,
                        bucket_counts=tuple(
                            a + b
                            for a, b in zip(
                                present.bucket_counts, point.bucket_counts
                            )
                        ),
                        count=present.count + point.count,
                    )
        points = tuple(
            combined[key]
            for key in sorted(combined, key=lambda k: (k[0], k[1]))
        )
        return cls(points=points)


class MetricsRegistry:
    """Thread-safe home of named instruments.

    One lock serializes instrument creation, every update, and
    :meth:`snapshot`; sampling a registry that other threads are
    updating therefore always yields an internally consistent view
    (the deflake-guard property in ``tests/obs/test_concurrency.py``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[
            tuple[str, tuple[tuple[str, str], ...]],
            Counter | Gauge | Histogram,
        ] = {}

    def _get_or_create(
        self,
        name: str,
        labels: Mapping[str, object],
        kind: str,
        factory,
    ):
        if not name:
            raise ParameterError("metric name must be non-empty")
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
        if instrument.kind != kind:
            raise ParameterError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, requested {kind}"
            )
        return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        """Get-or-create a counter."""
        return self._get_or_create(
            name, labels, COUNTER, lambda: Counter(self._lock)
        )

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get-or-create a gauge."""
        return self._get_or_create(
            name, labels, GAUGE, lambda: Gauge(self._lock)
        )

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """Get-or-create a histogram (buckets fixed on first use)."""
        return self._get_or_create(
            name,
            labels,
            HISTOGRAM,
            lambda: Histogram(self._lock, buckets=buckets),
        )

    def snapshot(self) -> MetricsSnapshot:
        """Atomic view of every instrument, sorted by (name, labels)."""
        with self._lock:
            points = []
            for (name, labels), instrument in self._instruments.items():
                if isinstance(instrument, Histogram):
                    points.append(
                        MetricPoint(
                            name=name,
                            kind=HISTOGRAM,
                            labels=labels,
                            value=instrument._sum,
                            buckets=instrument.buckets,
                            bucket_counts=tuple(instrument._counts),
                            count=instrument._count,
                        )
                    )
                else:
                    points.append(
                        MetricPoint(
                            name=name,
                            kind=instrument.kind,
                            labels=labels,
                            value=instrument._value,
                        )
                    )
        points.sort(key=lambda point: (point.name, point.labels))
        return MetricsSnapshot(points=tuple(points))

    def reset(self) -> None:
        """Drop every instrument (callers re-create on next use)."""
        with self._lock:
            self._instruments.clear()

    def to_json(self) -> str:
        """Stable JSON encoding of a fresh snapshot."""
        return self.snapshot().to_json()
