"""Per-query trace trees: spans with deterministic ids and timings.

A :class:`Tracer` produces one tree per served query: a root span for
the cluster entry point, child spans for shard dispatch, retry
attempts, server-side search phases, and so on.  Spans carry monotonic
timings and structured attributes (shard id, attempt number, postings
scanned, cache hit/miss) — the per-stage accounting that makes a
sharded encrypted-search deployment tunable (cf. the distributed
framework of arXiv:1408.5539).

Two properties the test suites depend on:

* **determinism** — span and trace ids come from a plain counter
  under the tracer lock, and the clock is injectable, so a seeded run
  with a fake clock exports a byte-identical JSONL trace;
* **near-zero overhead when off** — the serving path is instrumented
  against :data:`NOOP_TRACER`, whose ``span()`` returns a shared no-op
  context manager; with tracing off, the extra cost of a traced call
  is a few attribute reads (the overhead-guard test pins this).

Parenting is thread-local: ``tracer.span(name)`` nests under the
span currently open *in the calling thread*; a fan-out boundary (the
cluster's thread pool) passes ``parent=`` explicitly to bridge
threads.  A *process* boundary passes a :class:`RemoteParent` — the
(trace id, span id) pair carried on the wire by the network layer's
traced envelope — and disjoint ``id_base`` ranges keep each worker
process's span ids from colliding with the front end's when their
artifacts are merged into one cluster trace.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.errors import ParameterError


class Span:
    """One timed, attributed operation inside a trace tree.

    Use as a context manager (via :meth:`Tracer.span`); the span is
    recorded into the tracer when the block exits.  Attributes set
    after exit are ignored by exporters only in the sense that the
    span was already serialized from live state — set them inside the
    block.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_s",
        "end_s",
        "attrs",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        name: str,
        start_s: float,
        attrs: dict[str, Any],
    ):
        self._tracer = tracer
        self._token: "Span | None" = None
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.end_s: float | None = None
        self.attrs = attrs

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attrs: Any) -> "Span":
        """Attach structured attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._token = self._tracer._push_current(self)
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self, self._token)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, name={self.name!r})"
        )


class _NoopSpan:
    """The shared do-nothing span of :class:`NoopTracer`."""

    __slots__ = ()

    trace_id = 0
    span_id = 0
    parent_id = None
    name = ""
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0
    attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class RemoteParent:
    """A parent span that lives in another process.

    Carries just the (trace id, span id) pair a traced wire envelope
    ships across a process boundary; pass it as ``parent=`` to adopt
    the remote caller's trace.  Spans opened under a remote parent are
    marked with a ``remote_parent`` attribute so artifact validation
    knows their parent resolves in the *caller's* dump, not the local
    one.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int):
        if trace_id < 1 or span_id < 1:
            raise ParameterError(
                "remote parent ids must be >= 1, got "
                f"trace {trace_id} / span {span_id}"
            )
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteParent(trace={self.trace_id}, id={self.span_id})"
        )


class NoopTracer:
    """The off switch: same surface as :class:`Tracer`, zero work.

    ``enabled`` is False, so call sites can skip attribute
    computations entirely (``if tracer.enabled: ...``); everything
    else is safe to call unconditionally.
    """

    enabled = False

    def span(
        self, name: str, parent: Any = None, **attrs: Any
    ) -> _NoopSpan:
        """A shared no-op context manager."""
        return NOOP_SPAN

    def current(self) -> None:
        """No current span, ever."""
        return None

    def annotate(self, **attrs: Any) -> None:
        """Dropped."""

    @property
    def spans(self) -> tuple[()]:
        """Always empty."""
        return ()

    def reset(self) -> None:
        """Nothing to clear."""


#: Shared no-op tracer; instrumented code defaults to this.
NOOP_TRACER = NoopTracer()


class Tracer:
    """Collects finished spans into per-trace trees.

    Parameters
    ----------
    clock:
        Monotonic time source (seconds).  Injectable so deterministic
        suites can drive a fake clock; defaults to
        :func:`time.perf_counter`.
    max_spans:
        Retention cap: once this many spans are recorded, the oldest
        are dropped (a tracer left on in a long-lived server must not
        grow without bound).
    id_base:
        Starting offset for span and trace ids (ids count up from
        ``id_base + 1``).  Give each process of a distributed
        deployment a disjoint base so merged cluster artifacts never
        collide on ids; the default 0 keeps single-process traces
        (and their golden artifacts) unchanged.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        max_spans: int = 100_000,
        id_base: int = 0,
    ):
        if max_spans < 1:
            raise ParameterError(
                f"max_spans must be >= 1, got {max_spans}"
            )
        if id_base < 0:
            raise ParameterError(
                f"id_base must be >= 0, got {id_base}"
            )
        self._clock = clock if clock is not None else time.perf_counter
        self._max_spans = max_spans
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._next_span_id = id_base + 1
        self._next_trace_id = id_base + 1
        self._local = threading.local()

    # -- span lifecycle ----------------------------------------------------

    def span(
        self,
        name: str,
        parent: "Span | _NoopSpan | RemoteParent | None" = None,
        **attrs: Any,
    ) -> Span:
        """Open a span (use as a context manager).

        With no explicit ``parent``, nests under the calling thread's
        current span; with neither, starts a new trace (a root span).
        A ``parent`` argument bridges thread boundaries (pass the root
        span into pool workers) or process boundaries (pass the
        :class:`RemoteParent` a traced wire envelope carried in).
        """
        if not name:
            raise ParameterError("span name must be non-empty")
        attrs = dict(attrs)
        if isinstance(parent, RemoteParent):
            attrs["remote_parent"] = True
        if parent is None:
            parent = self.current()
        if isinstance(parent, _NoopSpan):
            parent = None
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
            if parent is None:
                trace_id = self._next_trace_id
                self._next_trace_id += 1
                parent_id = None
            else:
                trace_id = parent.trace_id
                parent_id = parent.span_id
        return Span(
            tracer=self,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start_s=self._clock(),
            attrs=dict(attrs),
        )

    def _push_current(self, span: Span) -> Span | None:
        previous = getattr(self._local, "current", None)
        self._local.current = span
        return previous

    def _finish(self, span: Span, previous: Span | None) -> None:
        span.end_s = self._clock()
        self._local.current = previous
        with self._lock:
            self._finished.append(span)
            overflow = len(self._finished) - self._max_spans
            if overflow > 0:
                del self._finished[:overflow]

    # -- inspection --------------------------------------------------------

    def current(self) -> Span | None:
        """The calling thread's innermost open span, if any."""
        return getattr(self._local, "current", None)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the calling thread's current span."""
        span = self.current()
        if span is not None:
            span.set(**attrs)

    @property
    def spans(self) -> tuple[Span, ...]:
        """Finished spans, sorted by (trace id, span id)."""
        with self._lock:
            finished = list(self._finished)
        finished.sort(key=lambda span: (span.trace_id, span.span_id))
        return tuple(finished)

    def trace_ids(self) -> tuple[int, ...]:
        """Distinct trace ids with at least one finished span."""
        return tuple(
            sorted({span.trace_id for span in self.spans})
        )

    def reset(self) -> None:
        """Drop finished spans (ids keep counting, stays monotonic)."""
        with self._lock:
            self._finished.clear()


class FakeClock:
    """A deterministic clock: each read advances by a fixed step.

    Drives golden-trace tests — span timings become a pure function of
    the instrumentation call sequence.
    """

    def __init__(self, step_s: float = 0.001):
        if step_s <= 0:
            raise ParameterError(f"step_s must be positive, got {step_s}")
        self._step_s = step_s
        self._ticks = 0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            tick = self._ticks
            self._ticks += 1
        return tick * self._step_s
