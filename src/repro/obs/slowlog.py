"""The sampled slow-query log: per-phase latency attribution.

A production search tier cares about two kinds of query: the slow
ones (kept whenever their total phase time crosses a threshold) and a
representative sample of everything else (kept every ``sample_every``
queries, counter-based so sampling is a pure function of query order —
deterministic under :class:`~repro.obs.trace.FakeClock`, no RNG, no
wall clock).  Each kept entry records where the time went, phase by
phase (decode -> cache/postings -> aggregate -> rank -> respond),
derived from the server's own spans, so a slow query arrives already
attributed.

Entries live in a bounded ring (oldest dropped first) and ride along
in the standard JSONL artifact as ``{"type": "slowquery", ...}``
records, which the admin endpoint's ``health`` section also surfaces
for ``repro top``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.errors import ParameterError

#: Default threshold above which a query is always kept (seconds).
DEFAULT_SLOW_THRESHOLD_S = 0.1

#: Default ring capacity.
DEFAULT_SLOWLOG_CAPACITY = 128


@dataclass(frozen=True)
class SlowQuery:
    """One kept query with its per-phase latency breakdown.

    Attributes
    ----------
    trace_id:
        The trace tree the query was served under (0 untraced).
    kind:
        The request kind (``search`` / ``multi-search``).
    total_s:
        Sum of the phase durations (the measured handler time).
    phases:
        ``(phase name, seconds)`` pairs in execution order.
    sampled:
        True when the entry was kept by the sampling counter rather
        than by crossing the slow threshold.
    worker:
        Shard label once merged into a cluster artifact ("" locally).
    """

    trace_id: int
    kind: str
    total_s: float
    phases: tuple[tuple[str, float], ...]
    sampled: bool = False
    worker: str = ""

    def as_dict(self) -> dict[str, object]:
        """JSON-ready encoding (used by the JSONL exporter)."""
        # Phases are a *list* of pairs, not a mapping: the exporter
        # serializes with sort_keys, and execution order (decode
        # before rank) is the information a latency breakdown exists
        # to convey.
        record: dict[str, object] = {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "total_s": self.total_s,
            "phases": [
                [name, seconds] for name, seconds in self.phases
            ],
            "sampled": self.sampled,
        }
        if self.worker:
            record["worker"] = self.worker
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "SlowQuery":
        """Parse one exporter record."""
        return cls(
            trace_id=int(record["trace_id"]),
            kind=str(record["kind"]),
            total_s=float(record["total_s"]),
            phases=tuple(
                (str(name), float(seconds))
                for name, seconds in (
                    record["phases"].items()
                    if isinstance(record["phases"], dict)
                    else record["phases"]
                )
            ),
            sampled=bool(record.get("sampled", False)),
            worker=str(record.get("worker", "")),
        )


class SlowQueryLog:
    """Thread-safe bounded ring of :class:`SlowQuery` entries.

    Parameters
    ----------
    threshold_s:
        Queries whose phase total meets or exceeds this are always
        kept.  ``0.0`` keeps everything (the deterministic-demo
        setting).
    sample_every:
        Additionally keep every Nth query regardless of duration
        (``0`` disables sampling).  The counter covers *all* recorded
        queries, so the sample is unbiased toward fast ones.
    capacity:
        Ring size; the oldest entries fall out first.
    """

    def __init__(
        self,
        threshold_s: float = DEFAULT_SLOW_THRESHOLD_S,
        sample_every: int = 0,
        capacity: int = DEFAULT_SLOWLOG_CAPACITY,
    ):
        if threshold_s < 0:
            raise ParameterError(
                f"threshold_s must be >= 0, got {threshold_s}"
            )
        if sample_every < 0:
            raise ParameterError(
                f"sample_every must be >= 0, got {sample_every}"
            )
        if capacity < 1:
            raise ParameterError(
                f"capacity must be >= 1, got {capacity}"
            )
        self.threshold_s = threshold_s
        self.sample_every = sample_every
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)
        self._seen = 0

    def record(
        self,
        kind: str,
        trace_id: int,
        phases: tuple[tuple[str, float], ...],
    ) -> SlowQuery | None:
        """Consider one served query; returns the entry if kept."""
        total_s = sum(seconds for _, seconds in phases)
        with self._lock:
            self._seen += 1
            slow = total_s >= self.threshold_s
            sampled = (
                self.sample_every > 0
                and self._seen % self.sample_every == 0
            )
            if not slow and not sampled:
                return None
            entry = SlowQuery(
                trace_id=trace_id,
                kind=kind,
                total_s=total_s,
                phases=tuple(phases),
                sampled=sampled and not slow,
            )
            self._entries.append(entry)
        return entry

    @property
    def entries(self) -> tuple[SlowQuery, ...]:
        """Kept entries, oldest first."""
        with self._lock:
            return tuple(self._entries)

    @property
    def seen(self) -> int:
        """Total queries considered (kept or not)."""
        with self._lock:
            return self._seen

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def reset(self) -> None:
        """Drop kept entries (the sampling counter keeps counting)."""
        with self._lock:
            self._entries.clear()
