"""The leakage-event stream: what the server observed, replayably.

Query-recovery attacks against searchable encryption (e.g. the
VAL/IHOP family, arXiv:2306.15302) work from exactly two server-side
observables: the search pattern (which trapdoor, how often) and the
access pattern (which file ids matched).  This module records those
observables as an append-only event stream — one
:class:`LeakageEvent` per served search, carrying a query id, a keyed
digest of the queried trapdoor address, and the matched/returned file
ids — so the ``analysis/`` leakage tooling can replay *real* serving
traces instead of synthesizing them
(:func:`repro.analysis.leakage.server_log_from_events`).

The stream stores a **digest** of the trapdoor address, never the
address itself: equal digests still expose the search pattern (that is
the point — it is what the server sees anyway), but an exported trace
artifact does not hand out live index addresses.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass

#: Domain-separation key for trapdoor digests in exported events.
_DIGEST_KEY = b"repro-obs-leakage-v1"


def trapdoor_digest(address: bytes) -> str:
    """Stable hex digest standing in for a trapdoor address."""
    return hashlib.blake2b(
        address, key=_DIGEST_KEY, digest_size=16
    ).hexdigest()


@dataclass(frozen=True)
class LeakageEvent:
    """One search as the curious server observed it.

    Attributes
    ----------
    query_id:
        Monotonic per-log sequence number.
    trapdoor:
        Keyed digest of the queried index address (search pattern:
        equal digests mean equal keywords).
    matched_file_ids:
        The access pattern.
    returned_file_ids:
        What was actually sent back (top-k subset).
    trace_id:
        The trace tree this query was served under (0 untraced).
    worker:
        Shard label once merged into a cluster artifact ("" locally;
        omitted from the JSON encoding when empty, so single-process
        artifacts are byte-identical to before the field existed).
    """

    query_id: int
    trapdoor: str
    matched_file_ids: tuple[str, ...]
    returned_file_ids: tuple[str, ...]
    trace_id: int = 0
    worker: str = ""

    def as_dict(self) -> dict[str, object]:
        """JSON-ready encoding (used by the JSONL exporter)."""
        record: dict[str, object] = {
            "query_id": self.query_id,
            "trapdoor": self.trapdoor,
            "matched_file_ids": list(self.matched_file_ids),
            "returned_file_ids": list(self.returned_file_ids),
            "trace_id": self.trace_id,
        }
        if self.worker:
            record["worker"] = self.worker
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "LeakageEvent":
        """Parse one exporter record."""
        return cls(
            query_id=int(record["query_id"]),
            trapdoor=str(record["trapdoor"]),
            matched_file_ids=tuple(record["matched_file_ids"]),
            returned_file_ids=tuple(record["returned_file_ids"]),
            trace_id=int(record.get("trace_id", 0)),
            worker=str(record.get("worker", "")),
        )


class LeakageLog:
    """Thread-safe, append-only store of :class:`LeakageEvent`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[LeakageEvent] = []
        self._next_query_id = 1

    def record(
        self,
        address: bytes,
        matched_file_ids: tuple[str, ...],
        returned_file_ids: tuple[str, ...],
        trace_id: int = 0,
    ) -> LeakageEvent:
        """Append one search observation; returns the event."""
        with self._lock:
            event = LeakageEvent(
                query_id=self._next_query_id,
                trapdoor=trapdoor_digest(address),
                matched_file_ids=tuple(matched_file_ids),
                returned_file_ids=tuple(returned_file_ids),
                trace_id=trace_id,
            )
            self._next_query_id += 1
            self._events.append(event)
        return event

    @property
    def events(self) -> tuple[LeakageEvent, ...]:
        """All recorded events, in query order."""
        with self._lock:
            return tuple(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def reset(self) -> None:
        """Drop events (query ids keep counting)."""
        with self._lock:
            self._events.clear()
