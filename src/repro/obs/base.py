"""Shared snapshot/reset/merge semantics for counter dataclasses.

PR 1 grew :class:`~repro.cloud.network.ChannelStats`, PR 2 grew
:class:`~repro.cloud.faults.FaultStats` and
:class:`~repro.cloud.retry.RetryStats`, PR 3 grew
:class:`~repro.crypto.stats.MappingStats` — four hand-rolled counter
bundles whose ``reset()``/``snapshot()``/``merged()`` implementations
drifted independently (the PR 2 torn-snapshot fix landed in exactly one
of them).  This base factors the shared mechanics into one place:

* every concrete stats class is a plain ``@dataclass`` of ``int``,
  ``float``, and ``list`` counter fields;
* :meth:`StatsBase.reset` zeroes every field, :meth:`StatsBase.snapshot`
  copies every field atomically under one lock, and
  :meth:`StatsBase.merged` sums snapshots — all derived from
  :func:`dataclasses.fields`, so the semantics *cannot* diverge between
  stats classes again;
* a subclass that wants a bespoke immutable snapshot type (e.g.
  :class:`~repro.cloud.network.ChannelSnapshot`) sets
  ``_snapshot_factory``; list fields are handed to it as tuples.

Mutation locking stays the subclass's business: high-rate hot paths
(e.g. :class:`~repro.crypto.stats.MappingStats` increments inside the
OPM descent) deliberately bump plain attributes without a lock, while
:class:`~repro.cloud.network.ChannelStats` routes every mutation
through ``record_*`` methods that take :attr:`lock`.  What the base
guarantees is that ``snapshot()`` itself is internally consistent with
any mutator that honours the same lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields
from typing import Any, Callable, ClassVar, Iterable, TypeVar

S = TypeVar("S", bound="StatsBase")


@dataclass
class StatsBase:
    """Base for lockable counter dataclasses.

    Subclasses declare only their counter fields; ``reset``,
    ``snapshot``, ``merged``, and ``as_dict`` are inherited.  The lock
    is created in ``__post_init__`` (it is not a dataclass field, so it
    never participates in equality or repr).
    """

    #: Optional frozen-snapshot constructor.  When None, ``snapshot()``
    #: returns a fresh instance of the same class (with its own lock).
    _snapshot_factory: ClassVar[Callable[..., Any] | None] = None

    def __post_init__(self) -> None:
        self._obs_lock = threading.Lock()

    @property
    def lock(self) -> threading.Lock:
        """The lock ``snapshot()``/``reset()`` serialize on.

        Mutators that need torn-read protection against concurrent
        snapshots take this same lock.
        """
        return self._obs_lock

    def _counter_values(self) -> dict[str, Any]:
        """Copy every field value (lists copied, not aliased)."""
        values: dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, list):
                value = list(value)
            values[spec.name] = value
        return values

    def reset(self) -> None:
        """Zero every counter field (lists are cleared), atomically."""
        with self._obs_lock:
            for spec in fields(self):
                value = getattr(self, spec.name)
                if isinstance(value, list):
                    value.clear()
                elif isinstance(value, bool):
                    setattr(self, spec.name, False)
                elif isinstance(value, float):
                    setattr(self, spec.name, 0.0)
                else:
                    setattr(self, spec.name, 0)

    def snapshot(self) -> Any:
        """An internally consistent copy, taken under :attr:`lock`.

        Returns ``_snapshot_factory(**values)`` when the subclass set
        one (list fields passed as tuples), else a fresh instance of
        the same stats class.
        """
        with self._obs_lock:
            values = self._counter_values()
        factory = type(self)._snapshot_factory
        if factory is not None:
            return factory(
                **{
                    name: tuple(value) if isinstance(value, list) else value
                    for name, value in values.items()
                }
            )
        return type(self)(**values)

    def as_dict(self) -> dict[str, Any]:
        """Counters as a plain dict (for JSON reports), atomically."""
        with self._obs_lock:
            return self._counter_values()

    @classmethod
    def merged(cls: type[S], stats: Iterable[Any]) -> S:
        """Sum several stats objects (or snapshots) into a fresh one.

        Each input is snapshotted first (an object without a
        ``snapshot`` method is read as-is), so merging over live stats
        sums internally consistent per-object views.  Numeric fields
        add; list fields concatenate.
        """
        total = cls()
        for item in stats:
            view = item.snapshot() if hasattr(item, "snapshot") else item
            for spec in fields(cls):
                mine = getattr(total, spec.name)
                theirs = getattr(view, spec.name)
                if isinstance(mine, list):
                    mine.extend(theirs)
                else:
                    setattr(total, spec.name, mine + theirs)
        return total
