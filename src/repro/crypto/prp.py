"""Small-domain pseudo-random permutation.

Secure-index construction needs to place real and dummy posting
entries in an order that does not reveal which are which, and to
assign pseudonymous storage identifiers to files.  Both are
permutation problems over small domains, solved here with a
Luby-Rackoff (Feistel) network over ``{0, ..., domain-1}`` plus
cycle-walking to handle domains that are not powers of four.

The round function is HMAC-SHA256, and four rounds give a strong
pseudo-random permutation under the standard Feistel results.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import ParameterError

_DIGEST = hashlib.sha256
_ROUNDS = 4


class FeistelPrp:
    """A keyed pseudo-random permutation on ``{0, ..., domain_size-1}``.

    Parameters
    ----------
    key:
        Secret key; per-round keys are derived with domain separation.
    domain_size:
        Size of the permuted set; must be at least 2.

    Notes
    -----
    Internally the permutation acts on ``2w``-bit values where ``w`` is
    half the bit width of ``domain_size - 1`` rounded up; inputs that
    permute outside the domain are "cycle-walked" (re-encrypted) until
    they land inside, which preserves bijectivity on the domain.
    Expected walk length is below 4 because the embedding domain is at
    most 4x the target domain.
    """

    def __init__(self, key: bytes, domain_size: int):
        if not key:
            raise ParameterError("PRP key must be non-empty")
        if domain_size < 2:
            raise ParameterError(f"domain size must be >= 2, got {domain_size}")
        self._domain_size = domain_size
        half_bits = max(1, ((domain_size - 1).bit_length() + 1) // 2)
        self._half_bits = half_bits
        self._half_mask = (1 << half_bits) - 1
        self._embedding_size = 1 << (2 * half_bits)
        self._round_keys = [
            hmac.new(bytes(key), b"feistel|round|%d" % i, _DIGEST).digest()
            for i in range(_ROUNDS)
        ]

    @property
    def domain_size(self) -> int:
        """Size of the permuted domain."""
        return self._domain_size

    def _round(self, round_key: bytes, value: int) -> int:
        digest = hmac.new(round_key, value.to_bytes(8, "big"), _DIGEST).digest()
        return int.from_bytes(digest[:8], "big") & self._half_mask

    def _feistel(self, value: int) -> int:
        left = value >> self._half_bits
        right = value & self._half_mask
        for round_key in self._round_keys:
            left, right = right, left ^ self._round(round_key, right)
        return (left << self._half_bits) | right

    def _feistel_inverse(self, value: int) -> int:
        left = value >> self._half_bits
        right = value & self._half_mask
        for round_key in reversed(self._round_keys):
            left, right = right ^ self._round(round_key, left), left
        return (left << self._half_bits) | right

    def permute(self, value: int) -> int:
        """Map ``value`` to its image under the permutation."""
        if not 0 <= value < self._domain_size:
            raise ParameterError(
                f"value {value} outside domain [0, {self._domain_size})"
            )
        current = value
        while True:
            current = self._feistel(current)
            if current < self._domain_size:
                return current

    def invert(self, value: int) -> int:
        """Map ``value`` back to its preimage under the permutation."""
        if not 0 <= value < self._domain_size:
            raise ParameterError(
                f"value {value} outside domain [0, {self._domain_size})"
            )
        current = value
        while True:
            current = self._feistel_inverse(current)
            if current < self._domain_size:
                return current

    def permutation(self) -> list[int]:
        """Materialize the full permutation as a list (small domains only)."""
        return [self.permute(i) for i in range(self._domain_size)]
