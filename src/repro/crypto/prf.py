"""Pseudo-random function and keyed hash primitives.

The paper's constructions use two keyed primitives (Section III-C):

* ``f : {0,1}^k x {0,1}^* -> {0,1}^l`` — a pseudo-random function used
  to derive the per-posting-list entry-encryption key ``f_y(w)`` and the
  per-list order-preserving-mapping key ``f_z(w)``.
* ``pi : {0,1}^k x {0,1}^* -> {0,1}^p`` with ``p > log m`` — a keyed
  collision-resistant hash used as the keyword address ``pi_x(w)`` in
  the secure index (the paper instantiates it with SHA-1; we use
  HMAC-SHA256 truncated to ``p`` bits, which is both collision resistant
  and a PRF, strictly stronger than the paper's requirement).

Both are implemented on top of HMAC-SHA256 from the standard library so
the package has no hard third-party dependencies.
"""

from __future__ import annotations

import hashlib
import hmac
import os

from repro.errors import ParameterError

#: Default PRF key length in bytes (the paper's security parameter ``k``;
#: 128-bit keys give the paper's >= 80-bit security with margin).
DEFAULT_KEY_BYTES = 16

#: Default PRF output length in bytes (the paper's parameter ``l``).
DEFAULT_OUTPUT_BYTES = 32

_DIGEST = hashlib.sha256
_DIGEST_BYTES = _DIGEST().digest_size


def generate_key(length: int = DEFAULT_KEY_BYTES) -> bytes:
    """Return ``length`` uniformly random key bytes from the OS CSPRNG."""
    if length <= 0:
        raise ParameterError(f"key length must be positive, got {length}")
    return os.urandom(length)


def _as_bytes(message: bytes | str) -> bytes:
    if isinstance(message, str):
        return message.encode("utf-8")
    return bytes(message)


class Prf:
    """The PRF ``f`` of the paper: HMAC-SHA256 with counter-mode expansion.

    Output lengths up to ``2**32 * 32`` bytes are supported by expanding
    HMAC in counter mode (an HKDF-Expand-style construction), so the same
    object serves both short key derivation and long mask generation.

    Parameters
    ----------
    key:
        Secret PRF key.  Any non-empty byte string.
    output_bytes:
        Length of :meth:`evaluate` output in bytes.
    """

    def __init__(self, key: bytes, output_bytes: int = DEFAULT_OUTPUT_BYTES):
        if not key:
            raise ParameterError("PRF key must be non-empty")
        if output_bytes <= 0:
            raise ParameterError(
                f"PRF output length must be positive, got {output_bytes}"
            )
        self._key = bytes(key)
        self._output_bytes = output_bytes

    @property
    def output_bytes(self) -> int:
        """Length in bytes of the values returned by :meth:`evaluate`."""
        return self._output_bytes

    def evaluate(self, message: bytes | str) -> bytes:
        """Return ``f_key(message)`` with the configured output length."""
        return self.evaluate_to_length(message, self._output_bytes)

    def evaluate_to_length(self, message: bytes | str, length: int) -> bytes:
        """Return the first ``length`` bytes of the PRF output stream.

        For ``length <= 32`` this is a single HMAC call; longer outputs
        are produced by HMAC over ``message || counter`` blocks, which
        remains a PRF under the standard HMAC assumptions.
        """
        if length <= 0:
            raise ParameterError(f"output length must be positive, got {length}")
        data = _as_bytes(message)
        if length <= _DIGEST_BYTES:
            return hmac.new(self._key, data, _DIGEST).digest()[:length]
        blocks = []
        counter = 0
        produced = 0
        while produced < length:
            block_input = data + counter.to_bytes(4, "big")
            block = hmac.new(self._key, block_input, _DIGEST).digest()
            blocks.append(block)
            produced += len(block)
            counter += 1
        return b"".join(blocks)[:length]

    def derive_key(self, label: bytes | str, length: int = DEFAULT_KEY_BYTES) -> bytes:
        """Derive a sub-key bound to ``label`` (e.g. ``f_z(w_i)``).

        The label is length-prefixed so distinct labels can never produce
        colliding PRF inputs.
        """
        data = _as_bytes(label)
        framed = len(data).to_bytes(8, "big") + data
        return self.evaluate_to_length(b"derive|" + framed, length)

    def __call__(self, message: bytes | str) -> bytes:
        return self.evaluate(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Prf(output_bytes={self._output_bytes})"


class KeyedHash:
    """The keyed collision-resistant hash ``pi`` of the paper.

    Produces fixed-width addresses of ``p`` bits used to locate posting
    lists in the secure index.  The paper requires ``p > log2(m)`` for a
    vocabulary of ``m`` keywords; :meth:`check_width` validates this.

    Parameters
    ----------
    key:
        Secret hash key (the paper's ``x``).
    output_bits:
        Address width ``p`` in bits; must be a positive multiple of 8
        for clean byte alignment (the paper's SHA-1 instantiation uses
        p = 160).
    """

    def __init__(self, key: bytes, output_bits: int = 160):
        if not key:
            raise ParameterError("keyed-hash key must be non-empty")
        if output_bits <= 0 or output_bits % 8 != 0:
            raise ParameterError(
                f"output_bits must be a positive multiple of 8, got {output_bits}"
            )
        self._key = bytes(key)
        self._output_bits = output_bits
        self._output_bytes = output_bits // 8

    @property
    def output_bits(self) -> int:
        """Address width ``p`` in bits."""
        return self._output_bits

    def check_width(self, vocabulary_size: int) -> None:
        """Raise :class:`ParameterError` unless ``p > log2(m)``.

        The paper's constraint guarantees addresses are wide enough that
        collisions among the ``m`` keyword addresses are negligible.
        """
        if vocabulary_size <= 0:
            raise ParameterError(
                f"vocabulary size must be positive, got {vocabulary_size}"
            )
        if 2**self._output_bits <= vocabulary_size:
            raise ParameterError(
                f"address width p={self._output_bits} bits is too small for a "
                f"vocabulary of {vocabulary_size} keywords (need p > log2(m))"
            )

    def address(self, keyword: bytes | str) -> bytes:
        """Return the ``p``-bit index address ``pi_x(keyword)``."""
        data = _as_bytes(keyword)
        full = hmac.new(self._key, b"address|" + data, _DIGEST).digest()
        while len(full) < self._output_bytes:
            full += hmac.new(self._key, full, _DIGEST).digest()
        return full[: self._output_bytes]

    def __call__(self, keyword: bytes | str) -> bytes:
        return self.address(keyword)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyedHash(output_bits={self._output_bits})"
