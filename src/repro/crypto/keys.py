"""Key material and ``KeyGen`` for both schemes.

The paper's ``KeyGen(1^k, 1^l, 1^l', 1^p [, |D|, |R|])`` outputs
``K = {x, y, z, ...}``:

* ``x`` keys the keyword-address hash ``pi_x``;
* ``y`` keys the PRF ``f_y`` that derives per-list entry-encryption
  keys;
* ``z`` keys either the score cipher ``E_z`` (basic scheme) or the PRF
  ``f_z`` deriving per-list OPM keys (efficient scheme).

:class:`SchemeKey` bundles the three keys with the scheme parameters
and supports serialization, so the data owner can distribute the
*trapdoor-generation* material (``x``, ``y``) to authorized users while
withholding ``z`` where the protocol allows (in the basic scheme users
additionally need ``z`` to decrypt scores; in the efficient scheme they
do not, since ranking happens at the server).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro.crypto.prf import DEFAULT_KEY_BYTES, generate_key
from repro.errors import CryptoError, ParameterError

_MAGIC = "repro-scheme-key"
_VERSION = 1


@dataclass(frozen=True)
class SchemeKey:
    """The key bundle ``K = {x, y, z}`` plus scheme parameters.

    Attributes
    ----------
    x:
        Keyword-address hash key.
    y:
        Entry-encryption PRF key.
    z:
        Score-protection key (cipher key or OPM PRF key, depending on
        the scheme); ``None`` in a user bundle that excludes it.
    domain_size:
        ``M``, the score quantization level count (efficient scheme).
    range_size:
        ``N = |R|``, the OPM ciphertext range size (efficient scheme).
    """

    x: bytes
    y: bytes
    z: bytes | None
    domain_size: int = 128
    range_size: int = 1 << 46

    def __post_init__(self) -> None:
        if not self.x or not self.y:
            raise ParameterError("keys x and y must be non-empty")
        if self.z is not None and not self.z:
            raise ParameterError("key z must be non-empty when present")
        if self.domain_size < 1:
            raise ParameterError(
                f"domain size must be >= 1, got {self.domain_size}"
            )
        if self.range_size < self.domain_size:
            raise ParameterError(
                f"range size {self.range_size} must be >= domain size "
                f"{self.domain_size}"
            )

    def require_z(self) -> bytes:
        """Return ``z``, raising if this bundle does not carry it."""
        if self.z is None:
            raise CryptoError("this key bundle does not include z")
        return self.z

    def trapdoor_only(self) -> "SchemeKey":
        """Return a user bundle holding only the trapdoor keys (x, y).

        This is the material the data owner distributes to authorized
        users of the *efficient* scheme, where score decryption is never
        performed client-side.
        """
        return replace(self, z=None)

    def serialize(self) -> bytes:
        """Serialize to a self-describing byte string."""
        payload = {
            "magic": _MAGIC,
            "version": _VERSION,
            "x": self.x.hex(),
            "y": self.y.hex(),
            "z": self.z.hex() if self.z is not None else None,
            "domain_size": self.domain_size,
            "range_size": self.range_size,
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def deserialize(cls, data: bytes) -> "SchemeKey":
        """Parse a bundle produced by :meth:`serialize`."""
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CryptoError(f"malformed key bundle: {exc}") from exc
        if not isinstance(payload, dict):
            raise CryptoError("key bundle is not a JSON object")
        if payload.get("magic") != _MAGIC:
            raise CryptoError("not a repro key bundle")
        if payload.get("version") != _VERSION:
            raise CryptoError(
                f"unsupported key bundle version {payload.get('version')}"
            )
        try:
            z_hex = payload.get("z")
            return cls(
                x=bytes.fromhex(payload["x"]),
                y=bytes.fromhex(payload["y"]),
                z=bytes.fromhex(z_hex) if z_hex is not None else None,
                domain_size=int(payload["domain_size"]),
                range_size=int(payload["range_size"]),
            )
        except (KeyError, OverflowError, TypeError, ValueError) as exc:
            # OverflowError: JSON "Infinity" reaching int().
            raise CryptoError(f"malformed key bundle fields: {exc}") from exc


def keygen(
    security_bytes: int = DEFAULT_KEY_BYTES,
    domain_size: int = 128,
    range_size: int = 1 << 46,
) -> SchemeKey:
    """The paper's ``KeyGen``: draw fresh random ``x, y, z``.

    Parameters
    ----------
    security_bytes:
        Length of each key in bytes (the security parameter ``k/8``).
    domain_size, range_size:
        The OPM parameters ``|D|`` and ``|R|``; defaults are the
        paper's worked example (``M = 128``, ``|R| = 2**46``).
    """
    return SchemeKey(
        x=generate_key(security_bytes),
        y=generate_key(security_bytes),
        z=generate_key(security_bytes),
        domain_size=domain_size,
        range_size=range_size,
    )
