"""Deterministic hypergeometric sampling (the paper's ``HYGEINV``).

Boldyreva et al.'s OPSE maps a domain ``D`` into a range ``R`` by a
keyed binary search: at each step the range is halved at ``y`` and the
number ``x`` of domain points falling below ``y`` is drawn from the
hypergeometric distribution ``HGD(population=|R|, successes=|D|,
draws=y-r)``.  The draw must be *deterministic given the coins* so the
same key always yields the same domain-to-bucket mapping; the paper
instantiates it with MATLAB's ``hygeinv`` (the hypergeometric quantile
function) applied to a pseudo-random coin.

This module provides that quantile function in pure Python:

* :func:`hgd_quantile` — exact CDF inversion in log space; cost is
  ``O(support size)`` which in OPSE is at most ``|D| + 1`` terms, so it
  stays exact and fast even for ranges as large as ``2**46`` (the
  paper's recommended parameterization) because only the *domain* is
  small.
* :func:`hgd_quantile_exact` — arbitrary-precision rational reference
  implementation used by the test suite to validate the float path.
* :func:`hgd_sample` — draws the quantile's input coin from a
  :class:`~repro.crypto.tape.CoinStream`.

The support of ``HGD(P, S, n)`` is ``x in [max(0, n - (P - S)),
min(S, n)]``; both bounds are respected exactly, which is what
guarantees the OPSE recursion invariant ``|D'| <= |R'|`` on both sides
of every split.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from fractions import Fraction

from repro.crypto.tape import CoinStream
from repro.errors import ParameterError


def _validate(population: int, successes: int, draws: int) -> None:
    if population <= 0:
        raise ParameterError(f"population must be positive, got {population}")
    if not 0 <= successes <= population:
        raise ParameterError(
            f"successes must be in [0, population]; got {successes} of {population}"
        )
    if not 0 <= draws <= population:
        raise ParameterError(
            f"draws must be in [0, population]; got {draws} of {population}"
        )


def support(population: int, successes: int, draws: int) -> tuple[int, int]:
    """Return the inclusive support ``[lo, hi]`` of the distribution."""
    _validate(population, successes, draws)
    lo = max(0, draws - (population - successes))
    hi = min(successes, draws)
    return lo, hi


def _log_binomial(n: int, k: int) -> float:
    """Return ``log C(n, k)`` via ``lgamma``; exact enough for n < 2**60."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def log_pmf(x: int, population: int, successes: int, draws: int) -> float:
    """Return ``log Pr[X = x]`` for ``X ~ HGD(population, successes, draws)``."""
    lo, hi = support(population, successes, draws)
    if x < lo or x > hi:
        return float("-inf")
    return (
        _log_binomial(successes, x)
        + _log_binomial(population - successes, draws - x)
        - _log_binomial(population, draws)
    )


def mean(population: int, successes: int, draws: int) -> float:
    """Return ``E[X] = draws * successes / population``."""
    _validate(population, successes, draws)
    return draws * successes / population


def _support_log_pmfs(population: int, successes: int, draws: int) -> tuple[int, list[float]]:
    """Return ``(lo, [log pmf(lo), ..., log pmf(hi)])``.

    Uses one ``lgamma`` evaluation for the left edge and the PMF ratio
    recurrence for the rest, so the cost is ``O(hi - lo)`` log calls:

        pmf(x+1)/pmf(x) = (S - x)(n - x) / ((x + 1)(P - S - n + x + 1))
    """
    lo, hi = support(population, successes, draws)
    current = log_pmf(lo, population, successes, draws)
    values = [current]
    for x in range(lo, hi):
        current += (
            math.log(successes - x)
            + math.log(draws - x)
            - math.log(x + 1)
            - math.log(population - successes - draws + x + 1)
        )
        values.append(current)
    return lo, values


def hgd_quantile_reference(
    u: float, population: int, successes: int, draws: int
) -> int:
    """Full-support CDF inversion — the fast path's byte-level spec.

    Materializes the whole support: every log-PMF term, the peak, all
    normalized weights, and their ``fsum`` total, then accumulates to
    the target.  :func:`hgd_quantile` must return exactly this value
    for every input (the property suite compares them exhaustively);
    keep this implementation frozen unless the golden vectors are
    deliberately rotated.
    """
    if not 0.0 <= u < 1.0:
        raise ParameterError(f"quantile u must be in [0, 1), got {u}")
    lo, hi = support(population, successes, draws)
    if lo == hi:
        return lo
    start, log_values = _support_log_pmfs(population, successes, draws)
    peak = max(log_values)
    weights = [math.exp(v - peak) for v in log_values]
    total = math.fsum(weights)
    target = u * total
    accumulated = 0.0
    for offset, weight in enumerate(weights):
        accumulated += weight
        if accumulated > target:
            return start + offset
    return hi


#: Log-space decline below the running maximum past which the peak is
#: final: true increments are strictly decreasing (the hypergeometric
#: PMF is log-concave), so once a computed increment is this negative
#: the remaining sequence cannot climb back above the maximum seen so
#: far.  Accumulated float drift in the recurrence is ~1e-12; 1e-6
#: leaves six orders of magnitude of margin.
_PEAK_MARGIN = 1e-6

#: Base relative slack bracketing the reference's correctly-rounded
#: ``fsum`` total from the fast path's *naive* running sum.  The naive
#: sum of ``k`` positive terms is within ``k * 2**-53`` of exact, so
#: the bracket widens by ``len * _SUM_EPS`` on top of this base; both
#: are vastly conservative relative to true rounding error.
_TOTAL_SLACK = 1e-9
_SUM_EPS = 2.3e-16

#: Relative inflation of the geometric tail bound.  Near the peak the
#: term ratio ``r`` is close to 1 and ``r / (1 - r)`` amplifies float
#: drift in the log-increment by ``1 / (1 - r)``; 1e-4 covers the
#: worst case at the certification margin with room to spare.
_TAIL_SLACK = 1e-4


def hgd_quantile(u: float, population: int, successes: int, draws: int) -> int:
    """Return the smallest ``x`` with ``CDF(x) >= u`` (MATLAB ``hygeinv``).

    Parameters
    ----------
    u:
        Quantile in ``[0, 1)``; in the OPSE this is the pseudo-random
        coin drawn from the keyed tape.
    population, successes, draws:
        Hypergeometric parameters ``(P, S, n)``: a sample of ``n`` items
        without replacement from ``P`` items of which ``S`` are marked.

    The inversion normalizes the PMF over its support, so small float
    error in individual terms cannot push the result outside the
    support; the test suite validates agreement with an exact rational
    implementation and with ``scipy.stats.hypergeom.ppf``.

    Early exit
    ----------
    This is the OPSE descent's inner loop, and the reference inversion
    (:func:`hgd_quantile_reference`) always pays the full support —
    ``O(min(S, n))`` log-PMF terms — even when the target quantile sits
    far below the upper end.  This implementation stops extending the
    support as soon as the answer is *certified*: past the PMF peak the
    remaining mass is bounded by a geometric tail (log-concavity makes
    the term ratios strictly decreasing), which brackets the
    reference's normalizing total from both sides; when the bracketed
    target pins the same crossing index on both ends, that index is
    returned without materializing the rest of the support.  If the
    bracket ever straddles a prefix-sum boundary (a measure-~1e-9
    event), the loop simply continues to the full support and finishes
    exactly like the reference — so the returned index is **always**
    byte-identical to the reference's.
    """
    if not 0.0 <= u < 1.0:
        raise ParameterError(f"quantile u must be in [0, 1), got {u}")
    lo, hi = support(population, successes, draws)
    if lo == hi:
        return lo
    size = hi - lo + 1

    # Incremental form of _support_log_pmfs: identical arithmetic, one
    # term at a time.
    values = [log_pmf(lo, population, successes, draws)]

    def extend() -> float:
        """Append the next log-PMF term; return its increment."""
        x = lo + len(values) - 1
        increment = (
            math.log(successes - x)
            + math.log(draws - x)
            - math.log(x + 1)
            - math.log(population - successes - draws + x + 1)
        )
        values.append(values[-1] + increment)
        return increment

    # Phase 1: extend until the running peak is provably final.
    last_increment = 0.0
    peak_certified = False
    while len(values) < size:
        last_increment = extend()
        if last_increment <= -_PEAK_MARGIN:
            peak_certified = True
            break
    if not peak_certified:
        # Reached the end of the support while still (near-)flat or
        # rising: nothing saved, finish as the reference does.
        return lo + _finish(values, u, size)

    peak = max(values)
    weights = [math.exp(v - peak) for v in values]
    prefix = []
    accumulated = 0.0
    for w in weights:
        accumulated += w
        prefix.append(accumulated)

    # Phase 2: extend until the crossing index is certified (or the
    # support ends, at which point the reference path runs verbatim).
    # The reference's fsum total is bracketed from the running naive
    # sum (slack covers naive-summation drift) plus the geometric tail
    # bound — O(1) per iteration, never an fsum.
    while True:
        ratio = math.exp(last_increment)
        tail = weights[-1] * ratio / (1.0 - ratio)
        # Cheap necessary condition: the crossing cannot be certified
        # while the target's upper bound exceeds the accumulated mass.
        if prefix[-1] * (1.0 - u) > u * tail and last_increment < 0.0:
            slack = _TOTAL_SLACK + len(prefix) * _SUM_EPS
            total_hi = (accumulated + tail * (1.0 + _TAIL_SLACK)) * (
                1.0 + slack
            )
            total_lo = accumulated * (1.0 - slack)
            first_hi = bisect_right(prefix, u * total_hi)
            first_lo = bisect_right(prefix, u * total_lo)
            if first_hi == first_lo and first_hi < len(prefix):
                return lo + first_hi
        if len(values) == size:
            return lo + _finish(values, u, size)
        last_increment = extend()
        w = math.exp(values[-1] - peak)
        weights.append(w)
        accumulated += w
        prefix.append(accumulated)


def _finish(log_values: list[float], u: float, size: int) -> int:
    """The reference inversion over fully-materialized log values."""
    peak = max(log_values)
    weights = [math.exp(v - peak) for v in log_values]
    total = math.fsum(weights)
    target = u * total
    accumulated = 0.0
    for offset, weight in enumerate(weights):
        accumulated += weight
        if accumulated > target:
            return offset
    return size - 1


def hgd_quantile_exact(
    u: Fraction | float, population: int, successes: int, draws: int
) -> int:
    """Arbitrary-precision reference quantile (for validation).

    Computes cumulative hypergeometric probabilities as exact rationals.
    Cost grows with the binomial coefficients involved, so this is meant
    for moderate parameters (tests cross-check the float path against
    it on populations up to a few thousand).
    """
    u = Fraction(u)
    if not 0 <= u < 1:
        raise ParameterError(f"quantile u must be in [0, 1), got {u}")
    lo, hi = support(population, successes, draws)
    if lo == hi:
        return lo
    denominator = math.comb(population, draws)
    target = u * denominator
    accumulated = 0
    for x in range(lo, hi + 1):
        accumulated += math.comb(successes, x) * math.comb(
            population - successes, draws - x
        )
        if accumulated > target:
            return x
    return hi


def hgd_sample(coins: CoinStream, population: int, successes: int, draws: int) -> int:
    """Draw a hypergeometric variate deterministically from ``coins``.

    This is the composition ``HYGEINV(coin, ...)`` from Algorithm 1 of
    the paper: one 53-bit uniform is read from the tape and inverted
    through the CDF.
    """
    u = coins.uniform_float()
    return hgd_quantile(u, population, successes, draws)
