"""Deterministic hypergeometric sampling (the paper's ``HYGEINV``).

Boldyreva et al.'s OPSE maps a domain ``D`` into a range ``R`` by a
keyed binary search: at each step the range is halved at ``y`` and the
number ``x`` of domain points falling below ``y`` is drawn from the
hypergeometric distribution ``HGD(population=|R|, successes=|D|,
draws=y-r)``.  The draw must be *deterministic given the coins* so the
same key always yields the same domain-to-bucket mapping; the paper
instantiates it with MATLAB's ``hygeinv`` (the hypergeometric quantile
function) applied to a pseudo-random coin.

This module provides that quantile function in pure Python:

* :func:`hgd_quantile` — exact CDF inversion in log space; cost is
  ``O(support size)`` which in OPSE is at most ``|D| + 1`` terms, so it
  stays exact and fast even for ranges as large as ``2**46`` (the
  paper's recommended parameterization) because only the *domain* is
  small.
* :func:`hgd_quantile_exact` — arbitrary-precision rational reference
  implementation used by the test suite to validate the float path.
* :func:`hgd_sample` — draws the quantile's input coin from a
  :class:`~repro.crypto.tape.CoinStream`.

The support of ``HGD(P, S, n)`` is ``x in [max(0, n - (P - S)),
min(S, n)]``; both bounds are respected exactly, which is what
guarantees the OPSE recursion invariant ``|D'| <= |R'|`` on both sides
of every split.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.crypto.tape import CoinStream
from repro.errors import ParameterError


def _validate(population: int, successes: int, draws: int) -> None:
    if population <= 0:
        raise ParameterError(f"population must be positive, got {population}")
    if not 0 <= successes <= population:
        raise ParameterError(
            f"successes must be in [0, population]; got {successes} of {population}"
        )
    if not 0 <= draws <= population:
        raise ParameterError(
            f"draws must be in [0, population]; got {draws} of {population}"
        )


def support(population: int, successes: int, draws: int) -> tuple[int, int]:
    """Return the inclusive support ``[lo, hi]`` of the distribution."""
    _validate(population, successes, draws)
    lo = max(0, draws - (population - successes))
    hi = min(successes, draws)
    return lo, hi


def _log_binomial(n: int, k: int) -> float:
    """Return ``log C(n, k)`` via ``lgamma``; exact enough for n < 2**60."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def log_pmf(x: int, population: int, successes: int, draws: int) -> float:
    """Return ``log Pr[X = x]`` for ``X ~ HGD(population, successes, draws)``."""
    lo, hi = support(population, successes, draws)
    if x < lo or x > hi:
        return float("-inf")
    return (
        _log_binomial(successes, x)
        + _log_binomial(population - successes, draws - x)
        - _log_binomial(population, draws)
    )


def mean(population: int, successes: int, draws: int) -> float:
    """Return ``E[X] = draws * successes / population``."""
    _validate(population, successes, draws)
    return draws * successes / population


def _support_log_pmfs(population: int, successes: int, draws: int) -> tuple[int, list[float]]:
    """Return ``(lo, [log pmf(lo), ..., log pmf(hi)])``.

    Uses one ``lgamma`` evaluation for the left edge and the PMF ratio
    recurrence for the rest, so the cost is ``O(hi - lo)`` log calls:

        pmf(x+1)/pmf(x) = (S - x)(n - x) / ((x + 1)(P - S - n + x + 1))
    """
    lo, hi = support(population, successes, draws)
    current = log_pmf(lo, population, successes, draws)
    values = [current]
    for x in range(lo, hi):
        current += (
            math.log(successes - x)
            + math.log(draws - x)
            - math.log(x + 1)
            - math.log(population - successes - draws + x + 1)
        )
        values.append(current)
    return lo, values


def hgd_quantile(u: float, population: int, successes: int, draws: int) -> int:
    """Return the smallest ``x`` with ``CDF(x) >= u`` (MATLAB ``hygeinv``).

    Parameters
    ----------
    u:
        Quantile in ``[0, 1)``; in the OPSE this is the pseudo-random
        coin drawn from the keyed tape.
    population, successes, draws:
        Hypergeometric parameters ``(P, S, n)``: a sample of ``n`` items
        without replacement from ``P`` items of which ``S`` are marked.

    The inversion normalizes the PMF over its support, so small float
    error in individual terms cannot push the result outside the
    support; the test suite validates agreement with an exact rational
    implementation and with ``scipy.stats.hypergeom.ppf``.
    """
    if not 0.0 <= u < 1.0:
        raise ParameterError(f"quantile u must be in [0, 1), got {u}")
    lo, hi = support(population, successes, draws)
    if lo == hi:
        return lo
    start, log_values = _support_log_pmfs(population, successes, draws)
    peak = max(log_values)
    weights = [math.exp(v - peak) for v in log_values]
    total = math.fsum(weights)
    target = u * total
    accumulated = 0.0
    for offset, weight in enumerate(weights):
        accumulated += weight
        if accumulated > target:
            return start + offset
    return hi


def hgd_quantile_exact(
    u: Fraction | float, population: int, successes: int, draws: int
) -> int:
    """Arbitrary-precision reference quantile (for validation).

    Computes cumulative hypergeometric probabilities as exact rationals.
    Cost grows with the binomial coefficients involved, so this is meant
    for moderate parameters (tests cross-check the float path against
    it on populations up to a few thousand).
    """
    u = Fraction(u)
    if not 0 <= u < 1:
        raise ParameterError(f"quantile u must be in [0, 1), got {u}")
    lo, hi = support(population, successes, draws)
    if lo == hi:
        return lo
    denominator = math.comb(population, draws)
    target = u * denominator
    accumulated = 0
    for x in range(lo, hi + 1):
        accumulated += math.comb(successes, x) * math.comb(
            population - successes, draws - x
        )
        if accumulated > target:
            return x
    return hi


def hgd_sample(coins: CoinStream, population: int, successes: int, draws: int) -> int:
    """Draw a hypergeometric variate deterministically from ``coins``.

    This is the composition ``HYGEINV(coin, ...)`` from Algorithm 1 of
    the paper: one 53-bit uniform is read from the tape and inverted
    through the CDF.
    """
    u = coins.uniform_float()
    return hgd_quantile(u, population, successes, draws)
