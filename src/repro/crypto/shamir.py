"""Shamir secret sharing over a prime field.

Substrate for the attribute-policy access control of
:mod:`repro.cloud.abac` (the paper's Section VIII direction): policy
tree nodes are enforced by k-of-n secret sharing — a threshold node's
secret is reconstructable exactly when at least ``k`` children's shares
are available.

Classic construction: a secret ``s`` is the constant term of a random
degree-``k-1`` polynomial over GF(p); share ``i`` is the polynomial
evaluated at ``x = i``; any ``k`` shares interpolate the constant term
back, any ``k-1`` reveal nothing (information-theoretically).

The field prime is the 13th Mersenne prime ``2**521 - 1``, comfortably
above 256-bit secrets.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import CryptoError, ParameterError

#: Field prime: 2**521 - 1 (Mersenne; > any 64-byte secret).
PRIME = (1 << 521) - 1

#: Secrets are fixed-width byte strings of this length.
SECRET_BYTES = 32


@dataclass(frozen=True)
class Share:
    """One Shamir share: the evaluation point and value."""

    x: int
    y: int

    def __post_init__(self) -> None:
        if self.x <= 0:
            raise ParameterError(f"share x must be positive, got {self.x}")
        if not 0 <= self.y < PRIME:
            raise ParameterError("share value outside the field")


def _secret_to_field(secret: bytes) -> int:
    if len(secret) != SECRET_BYTES:
        raise ParameterError(
            f"secret must be {SECRET_BYTES} bytes, got {len(secret)}"
        )
    return int.from_bytes(secret, "big")


def _field_to_secret(value: int) -> bytes:
    if not 0 <= value < 1 << (8 * SECRET_BYTES):
        raise CryptoError("reconstructed value outside the secret space")
    return value.to_bytes(SECRET_BYTES, "big")


def random_secret() -> bytes:
    """Draw a fresh random secret."""
    return os.urandom(SECRET_BYTES)


def split_int(value: int, threshold: int, shares: int) -> list[Share]:
    """Split a field element into ``shares`` shares (``threshold`` recover).

    The integer form is what recursive constructions (policy trees)
    use: a share's y-value can itself be re-shared.
    """
    if not 0 <= value < PRIME:
        raise ParameterError("value must be a field element")
    if threshold < 1:
        raise ParameterError(f"threshold must be >= 1, got {threshold}")
    if shares < threshold:
        raise ParameterError(
            f"cannot issue {shares} shares with threshold {threshold}"
        )
    coefficients = [value] + [
        int.from_bytes(os.urandom(66), "big") % PRIME
        for _ in range(threshold - 1)
    ]
    issued = []
    for x in range(1, shares + 1):
        y = 0
        for coefficient in reversed(coefficients):
            y = (y * x + coefficient) % PRIME
        issued.append(Share(x=x, y=y))
    return issued


def reconstruct_int(shares: list[Share], threshold: int) -> int:
    """Recover the field element from >= ``threshold`` distinct shares.

    Lagrange interpolation at ``x = 0``; raises :class:`CryptoError`
    when too few distinct shares are supplied.
    """
    if threshold < 1:
        raise ParameterError(f"threshold must be >= 1, got {threshold}")
    distinct = {share.x: share for share in shares}
    if len(distinct) < threshold:
        raise CryptoError(
            f"need {threshold} distinct shares, got {len(distinct)}"
        )
    points = list(distinct.values())[:threshold]
    total = 0
    for i, share_i in enumerate(points):
        numerator = 1
        denominator = 1
        for j, share_j in enumerate(points):
            if i == j:
                continue
            numerator = (numerator * (-share_j.x)) % PRIME
            denominator = (denominator * (share_i.x - share_j.x)) % PRIME
        lagrange = numerator * pow(denominator, -1, PRIME) % PRIME
        total = (total + share_i.y * lagrange) % PRIME
    return total


def split(secret: bytes, threshold: int, shares: int) -> list[Share]:
    """Split a :data:`SECRET_BYTES`-byte secret (byte-level wrapper)."""
    return split_int(_secret_to_field(secret), threshold, shares)


def reconstruct(shares: list[Share], threshold: int) -> bytes:
    """Recover a byte secret; raises if the value exceeds the secret space
    (a symptom of inconsistent shares)."""
    return _field_to_secret(reconstruct_int(shares, threshold))
