"""Semantically secure symmetric encryption (the paper's ``E``).

The basic scheme (Section III-C) encrypts each relevance score with a
semantically secure cipher ``E : {0,1}^l x {0,1}^r -> {0,1}^r``, and
both schemes encrypt the outsourced files themselves.  This module
provides an authenticated, randomized cipher built entirely from
standard-library primitives (HMAC-SHA256), so the core package needs no
third-party dependency:

* keystream: ``HMAC(enc_key, nonce || counter)`` blocks (CTR mode over
  a PRF — IND$-CPA under the PRF assumption);
* integrity: encrypt-then-MAC with an independent MAC key derived from
  the master key;
* a fresh random nonce per encryption makes the scheme randomized, so
  equal plaintexts yield unlinkable ciphertexts (the property whose
  *absence* in OPSE motivates the paper's one-to-many mapping).

Fixed-width integer helpers are provided for score encryption, since
posting-list entries must be equal-sized for the padding in Fig. 3 to
hide which entries are real.
"""

from __future__ import annotations

import hashlib
import hmac
import os

from repro.errors import CryptoError, IntegrityError, ParameterError

_DIGEST = hashlib.sha256
_BLOCK_BYTES = _DIGEST().digest_size
_NONCE_BYTES = 16
_TAG_BYTES = 16


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    produced = 0
    counter = 0
    while produced < length:
        block = hmac.new(key, nonce + counter.to_bytes(8, "big"), _DIGEST).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


def _xor(data: bytes, mask: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, mask))


class SymmetricCipher:
    """Randomized authenticated encryption keyed by a single master key.

    Ciphertext layout: ``nonce (16) || body (len(plaintext)) || tag (16)``.
    Overhead is a constant :data:`overhead_bytes` bytes, so plaintexts
    of equal length produce ciphertexts of equal length — required for
    the index padding argument.

    Parameters
    ----------
    key:
        Master key (the paper's ``z`` for score encryption, or a
        per-purpose derived key).  Encryption and MAC sub-keys are
        derived from it with domain separation.
    """

    #: Constant ciphertext expansion in bytes.
    overhead_bytes = _NONCE_BYTES + _TAG_BYTES

    def __init__(self, key: bytes):
        if not key:
            raise ParameterError("cipher key must be non-empty")
        key = bytes(key)
        self._enc_key = hmac.new(key, b"cipher|enc", _DIGEST).digest()
        self._mac_key = hmac.new(key, b"cipher|mac", _DIGEST).digest()
        self._siv_key = hmac.new(key, b"cipher|siv", _DIGEST).digest()

    def encrypt(self, plaintext: bytes, nonce: bytes | None = None) -> bytes:
        """Encrypt and authenticate ``plaintext``.

        A random nonce is drawn unless one is supplied (supplying nonces
        is for deterministic tests only; reusing a nonce forfeits
        semantic security, exactly like any stream cipher).
        """
        if nonce is None:
            nonce = os.urandom(_NONCE_BYTES)
        elif len(nonce) != _NONCE_BYTES:
            raise ParameterError(
                f"nonce must be {_NONCE_BYTES} bytes, got {len(nonce)}"
            )
        body = _xor(bytes(plaintext), _keystream(self._enc_key, nonce, len(plaintext)))
        tag = hmac.new(self._mac_key, nonce + body, _DIGEST).digest()[:_TAG_BYTES]
        return nonce + body + tag

    def deterministic_nonce(self, plaintext: bytes) -> bytes:
        """The SIV nonce for ``plaintext``: ``HMAC(siv_key, plaintext)``.

        A PRF of the plaintext under an independently derived sub-key:
        distinct plaintexts can never collide on a nonce (up to PRF
        security), and equal plaintexts map to equal nonces — the
        misuse-resistant "synthetic IV" construction.
        """
        return hmac.new(self._siv_key, bytes(plaintext), _DIGEST).digest()[
            :_NONCE_BYTES
        ]

    def encrypt_deterministic(self, plaintext: bytes) -> bytes:
        """SIV-mode encryption: same key + plaintext ⇒ same ciphertext.

        Trades the unlinkability of randomized encryption for
        reproducibility: re-encrypting an unchanged plaintext yields the
        identical ciphertext, which is what makes index builds
        byte-reproducible (and parallel builds verifiable against
        sequential ones).  Distinct plaintexts still get distinct,
        pseudorandom nonces, so keystream reuse cannot occur.
        """
        return self.encrypt(plaintext, nonce=self.deterministic_nonce(plaintext))

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Verify and decrypt; raises :class:`IntegrityError` on tampering."""
        ciphertext = bytes(ciphertext)
        if len(ciphertext) < self.overhead_bytes:
            raise CryptoError(
                f"ciphertext too short: {len(ciphertext)} < {self.overhead_bytes}"
            )
        nonce = ciphertext[:_NONCE_BYTES]
        tag = ciphertext[-_TAG_BYTES:]
        body = ciphertext[_NONCE_BYTES:-_TAG_BYTES]
        expected = hmac.new(self._mac_key, nonce + body, _DIGEST).digest()[:_TAG_BYTES]
        if not hmac.compare_digest(tag, expected):
            raise IntegrityError("ciphertext authentication failed")
        return _xor(body, _keystream(self._enc_key, nonce, len(body)))

    # -- fixed-width integer convenience (score encryption) ------------

    #: Width used for encoding scores/levels as plaintext integers.
    int_width_bytes = 8

    def encrypt_int(self, value: int, nonce: bytes | None = None) -> bytes:
        """Encrypt a non-negative integer at fixed 8-byte width."""
        if value < 0 or value >= 1 << (8 * self.int_width_bytes):
            raise ParameterError(f"integer out of encodable range: {value}")
        return self.encrypt(value.to_bytes(self.int_width_bytes, "big"), nonce)

    def decrypt_int(self, ciphertext: bytes) -> int:
        """Decrypt an integer produced by :meth:`encrypt_int`."""
        plaintext = self.decrypt(ciphertext)
        if len(plaintext) != self.int_width_bytes:
            raise CryptoError(
                f"expected {self.int_width_bytes}-byte integer plaintext, "
                f"got {len(plaintext)} bytes"
            )
        return int.from_bytes(plaintext, "big")

    def ciphertext_length(self, plaintext_length: int) -> int:
        """Ciphertext length for a plaintext of ``plaintext_length`` bytes."""
        if plaintext_length < 0:
            raise ParameterError("plaintext length must be non-negative")
        return plaintext_length + self.overhead_bytes


def random_bytes_like_ciphertext(length: int) -> bytes:
    """Uniform random bytes used as dummy index entries (Fig. 3, step 3).

    Dummy entries must be indistinguishable from real encrypted entries
    of the same size; since real ciphertext bytes are pseudo-random,
    uniformly random bytes of equal length suffice.
    """
    if length < 0:
        raise ParameterError("length must be non-negative")
    return os.urandom(length)
