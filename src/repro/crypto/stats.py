"""Work counters for the OPM/OPSE fast path.

Wall-clock benchmarks tell you *how long* a build took; these counters
tell you *how much work* it did — HGD draws (the dominant cost of the
binary-search descent), split/bucket cache traffic, HMAC tape blocks,
and in-bucket choices.  ``benchmarks/bench_opm_fastpath.py`` reports
them next to entries/sec so a perf regression is attributable: a build
that got slower with the same draw count is a constant-factor problem;
one whose draw count exploded lost a cache.

The counters are plain integer attributes incremented from the hot
path, so they are cheap enough to stay always-on.  The *increments*
are not thread-safe; per-keyword mappings are single-threaded units of
work in every build path (see
:meth:`repro.core.rsse.EfficientRSSE.build_index`).  The
``reset()``/``snapshot()``/``merged()``/``as_dict()`` surface comes
from :class:`~repro.obs.base.StatsBase` — the same semantics as the
serving-layer stats bundles — so per-term OPM counters roll up with
``MappingStats.merged(...)`` and publish into a
:class:`~repro.obs.metrics.MetricsRegistry` for unified reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.obs.base import StatsBase


@dataclass
class MappingStats(StatsBase):
    """Counters for one :class:`~repro.crypto.opm.OneToManyOpm` (or
    :class:`~repro.crypto.opse.OrderPreservingEncryption`) instance.

    Attributes
    ----------
    hgd_draws:
        Hypergeometric quantile inversions performed — one per
        *uncached* binary-search split.  The quantity the paper bounds
        by ``5 log2(M) + 12`` per descent and the fast path collapses
        to one per split-tree node per key (~= ``1.6 M`` at paper
        parameters).
    split_cache_hits:
        Splits answered from the shared split-tree cache (no HGD draw).
    bucket_cache_hits / bucket_cache_misses:
        Bucket-table traffic; a miss triggers a descent.
    descents:
        Full binary-search descents executed (bucket-cache misses plus
        explicit ``rounds()``/``invert()`` walks).
    choices:
        In-bucket ciphertext selections (one per mapped entry).
    tape_blocks:
        HMAC-SHA256 blocks generated for in-bucket choices; the fast
        path spends one block per entry in the common case.
    """

    hgd_draws: int = 0
    split_cache_hits: int = 0
    bucket_cache_hits: int = 0
    bucket_cache_misses: int = 0
    descents: int = 0
    choices: int = 0
    tape_blocks: int = 0

    def publish_to(self, metrics, **labels: object) -> None:
        """Mirror every counter into gauges of a metrics registry.

        Gauges (not counters) because mapping stats are themselves
        cumulative: re-publishing after more work overwrites with the
        new running totals instead of double-counting.
        """
        for spec in fields(self):
            metrics.gauge(
                f"repro_opm_{spec.name}", **labels
            ).set(getattr(self, spec.name))
