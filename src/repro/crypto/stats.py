"""Work counters for the OPM/OPSE fast path.

Wall-clock benchmarks tell you *how long* a build took; these counters
tell you *how much work* it did — HGD draws (the dominant cost of the
binary-search descent), split/bucket cache traffic, HMAC tape blocks,
and in-bucket choices.  ``benchmarks/bench_opm_fastpath.py`` reports
them next to entries/sec so a perf regression is attributable: a build
that got slower with the same draw count is a constant-factor problem;
one whose draw count exploded lost a cache.

The counters are plain integer attributes incremented from the hot
path, so they are cheap enough to stay always-on.  They are *not*
thread-safe; per-keyword mappings are single-threaded units of work in
every build path (see :meth:`repro.core.rsse.EfficientRSSE.build_index`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class MappingStats:
    """Counters for one :class:`~repro.crypto.opm.OneToManyOpm` (or
    :class:`~repro.crypto.opse.OrderPreservingEncryption`) instance.

    Attributes
    ----------
    hgd_draws:
        Hypergeometric quantile inversions performed — one per
        *uncached* binary-search split.  The quantity the paper bounds
        by ``5 log2(M) + 12`` per descent and the fast path collapses
        to one per split-tree node per key (~= ``1.6 M`` at paper
        parameters).
    split_cache_hits:
        Splits answered from the shared split-tree cache (no HGD draw).
    bucket_cache_hits / bucket_cache_misses:
        Bucket-table traffic; a miss triggers a descent.
    descents:
        Full binary-search descents executed (bucket-cache misses plus
        explicit ``rounds()``/``invert()`` walks).
    choices:
        In-bucket ciphertext selections (one per mapped entry).
    tape_blocks:
        HMAC-SHA256 blocks generated for in-bucket choices; the fast
        path spends one block per entry in the common case.
    """

    hgd_draws: int = 0
    split_cache_hits: int = 0
    bucket_cache_hits: int = 0
    bucket_cache_misses: int = 0
    descents: int = 0
    choices: int = 0
    tape_blocks: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for field in fields(self):
            setattr(self, field.name, 0)

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (for JSON bench reports)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}
