"""Cryptographic substrate for the RSSE reproduction.

Everything the paper's two schemes need, implemented from scratch on
standard-library primitives:

* :mod:`repro.crypto.prf` — the PRF ``f`` and keyed hash ``pi``;
* :mod:`repro.crypto.tape` — ``TapeGen`` deterministic coins;
* :mod:`repro.crypto.hgd` — hypergeometric quantile (``HYGEINV``);
* :mod:`repro.crypto.opse` — deterministic order-preserving encryption;
* :mod:`repro.crypto.opm` — the paper's one-to-many mapping (Algorithm 1);
* :mod:`repro.crypto.symmetric` — semantically secure cipher ``E``;
* :mod:`repro.crypto.prp` — small-domain Feistel permutation;
* :mod:`repro.crypto.keys` — ``KeyGen`` and key bundles.
"""

from repro.crypto.hgd import hgd_quantile, hgd_quantile_exact, hgd_sample
from repro.crypto.keys import SchemeKey, keygen
from repro.crypto.opm import OneToManyOpm
from repro.crypto.opse import Interval, OrderPreservingEncryption
from repro.crypto.prf import KeyedHash, Prf, generate_key
from repro.crypto.prp import FeistelPrp
from repro.crypto.shamir import (
    Share,
    random_secret,
    reconstruct,
    reconstruct_int,
    split,
    split_int,
)
from repro.crypto.symmetric import SymmetricCipher, random_bytes_like_ciphertext
from repro.crypto.tape import CoinStream, tape_gen

__all__ = [
    "CoinStream",
    "FeistelPrp",
    "Interval",
    "KeyedHash",
    "OneToManyOpm",
    "OrderPreservingEncryption",
    "Prf",
    "SchemeKey",
    "Share",
    "SymmetricCipher",
    "generate_key",
    "hgd_quantile",
    "hgd_quantile_exact",
    "hgd_sample",
    "keygen",
    "random_bytes_like_ciphertext",
    "random_secret",
    "reconstruct",
    "reconstruct_int",
    "split",
    "split_int",
    "tape_gen",
]
