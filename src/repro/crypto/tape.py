"""Deterministic random-coin generation (the paper's ``TapeGen``).

The OPSE/OPM constructions consume "random coins" that must be
*reproducible*: encrypting the same plaintext under the same key must
walk the identical sequence of hypergeometric draws, otherwise the
order-preserving property (and decryptability) breaks.  Boldyreva et
al. formalize this as ``TapeGen(K, context)``: a PRF-keyed generator of
an arbitrarily long pseudo-random tape bound to an encoding of the
current recursion state.

:class:`CoinStream` implements that tape as an HMAC-SHA256 counter-mode
stream.  On top of raw bits it offers the exact utilities the samplers
need:

* :meth:`bits` / :meth:`bytes` — raw tape material;
* :meth:`uniform_int` — an unbiased integer in ``[0, bound)`` via
  rejection sampling (this is the ``c <- R`` step of Algorithm 1);
* :meth:`uniform_float` — a 53-bit uniform in ``[0, 1)`` used to invert
  the hypergeometric CDF (our deterministic stand-in for MATLAB's
  ``hygeinv`` consuming a coin).

:class:`KeyedTape` is the index-build fast path: it keys the HMAC once
per tape key and then serves streams — or single in-bucket choices —
that share the keyed state, so the per-entry cost of the one-to-many
mapping is one HMAC block instead of a fresh keying plus object graph.
Its output is byte-identical to the equivalent ``CoinStream`` calls.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable

from repro.errors import ParameterError

_DIGEST = hashlib.sha256
_BLOCK_BYTES = _DIGEST().digest_size
_BLOCK_BITS = 8 * _BLOCK_BYTES


def encode_context(parts: Iterable[bytes | str | int]) -> bytes:
    """Canonically encode a tuple of context parts into tape input.

    Each part is tagged with its type and length-prefixed so that no two
    distinct tuples encode to the same byte string (the injectivity the
    security proof of OPSE requires from the tape input encoding).

    Integers may be arbitrarily large (range endpoints up to ``2**46``
    and beyond appear in the paper's parameterization); they are encoded
    in signed big-endian form with an 8-byte length prefix.
    """
    pieces = []
    for part in parts:
        if isinstance(part, bool):
            # bool is an int subclass; keep the tag distinct anyway.
            raw = b"\x01" if part else b"\x00"
            pieces.append(b"B" + len(raw).to_bytes(8, "big") + raw)
        elif isinstance(part, int):
            width = max(1, (part.bit_length() + 8) // 8)
            raw = part.to_bytes(width, "big", signed=True)
            pieces.append(b"I" + len(raw).to_bytes(8, "big") + raw)
        elif isinstance(part, str):
            raw = part.encode("utf-8")
            pieces.append(b"S" + len(raw).to_bytes(8, "big") + raw)
        elif isinstance(part, (bytes, bytearray, memoryview)):
            raw = bytes(part)
            pieces.append(b"Y" + len(raw).to_bytes(8, "big") + raw)
        else:
            raise ParameterError(
                f"unsupported context part type: {type(part).__name__}"
            )
    return b"".join(pieces)


class CoinStream:
    """An endless deterministic pseudo-random tape bound to a context.

    Two :class:`CoinStream` objects built from the same ``(key,
    context)`` pair yield byte-identical output; different contexts give
    computationally independent tapes.

    Parameters
    ----------
    key:
        Secret tape key.
    context:
        Tuple of parts identifying the recursion state, encoded via
        :func:`encode_context`.  In Algorithm 1 this is
        ``(D, R, 0 || y)`` during the binary search and
        ``(D, R, 1 || m, id(F))`` for the final ciphertext choice.
    """

    def __init__(self, key: bytes, context: Iterable[bytes | str | int]):
        if not key:
            raise ParameterError("tape key must be non-empty")
        seed = encode_context(context)
        # Pre-key HMAC with the tape key; each block is HMAC(key, seed||ctr).
        self._mac = hmac.new(bytes(key), b"tapegen|", _DIGEST)
        self._seed = seed
        self._counter = 0
        self._buffer = b""
        self._bit_buffer = 0
        self._bit_count = 0
        self._stats = None

    @classmethod
    def _from_prekeyed(cls, mac: "hmac.HMAC", seed: bytes, stats=None):
        """Build a stream around an already-keyed HMAC (see KeyedTape).

        The prekeyed ``mac`` is shared, never mutated: every block
        works on a :meth:`hmac.HMAC.copy`, exactly as the public
        constructor does, so the emitted tape is byte-identical to
        ``CoinStream(key, context)``.
        """
        self = cls.__new__(cls)
        self._mac = mac
        self._seed = seed
        self._counter = 0
        self._buffer = b""
        self._bit_buffer = 0
        self._bit_count = 0
        self._stats = stats
        return self

    def _next_block(self) -> bytes:
        mac = self._mac.copy()
        mac.update(self._seed)
        mac.update(self._counter.to_bytes(8, "big"))
        self._counter += 1
        if self._stats is not None:
            self._stats.tape_blocks += 1
        return mac.digest()

    def bytes(self, length: int) -> bytes:
        """Return the next ``length`` tape bytes."""
        if length < 0:
            raise ParameterError(f"length must be non-negative, got {length}")
        while len(self._buffer) < length:
            self._buffer += self._next_block()
        out, self._buffer = self._buffer[:length], self._buffer[length:]
        return out

    def bits(self, count: int) -> int:
        """Return the next ``count`` tape bits as an integer in ``[0, 2**count)``."""
        if count < 0:
            raise ParameterError(f"bit count must be non-negative, got {count}")
        while self._bit_count < count:
            block = self.bytes(_BLOCK_BYTES)
            self._bit_buffer = (self._bit_buffer << (8 * len(block))) | int.from_bytes(
                block, "big"
            )
            self._bit_count += 8 * len(block)
        shift = self._bit_count - count
        value = self._bit_buffer >> shift
        self._bit_buffer &= (1 << shift) - 1
        self._bit_count = shift
        return value

    def uniform_int(self, bound: int) -> int:
        """Return an unbiased uniform integer in ``[0, bound)``.

        Uses rejection sampling on ``ceil(log2(bound))``-bit draws, so
        the output distribution is exactly uniform regardless of whether
        ``bound`` is a power of two.  Terminates with probability one;
        the expected number of draws is below 2.
        """
        if bound <= 0:
            raise ParameterError(f"bound must be positive, got {bound}")
        if bound == 1:
            return 0
        width = (bound - 1).bit_length()
        while True:
            candidate = self.bits(width)
            if candidate < bound:
                return candidate

    def uniform_float(self) -> float:
        """Return a uniform float in ``[0, 1)`` with 53 bits of precision."""
        return self.bits(53) / float(1 << 53)

    def choice(self, low: int, high: int) -> int:
        """Return a uniform integer in the inclusive interval ``[low, high]``."""
        if high < low:
            raise ParameterError(f"empty interval [{low}, {high}]")
        return low + self.uniform_int(high - low + 1)


class KeyedTape:
    """A reusable, pre-keyed ``TapeGen`` for one tape key.

    ``CoinStream`` re-keys HMAC-SHA256 on every construction — two
    compression-function applications (inner/outer pad) plus a fresh
    object graph, paid once *per mapped entry* on the index-build hot
    path.  The key, however, is fixed per posting list; only the
    context changes.  ``KeyedTape`` performs the keying once and hands
    out streams (or single in-bucket choices) that share the keyed
    state via :meth:`hmac.HMAC.copy`.

    Everything produced here is byte-identical to the equivalent
    ``CoinStream(key, context)`` calls — the keyed HMAC state after
    ``hmac.new(key, b"tapegen|")`` does not depend on how many streams
    it is later copied into.  The test suite pins this equivalence.
    """

    def __init__(self, key: bytes):
        if not key:
            raise ParameterError("tape key must be non-empty")
        self._mac = hmac.new(bytes(key), b"tapegen|", _DIGEST)

    def stream(
        self, context: Iterable[bytes | str | int], stats=None
    ) -> CoinStream:
        """A :class:`CoinStream` bound to ``context`` (shared keying)."""
        return CoinStream._from_prekeyed(
            self._mac, encode_context(context), stats
        )

    def stream_from_seed(self, seed: bytes, stats=None) -> CoinStream:
        """A stream from an already-encoded context (see
        :func:`encode_context`); lets callers pre-encode the static
        prefix of a context family once and append only the varying
        suffix per call."""
        return CoinStream._from_prekeyed(self._mac, bytes(seed), stats)

    def choice(self, seed: bytes, low: int, high: int, stats=None) -> int:
        """Uniform integer in ``[low, high]`` from the tape at ``seed``.

        Inlined equivalent of ``self.stream_from_seed(seed).choice(low,
        high)`` without building a stream object: one HMAC block is
        generated (more only on rejection-sampling retries, probability
        < 1/2 per round) and bits are consumed exactly as
        :meth:`CoinStream.bits` consumes them, so the returned value is
        byte-identical to the ``CoinStream`` path.
        """
        if high < low:
            raise ParameterError(f"empty interval [{low}, {high}]")
        size = high - low + 1
        if size == 1:
            return low
        width = (size - 1).bit_length()
        prekeyed = self._mac
        bit_buffer = 0
        bit_count = 0
        counter = 0
        while True:
            while bit_count < width:
                mac = prekeyed.copy()
                mac.update(seed)
                mac.update(counter.to_bytes(8, "big"))
                counter += 1
                bit_buffer = (bit_buffer << _BLOCK_BITS) | int.from_bytes(
                    mac.digest(), "big"
                )
                bit_count += _BLOCK_BITS
            shift = bit_count - width
            candidate = bit_buffer >> shift
            bit_buffer &= (1 << shift) - 1
            bit_count = shift
            if candidate < size:
                if stats is not None:
                    stats.tape_blocks += counter
                    stats.choices += 1
                return low + candidate


def tape_gen(key: bytes, context: Iterable[bytes | str | int]) -> CoinStream:
    """The paper's ``TapeGen(K, context)``: build the coin stream."""
    return CoinStream(key, context)
