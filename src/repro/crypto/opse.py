"""Order-preserving symmetric encryption (Boldyreva et al., Eurocrypt'09).

This is the deterministic OPSE primitive the paper builds on (Section
IV-A).  A plaintext domain ``D = {1, ..., M}`` is mapped into a range
``R = {1, ..., N}`` (``M <= N``) by a keyed binary search:

1. Split the current range at its midpoint ``y``.
2. Draw ``x ~ HGD(|R|, |D|, y - r)`` from coins bound to the current
   ``(D, R, y)`` state — ``x`` is how many domain points land below
   ``y`` in a *random* order-preserving function.
3. Recurse into the half containing the plaintext, until the domain
   shrinks to a single point; the surviving range interval is that
   plaintext's *bucket*.
4. Pick the ciphertext pseudo-randomly inside the bucket, seeded by the
   plaintext (deterministic: same plaintext, same ciphertext).

Buckets of distinct plaintexts are non-overlapping and ordered, so the
numeric order of ciphertexts equals the order of plaintexts.

The module exposes both the deterministic scheme
(:class:`OrderPreservingEncryption`) and the shared bucket recursion
(:func:`bucket_for_plaintext`, :func:`plaintext_for_ciphertext`) that
the paper's one-to-many mapping (:mod:`repro.crypto.opm`) reuses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hgd import hgd_sample
from repro.crypto.tape import CoinStream
from repro.errors import DomainError, ParameterError, RangeError

#: Tag bits distinguishing the two tape uses in Algorithm 1: ``0 || y``
#: during the binary search, ``1 || m`` for the ciphertext choice.
_SEARCH_TAG = 0
_CHOICE_TAG = 1


@dataclass(frozen=True)
class Interval:
    """An inclusive integer interval ``[low, high]``."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ParameterError(f"empty interval [{self.low}, {self.high}]")

    @property
    def size(self) -> int:
        """Number of integers in the interval."""
        return self.high - self.low + 1

    def __contains__(self, value: object) -> bool:
        return isinstance(value, int) and self.low <= value <= self.high


@dataclass(frozen=True)
class BucketResult:
    """Outcome of the bucket recursion for one plaintext or ciphertext.

    Attributes
    ----------
    plaintext:
        The domain point the recursion isolated.
    bucket:
        The non-overlapping range interval assigned to that plaintext.
    rounds:
        Number of binary-search rounds executed (each costs one HGD
        draw); the paper bounds its expectation by ``5 log M + 12``.
    """

    plaintext: int
    bucket: Interval
    rounds: int


def _search_coins(key: bytes, domain: Interval, range_: Interval, y: int) -> CoinStream:
    """Coins for the binary-search split: ``TapeGen(K, (D, R, 0 || y))``."""
    return CoinStream(
        key,
        (domain.low, domain.high, range_.low, range_.high, _SEARCH_TAG, y),
    )


def _split(
    key: bytes, domain: Interval, range_: Interval
) -> tuple[int, int]:
    """Perform one keyed binary-search round; return ``(x, y)``.

    ``y`` is the range midpoint and ``x`` the keyed-pseudo-random count
    of domain points mapped at or below ``y`` (absolute coordinates, as
    in the paper's ``x <- d + HYGEINV(...)``).
    """
    d = domain.low - 1
    r = range_.low - 1
    big_m = domain.size
    big_n = range_.size
    y = r + big_n // 2
    coins = _search_coins(key, domain, range_, y)
    x = d + hgd_sample(coins, population=big_n, successes=big_m, draws=y - r)
    return x, y


def bucket_for_plaintext(
    key: bytes, domain: Interval, range_: Interval, plaintext: int
) -> BucketResult:
    """Descend the keyed binary search by plaintext; return its bucket.

    This is the ``while |D| != 1`` loop of Algorithm 1.
    """
    if domain.size > range_.size:
        raise ParameterError(
            f"domain size {domain.size} exceeds range size {range_.size}"
        )
    if plaintext not in domain:
        raise DomainError(
            f"plaintext {plaintext} outside domain [{domain.low}, {domain.high}]"
        )
    rounds = 0
    while domain.size != 1:
        x, y = _split(key, domain, range_)
        rounds += 1
        if plaintext <= x:
            domain = Interval(domain.low, x)
            range_ = Interval(range_.low, y)
        else:
            domain = Interval(x + 1, domain.high)
            range_ = Interval(y + 1, range_.high)
    return BucketResult(plaintext=domain.low, bucket=range_, rounds=rounds)


def plaintext_for_ciphertext(
    key: bytes, domain: Interval, range_: Interval, ciphertext: int
) -> BucketResult:
    """Descend the keyed binary search by ciphertext; return its bucket.

    Because the split coins depend only on the current ``(D, R, y)``
    state, descending by ``c <= y`` reproduces exactly the path that
    :func:`bucket_for_plaintext` takes for the plaintext whose bucket
    contains ``c``.  This works for *any* point of the bucket, which is
    what makes the one-to-many mapping invertible.
    """
    if domain.size > range_.size:
        raise ParameterError(
            f"domain size {domain.size} exceeds range size {range_.size}"
        )
    if ciphertext not in range_:
        raise RangeError(
            f"ciphertext {ciphertext} outside range [{range_.low}, {range_.high}]"
        )
    rounds = 0
    while domain.size != 1:
        x, y = _split(key, domain, range_)
        rounds += 1
        if ciphertext <= y:
            new_low, new_high = domain.low, x
            range_ = Interval(range_.low, y)
        else:
            new_low, new_high = x + 1, domain.high
            range_ = Interval(y + 1, range_.high)
        if new_high < new_low:
            # The ciphertext fell into slack range space that no domain
            # point occupies; it is not in any plaintext's bucket.
            raise RangeError(
                f"ciphertext {ciphertext} does not belong to any plaintext bucket"
            )
        domain = Interval(new_low, new_high)
    return BucketResult(plaintext=domain.low, bucket=range_, rounds=rounds)


class OrderPreservingEncryption:
    """Deterministic OPSE over ``D = {1..M}``, ``R = {1..N}``.

    Parameters
    ----------
    key:
        Secret key; all pseudo-randomness is derived from it.
    domain_size:
        ``M``, the number of plaintext score levels (the paper encodes
        relevance scores into ``M = 128`` levels).
    range_size:
        ``N >= M``; the paper sizes it via the min-entropy analysis of
        Section IV-C (e.g. ``N = 2**46``).

    Notes
    -----
    For the paper's *security* level the original OPSE guidance is
    ``M = N/2 > 80`` giving more than ``2**80`` order-preserving
    functions; the RSSE scheme instead enlarges ``N`` far beyond that to
    flatten the ciphertext distribution.
    """

    def __init__(self, key: bytes, domain_size: int, range_size: int):
        if not key:
            raise ParameterError("OPSE key must be non-empty")
        if domain_size < 1:
            raise ParameterError(f"domain size must be >= 1, got {domain_size}")
        if range_size < domain_size:
            raise ParameterError(
                f"range size {range_size} must be >= domain size {domain_size}"
            )
        self._key = bytes(key)
        self._domain = Interval(1, domain_size)
        self._range = Interval(1, range_size)

    @property
    def domain(self) -> Interval:
        """The plaintext domain ``[1, M]``."""
        return self._domain

    @property
    def range(self) -> Interval:
        """The ciphertext range ``[1, N]``."""
        return self._range

    def bucket(self, plaintext: int) -> Interval:
        """Return the range interval assigned to ``plaintext``."""
        return bucket_for_plaintext(
            self._key, self._domain, self._range, plaintext
        ).bucket

    def encrypt(self, plaintext: int) -> int:
        """Deterministically encrypt ``plaintext`` to a range point.

        The ciphertext is drawn uniformly from the plaintext's bucket
        using coins seeded by ``(D, R, 1 || m)`` — the same plaintext
        always selects the same point.
        """
        result = bucket_for_plaintext(self._key, self._domain, self._range, plaintext)
        coins = CoinStream(
            self._key,
            (
                result.bucket.low,
                result.bucket.high,
                _CHOICE_TAG,
                result.plaintext,
            ),
        )
        return coins.choice(result.bucket.low, result.bucket.high)

    def decrypt(self, ciphertext: int, verify: bool = True) -> int:
        """Recover the plaintext whose bucket contains ``ciphertext``.

        With ``verify=True`` (the default) the ciphertext must be the
        canonical point :meth:`encrypt` would produce; other bucket
        points raise :class:`~repro.errors.RangeError`.  Pass
        ``verify=False`` to accept any bucket point (bucket-inverse
        semantics, used by the one-to-many mapping).
        """
        result = plaintext_for_ciphertext(
            self._key, self._domain, self._range, ciphertext
        )
        if verify and self.encrypt(result.plaintext) != ciphertext:
            raise RangeError(
                f"ciphertext {ciphertext} is in the bucket of plaintext "
                f"{result.plaintext} but is not its canonical encryption"
            )
        return result.plaintext

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OrderPreservingEncryption(M={self._domain.size}, N={self._range.size})"
        )
