"""Order-preserving symmetric encryption (Boldyreva et al., Eurocrypt'09).

This is the deterministic OPSE primitive the paper builds on (Section
IV-A).  A plaintext domain ``D = {1, ..., M}`` is mapped into a range
``R = {1, ..., N}`` (``M <= N``) by a keyed binary search:

1. Split the current range at its midpoint ``y``.
2. Draw ``x ~ HGD(|R|, |D|, y - r)`` from coins bound to the current
   ``(D, R, y)`` state — ``x`` is how many domain points land below
   ``y`` in a *random* order-preserving function.
3. Recurse into the half containing the plaintext, until the domain
   shrinks to a single point; the surviving range interval is that
   plaintext's *bucket*.
4. Pick the ciphertext pseudo-randomly inside the bucket, seeded by the
   plaintext (deterministic: same plaintext, same ciphertext).

Buckets of distinct plaintexts are non-overlapping and ordered, so the
numeric order of ciphertexts equals the order of plaintexts.

The module exposes both the deterministic scheme
(:class:`OrderPreservingEncryption`) and the shared bucket recursion
(:func:`bucket_for_plaintext`, :func:`plaintext_for_ciphertext`) that
the paper's one-to-many mapping (:mod:`repro.crypto.opm`) reuses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hgd import hgd_sample
from repro.crypto.stats import MappingStats
from repro.crypto.tape import CoinStream, KeyedTape, encode_context
from repro.errors import DomainError, ParameterError, RangeError

#: Tag bits distinguishing the two tape uses in Algorithm 1: ``0 || y``
#: during the binary search, ``1 || m`` for the ciphertext choice.
_SEARCH_TAG = 0
_CHOICE_TAG = 1

#: A shared split-tree cache: ``(D.low, D.high, R.low, R.high)`` ->
#: ``(x, y)``.  A split is a pure function of ``(key, D, R)`` and every
#: descent under one key starts from the same root, so all descents
#: share prefix states; the cache must be private to one key (callers
#: own it — see :class:`~repro.crypto.opm.OneToManyOpm`).  With it,
#: each distinct recursion state pays its HGD draw once: a full
#: ``M``-bucket table costs one draw per internal node of the split
#: tree — ``M - 1`` domain-halving splits plus the slack chains where
#: a split leaves every domain point on one side (~= ``1.6 M`` total
#: at the paper's ``M=128, N=2**46``) — instead of re-drawing the
#: shared path prefixes on every descent (~= ``8.3 M`` draws
#: measured for the same table).
SplitCache = dict[tuple[int, int, int, int], tuple[int, int]]


@dataclass(frozen=True)
class Interval:
    """An inclusive integer interval ``[low, high]``."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ParameterError(f"empty interval [{self.low}, {self.high}]")

    @property
    def size(self) -> int:
        """Number of integers in the interval."""
        return self.high - self.low + 1

    def __contains__(self, value: object) -> bool:
        return isinstance(value, int) and self.low <= value <= self.high


@dataclass(frozen=True)
class BucketResult:
    """Outcome of the bucket recursion for one plaintext or ciphertext.

    Attributes
    ----------
    plaintext:
        The domain point the recursion isolated.
    bucket:
        The non-overlapping range interval assigned to that plaintext.
    rounds:
        Number of binary-search rounds executed (each costs one HGD
        draw); the paper bounds its expectation by ``5 log M + 12``.
    """

    plaintext: int
    bucket: Interval
    rounds: int


def _search_coins(key: bytes, domain: Interval, range_: Interval, y: int) -> CoinStream:
    """Coins for the binary-search split: ``TapeGen(K, (D, R, 0 || y))``."""
    return CoinStream(
        key,
        (domain.low, domain.high, range_.low, range_.high, _SEARCH_TAG, y),
    )


def _split(
    key: bytes,
    domain: Interval,
    range_: Interval,
    split_cache: SplitCache | None = None,
    stats: MappingStats | None = None,
) -> tuple[int, int]:
    """Perform one keyed binary-search round; return ``(x, y)``.

    ``y`` is the range midpoint and ``x`` the keyed-pseudo-random count
    of domain points mapped at or below ``y`` (absolute coordinates, as
    in the paper's ``x <- d + HYGEINV(...)``).

    The result is a pure function of ``(key, domain, range_)``; with a
    ``split_cache`` (owned by the caller, private to ``key``) repeated
    states skip the HGD draw entirely and return the identical pair.
    """
    if split_cache is not None:
        state = (domain.low, domain.high, range_.low, range_.high)
        hit = split_cache.get(state)
        if hit is not None:
            if stats is not None:
                stats.split_cache_hits += 1
            return hit
    d = domain.low - 1
    r = range_.low - 1
    big_m = domain.size
    big_n = range_.size
    y = r + big_n // 2
    coins = _search_coins(key, domain, range_, y)
    x = d + hgd_sample(coins, population=big_n, successes=big_m, draws=y - r)
    if stats is not None:
        stats.hgd_draws += 1
    if split_cache is not None:
        split_cache[state] = (x, y)
    return x, y


def bucket_for_plaintext(
    key: bytes,
    domain: Interval,
    range_: Interval,
    plaintext: int,
    split_cache: SplitCache | None = None,
    stats: MappingStats | None = None,
) -> BucketResult:
    """Descend the keyed binary search by plaintext; return its bucket.

    This is the ``while |D| != 1`` loop of Algorithm 1.
    """
    if domain.size > range_.size:
        raise ParameterError(
            f"domain size {domain.size} exceeds range size {range_.size}"
        )
    if plaintext not in domain:
        raise DomainError(
            f"plaintext {plaintext} outside domain [{domain.low}, {domain.high}]"
        )
    if stats is not None:
        stats.descents += 1
    rounds = 0
    while domain.size != 1:
        x, y = _split(key, domain, range_, split_cache, stats)
        rounds += 1
        if plaintext <= x:
            domain = Interval(domain.low, x)
            range_ = Interval(range_.low, y)
        else:
            domain = Interval(x + 1, domain.high)
            range_ = Interval(y + 1, range_.high)
    return BucketResult(plaintext=domain.low, bucket=range_, rounds=rounds)


def plaintext_for_ciphertext(
    key: bytes,
    domain: Interval,
    range_: Interval,
    ciphertext: int,
    split_cache: SplitCache | None = None,
    stats: MappingStats | None = None,
) -> BucketResult:
    """Descend the keyed binary search by ciphertext; return its bucket.

    Because the split coins depend only on the current ``(D, R, y)``
    state, descending by ``c <= y`` reproduces exactly the path that
    :func:`bucket_for_plaintext` takes for the plaintext whose bucket
    contains ``c``.  This works for *any* point of the bucket, which is
    what makes the one-to-many mapping invertible.
    """
    if domain.size > range_.size:
        raise ParameterError(
            f"domain size {domain.size} exceeds range size {range_.size}"
        )
    if ciphertext not in range_:
        raise RangeError(
            f"ciphertext {ciphertext} outside range [{range_.low}, {range_.high}]"
        )
    if stats is not None:
        stats.descents += 1
    rounds = 0
    while domain.size != 1:
        x, y = _split(key, domain, range_, split_cache, stats)
        rounds += 1
        if ciphertext <= y:
            new_low, new_high = domain.low, x
            range_ = Interval(range_.low, y)
        else:
            new_low, new_high = x + 1, domain.high
            range_ = Interval(y + 1, range_.high)
        if new_high < new_low:
            # The ciphertext fell into slack range space that no domain
            # point occupies; it is not in any plaintext's bucket.
            raise RangeError(
                f"ciphertext {ciphertext} does not belong to any plaintext bucket"
            )
        domain = Interval(new_low, new_high)
    return BucketResult(plaintext=domain.low, bucket=range_, rounds=rounds)


def bucket_table(
    key: bytes,
    domain: Interval,
    range_: Interval,
    split_cache: SplitCache | None = None,
    stats: MappingStats | None = None,
) -> dict[int, BucketResult]:
    """Every plaintext's bucket in one walk of the split tree.

    The per-plaintext descent revisits the prefix of its binary-search
    path for every neighbouring plaintext; walking the whole recursion
    tree instead performs each split exactly once — one HGD draw per
    internal node (``M - 1`` halving splits plus slack chains, ~=
    ``1.6 M`` at paper parameters) for all ``M`` buckets, versus ~=
    ``8.3 M`` draws for ``M`` independent descents.  Each returned
    :attr:`BucketResult.rounds` equals the plaintext's tree depth,
    which is exactly what :func:`bucket_for_plaintext` would report.
    """
    if domain.size > range_.size:
        raise ParameterError(
            f"domain size {domain.size} exceeds range size {range_.size}"
        )
    table: dict[int, BucketResult] = {}
    stack: list[tuple[Interval, Interval, int]] = [(domain, range_, 0)]
    while stack:
        sub_domain, sub_range, depth = stack.pop()
        if sub_domain.size == 1:
            table[sub_domain.low] = BucketResult(
                plaintext=sub_domain.low, bucket=sub_range, rounds=depth
            )
            continue
        x, y = _split(key, sub_domain, sub_range, split_cache, stats)
        # A split may push every domain point to one side (the other
        # side is pure range slack, holding no buckets) — only descend
        # into halves that still contain domain points.
        if x >= sub_domain.low:
            stack.append(
                (
                    Interval(sub_domain.low, x),
                    Interval(sub_range.low, y),
                    depth + 1,
                )
            )
        if x < sub_domain.high:
            stack.append(
                (
                    Interval(x + 1, sub_domain.high),
                    Interval(y + 1, sub_range.high),
                    depth + 1,
                )
            )
    return table


class OrderPreservingEncryption:
    """Deterministic OPSE over ``D = {1..M}``, ``R = {1..N}``.

    Parameters
    ----------
    key:
        Secret key; all pseudo-randomness is derived from it.
    domain_size:
        ``M``, the number of plaintext score levels (the paper encodes
        relevance scores into ``M = 128`` levels).
    range_size:
        ``N >= M``; the paper sizes it via the min-entropy analysis of
        Section IV-C (e.g. ``N = 2**46``).
    cache_splits:
        Share binary-search split results across descents (the results
        depend only on the key and the recursion state, so caching is
        semantically invisible — ciphertexts are byte-identical).
        Disable to measure raw per-operation descent cost.

    Notes
    -----
    For the paper's *security* level the original OPSE guidance is
    ``M = N/2 > 80`` giving more than ``2**80`` order-preserving
    functions; the RSSE scheme instead enlarges ``N`` far beyond that to
    flatten the ciphertext distribution.
    """

    def __init__(
        self,
        key: bytes,
        domain_size: int,
        range_size: int,
        cache_splits: bool = True,
    ):
        if not key:
            raise ParameterError("OPSE key must be non-empty")
        if domain_size < 1:
            raise ParameterError(f"domain size must be >= 1, got {domain_size}")
        if range_size < domain_size:
            raise ParameterError(
                f"range size {range_size} must be >= domain size {domain_size}"
            )
        self._key = bytes(key)
        self._domain = Interval(1, domain_size)
        self._range = Interval(1, range_size)
        self._split_cache: SplitCache | None = {} if cache_splits else None
        self._tape = KeyedTape(self._key)
        self.stats = MappingStats()

    @property
    def domain(self) -> Interval:
        """The plaintext domain ``[1, M]``."""
        return self._domain

    @property
    def range(self) -> Interval:
        """The ciphertext range ``[1, N]``."""
        return self._range

    def bucket(self, plaintext: int) -> Interval:
        """Return the range interval assigned to ``plaintext``."""
        return bucket_for_plaintext(
            self._key,
            self._domain,
            self._range,
            plaintext,
            self._split_cache,
            self.stats,
        ).bucket

    def bucket_table(self) -> dict[int, Interval]:
        """Every plaintext's bucket via one walk of the split tree."""
        table = bucket_table(
            self._key,
            self._domain,
            self._range,
            self._split_cache if self._split_cache is not None else {},
            self.stats,
        )
        return {
            plaintext: result.bucket for plaintext, result in table.items()
        }

    def encrypt(self, plaintext: int) -> int:
        """Deterministically encrypt ``plaintext`` to a range point.

        The ciphertext is drawn uniformly from the plaintext's bucket
        using coins seeded by ``(D, R, 1 || m)`` — the same plaintext
        always selects the same point.
        """
        result = bucket_for_plaintext(
            self._key,
            self._domain,
            self._range,
            plaintext,
            self._split_cache,
            self.stats,
        )
        seed = encode_context(
            (
                result.bucket.low,
                result.bucket.high,
                _CHOICE_TAG,
                result.plaintext,
            )
        )
        return self._tape.choice(
            seed, result.bucket.low, result.bucket.high, self.stats
        )

    def decrypt(self, ciphertext: int, verify: bool = True) -> int:
        """Recover the plaintext whose bucket contains ``ciphertext``.

        With ``verify=True`` (the default) the ciphertext must be the
        canonical point :meth:`encrypt` would produce; other bucket
        points raise :class:`~repro.errors.RangeError`.  Pass
        ``verify=False`` to accept any bucket point (bucket-inverse
        semantics, used by the one-to-many mapping).
        """
        result = plaintext_for_ciphertext(
            self._key,
            self._domain,
            self._range,
            ciphertext,
            self._split_cache,
            self.stats,
        )
        if verify and self.encrypt(result.plaintext) != ciphertext:
            raise RangeError(
                f"ciphertext {ciphertext} is in the bucket of plaintext "
                f"{result.plaintext} but is not its canonical encryption"
            )
        return result.plaintext

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OrderPreservingEncryption(M={self._domain.size}, N={self._range.size})"
        )
