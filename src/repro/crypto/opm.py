"""One-to-many order-preserving mapping (the paper's Algorithm 1).

The deterministic OPSE of :mod:`repro.crypto.opse` leaks the plaintext
*frequency* profile: every occurrence of the same relevance score maps
to the same ciphertext, so a curious server can histogram the encrypted
scores of a posting list and recognize keyword-specific score
distributions (the paper's Fig. 4 attack).

The paper's fix keeps OPSE's random plaintext-to-bucket assignment but
randomizes the final in-bucket choice by adding the (unique) file ID to
the selection seed:

    coin <- TapeGen(K, (D, R, 1 || m, id(F)))
    c    <- bucket, uniformly at random via coin

Equal scores attached to different files now land on *different* points
of the same bucket, flattening the ciphertext distribution while
preserving order (buckets are disjoint and ordered).  The mapping is
still invertible given the key: the binary-search descent by ciphertext
identifies the bucket, hence the score — which is also what makes score
*dynamics* work (new files never perturb previously mapped values).
"""

from __future__ import annotations

from repro.crypto.opse import (
    BucketResult,
    Interval,
    bucket_for_plaintext,
    plaintext_for_ciphertext,
)
from repro.crypto.tape import CoinStream
from repro.errors import ParameterError

_CHOICE_TAG = 1


class OneToManyOpm:
    """The one-to-many order-preserving mapping ``OPM_K``.

    Parameters
    ----------
    key:
        Per-posting-list key; the RSSE scheme derives it as ``f_z(w_i)``
        so identical scores in different posting lists use independent
        bucket layouts.
    domain_size:
        ``M`` — number of quantized score levels (paper: 128).
    range_size:
        ``N`` — ciphertext range size chosen per Section IV-C
        (paper example: ``2**46``).
    cache_buckets:
        Memoize the bucket of each score level.  The bucket depends
        only on ``(key, score)``, so caching is semantically invisible;
        it turns repeated mappings of the same level (ubiquitous when
        OPM-encrypting a posting list) from ``O(log M)`` HGD draws into
        a dict hit.  Disable to measure raw per-mapping cost (Fig. 7).

    All methods are pure functions of ``(key, arguments)``.
    """

    def __init__(
        self,
        key: bytes,
        domain_size: int,
        range_size: int,
        cache_buckets: bool = True,
    ):
        if not key:
            raise ParameterError("OPM key must be non-empty")
        if domain_size < 1:
            raise ParameterError(f"domain size must be >= 1, got {domain_size}")
        if range_size < domain_size:
            raise ParameterError(
                f"range size {range_size} must be >= domain size {domain_size}"
            )
        self._key = bytes(key)
        self._domain = Interval(1, domain_size)
        self._range = Interval(1, range_size)
        self._bucket_cache: dict[int, BucketResult] | None = (
            {} if cache_buckets else None
        )

    @property
    def domain(self) -> Interval:
        """The plaintext (score-level) domain ``[1, M]``."""
        return self._domain

    @property
    def range(self) -> Interval:
        """The ciphertext range ``[1, N]``."""
        return self._range

    def bucket(self, score: int) -> Interval:
        """Return the bucket interval assigned to score level ``score``.

        The bucket depends only on the key and the score — not on the
        file ID — which is exactly why previously mapped values survive
        later insertions unchanged (score dynamics, Section VII).
        """
        return self._descend(score).bucket

    def _descend(self, score: int) -> BucketResult:
        if self._bucket_cache is not None:
            cached = self._bucket_cache.get(score)
            if cached is not None:
                return cached
        result = bucket_for_plaintext(
            self._key, self._domain, self._range, score
        )
        if self._bucket_cache is not None:
            self._bucket_cache[score] = result
        return result

    def map_score(self, score: int, file_id: bytes | str) -> int:
        """Map ``(score, file_id)`` to a range point (Algorithm 1).

        Deterministic in both arguments: re-mapping the same file's
        score reproduces the same ciphertext, while different files
        holding the same score get independent uniform points of the
        shared bucket.
        """
        if isinstance(file_id, str):
            file_id = file_id.encode("utf-8")
        result = self._descend(score)
        coins = CoinStream(
            self._key,
            (
                result.bucket.low,
                result.bucket.high,
                _CHOICE_TAG,
                result.plaintext,
                bytes(file_id),
            ),
        )
        return coins.choice(result.bucket.low, result.bucket.high)

    def invert(self, ciphertext: int) -> int:
        """Recover the score level whose bucket contains ``ciphertext``.

        The retrieval protocol never needs this (the server ranks
        ciphertexts directly), but the data owner uses it for index
        maintenance and the test suite uses it to check correctness.
        """
        result = plaintext_for_ciphertext(
            self._key, self._domain, self._range, ciphertext
        )
        return result.plaintext

    def rounds(self, score: int) -> int:
        """Number of HGD draws needed to map ``score`` (cost probe).

        The paper bounds the expected count by ``5 log2(M) + 12``; the
        Fig. 7 bench sweeps this cost against ``M`` and ``|R|``.
        """
        return self._descend(score).rounds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OneToManyOpm(M={self._domain.size}, N={self._range.size})"
