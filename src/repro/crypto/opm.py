"""One-to-many order-preserving mapping (the paper's Algorithm 1).

The deterministic OPSE of :mod:`repro.crypto.opse` leaks the plaintext
*frequency* profile: every occurrence of the same relevance score maps
to the same ciphertext, so a curious server can histogram the encrypted
scores of a posting list and recognize keyword-specific score
distributions (the paper's Fig. 4 attack).

The paper's fix keeps OPSE's random plaintext-to-bucket assignment but
randomizes the final in-bucket choice by adding the (unique) file ID to
the selection seed:

    coin <- TapeGen(K, (D, R, 1 || m, id(F)))
    c    <- bucket, uniformly at random via coin

Equal scores attached to different files now land on *different* points
of the same bucket, flattening the ciphertext distribution while
preserving order (buckets are disjoint and ordered).  The mapping is
still invertible given the key: the binary-search descent by ciphertext
identifies the bucket, hence the score — which is also what makes score
*dynamics* work (new files never perturb previously mapped values).

Fast path
---------
Mapping a posting list is the dominant cost of index construction
(Table I), and almost all of it is redundant: every descent under one
key shares binary-search prefix states, and every in-bucket choice
re-keys an HMAC that depends only on the key.  The cached regime
therefore shares a **split-tree cache** across descents (each distinct
recursion state pays its HGD draw once — a ~5x reduction for a full
keyword build at paper parameters), pre-encodes the
static choice-context prefix per score level, and draws the in-bucket
point through a pre-keyed :class:`~repro.crypto.tape.KeyedTape` — one
HMAC block per entry.  :meth:`OneToManyOpm.buckets_table` and
:meth:`OneToManyOpm.map_scores` expose the batch shape directly.  None
of this changes a single output byte (golden-vector and fast≡naive
property tests pin the equivalence); ``cache_buckets=False`` disables
*every* cross-call cache so Fig. 7 still measures the raw per-mapping
descent cost.
"""

from __future__ import annotations

from typing import Iterable

from repro.crypto.opse import (
    BucketResult,
    Interval,
    SplitCache,
    bucket_for_plaintext,
    bucket_table,
    plaintext_for_ciphertext,
)
from repro.crypto.stats import MappingStats
from repro.crypto.tape import KeyedTape, encode_context
from repro.errors import ParameterError

_CHOICE_TAG = 1


class OneToManyOpm:
    """The one-to-many order-preserving mapping ``OPM_K``.

    Parameters
    ----------
    key:
        Per-posting-list key; the RSSE scheme derives it as ``f_z(w_i)``
        so identical scores in different posting lists use independent
        bucket layouts.
    domain_size:
        ``M`` — number of quantized score levels (paper: 128).
    range_size:
        ``N`` — ciphertext range size chosen per Section IV-C
        (paper example: ``2**46``).
    cache_buckets:
        Memoize per-score buckets *and* share binary-search splits
        across descents.  Both depend only on ``(key, score)`` /
        ``(key, state)``, so caching is semantically invisible; it
        turns repeated mappings of the same level (ubiquitous when
        OPM-encrypting a posting list) from ``O(log M)`` HGD draws into
        a dict hit, and caps the draws of a full keyword build at one
        per split-tree node (~5x below the per-descent total at paper
        parameters).  Disable to measure raw per-mapping cost (Fig. 7);
        the uncached regime keeps **no** cross-call state, so every
        ``map_score``/``rounds`` call pays the full descent.

    All methods are pure functions of ``(key, arguments)``; the
    :attr:`stats` counters record work done (HGD draws, cache traffic,
    tape blocks) for the perf harness.
    """

    def __init__(
        self,
        key: bytes,
        domain_size: int,
        range_size: int,
        cache_buckets: bool = True,
        stats: MappingStats | None = None,
    ):
        if not key:
            raise ParameterError("OPM key must be non-empty")
        if domain_size < 1:
            raise ParameterError(f"domain size must be >= 1, got {domain_size}")
        if range_size < domain_size:
            raise ParameterError(
                f"range size {range_size} must be >= domain size {domain_size}"
            )
        self._key = bytes(key)
        self._domain = Interval(1, domain_size)
        self._range = Interval(1, range_size)
        self._tape = KeyedTape(self._key)
        # Observability hook: a build that spans many per-term OPMs can
        # hand every instance one shared MappingStats so the whole
        # build's work counters accumulate in one place (sound only for
        # sequential use — increments are unlocked by design).
        self.stats = stats if stats is not None else MappingStats()
        self._cached = bool(cache_buckets)
        self._bucket_cache: dict[int, BucketResult] | None = (
            {} if cache_buckets else None
        )
        self._split_cache: SplitCache | None = {} if cache_buckets else None
        self._prefix_cache: dict[int, bytes] | None = (
            {} if cache_buckets else None
        )

    @property
    def domain(self) -> Interval:
        """The plaintext (score-level) domain ``[1, M]``."""
        return self._domain

    @property
    def range(self) -> Interval:
        """The ciphertext range ``[1, N]``."""
        return self._range

    def reset_stats(self) -> None:
        """Zero the work counters (caches are left intact)."""
        self.stats.reset()

    def bucket(self, score: int) -> Interval:
        """Return the bucket interval assigned to score level ``score``.

        The bucket depends only on the key and the score — not on the
        file ID — which is exactly why previously mapped values survive
        later insertions unchanged (score dynamics, Section VII).
        """
        return self._descend(score).bucket

    def _descend(self, score: int) -> BucketResult:
        if self._bucket_cache is not None:
            cached = self._bucket_cache.get(score)
            if cached is not None:
                self.stats.bucket_cache_hits += 1
                return cached
            self.stats.bucket_cache_misses += 1
        result = bucket_for_plaintext(
            self._key,
            self._domain,
            self._range,
            score,
            self._split_cache,
            self.stats,
        )
        if self._bucket_cache is not None:
            self._bucket_cache[score] = result
        return result

    def _choice_seed(self, result: BucketResult, file_id: bytes) -> bytes:
        """Seed of the choice tape ``TapeGen(K, (D, R, 1 || m, id))``.

        The context prefix ``(bucket.low, bucket.high, 1, m)`` is
        static per score level; the cached regime encodes it once and
        appends only the file-id part (``encode_context`` concatenates
        per-part encodings, so the spliced seed is byte-identical to
        encoding the full tuple).
        """
        if self._prefix_cache is not None:
            prefix = self._prefix_cache.get(result.plaintext)
            if prefix is None:
                prefix = encode_context(
                    (
                        result.bucket.low,
                        result.bucket.high,
                        _CHOICE_TAG,
                        result.plaintext,
                    )
                )
                self._prefix_cache[result.plaintext] = prefix
        else:
            prefix = encode_context(
                (
                    result.bucket.low,
                    result.bucket.high,
                    _CHOICE_TAG,
                    result.plaintext,
                )
            )
        return prefix + encode_context((file_id,))

    def map_score(self, score: int, file_id: bytes | str) -> int:
        """Map ``(score, file_id)`` to a range point (Algorithm 1).

        Deterministic in both arguments: re-mapping the same file's
        score reproduces the same ciphertext, while different files
        holding the same score get independent uniform points of the
        shared bucket.
        """
        if isinstance(file_id, str):
            file_id = file_id.encode("utf-8")
        result = self._descend(score)
        seed = self._choice_seed(result, bytes(file_id))
        return self._tape.choice(
            seed, result.bucket.low, result.bucket.high, self.stats
        )

    def buckets_table(self) -> dict[int, Interval]:
        """Every score level's bucket in one walk of the split tree.

        Costs one HGD draw per internal node of the recursion tree
        (~= ``1.6 M`` at paper parameters), versus ~= ``8.3 M`` for
        ``M`` independent descents.  In the cached regime the walk populates
        the per-instance caches, so subsequent ``map_score`` calls are
        pure dict hits; in the uncached regime the walk uses ephemeral
        state (nothing leaks into later per-mapping cost probes).
        """
        split_cache = (
            self._split_cache if self._split_cache is not None else {}
        )
        table = bucket_table(
            self._key, self._domain, self._range, split_cache, self.stats
        )
        if self._bucket_cache is not None:
            self._bucket_cache.update(table)
        return {score: result.bucket for score, result in table.items()}

    def map_scores(
        self, items: Iterable[tuple[int, bytes | str]]
    ) -> list[int]:
        """Batch :meth:`map_score` over ``(score, file_id)`` pairs.

        One shared split tree serves every descent of the batch and
        each entry pays one pre-keyed HMAC block for its in-bucket
        choice, so per-entry cost is O(1) after the first occurrence of
        each score level.  Returns the mapped values in input order;
        output is byte-identical to calling :meth:`map_score` per pair.

        In the uncached regime the shared state is ephemeral to the
        call (a batch is "one tree walk" by definition), keeping the
        per-call :meth:`map_score` cost probe honest.
        """
        normalized: list[tuple[int, bytes]] = []
        for score, file_id in items:
            if isinstance(file_id, str):
                file_id = file_id.encode("utf-8")
            normalized.append((score, bytes(file_id)))
        if not normalized:
            return []
        if self._cached:
            values = []
            for score, file_id in normalized:
                result = self._descend(score)
                values.append(
                    self._tape.choice(
                        self._choice_seed(result, file_id),
                        result.bucket.low,
                        result.bucket.high,
                        self.stats,
                    )
                )
            return values
        split_cache: SplitCache = {}
        bucket_cache: dict[int, BucketResult] = {}
        prefix_cache: dict[int, bytes] = {}
        values: list[int] = []
        for score, file_id in normalized:
            result = bucket_cache.get(score)
            if result is None:
                self.stats.bucket_cache_misses += 1
                result = bucket_for_plaintext(
                    self._key,
                    self._domain,
                    self._range,
                    score,
                    split_cache,
                    self.stats,
                )
                bucket_cache[score] = result
            else:
                self.stats.bucket_cache_hits += 1
            prefix = prefix_cache.get(score)
            if prefix is None:
                prefix = encode_context(
                    (
                        result.bucket.low,
                        result.bucket.high,
                        _CHOICE_TAG,
                        result.plaintext,
                    )
                )
                prefix_cache[score] = prefix
            values.append(
                self._tape.choice(
                    prefix + encode_context((file_id,)),
                    result.bucket.low,
                    result.bucket.high,
                    self.stats,
                )
            )
        return values

    def invert(self, ciphertext: int) -> int:
        """Recover the score level whose bucket contains ``ciphertext``.

        The retrieval protocol never needs this (the server ranks
        ciphertexts directly), but the data owner uses it for index
        maintenance and the test suite uses it to check correctness.
        """
        result = plaintext_for_ciphertext(
            self._key,
            self._domain,
            self._range,
            ciphertext,
            self._split_cache,
            self.stats,
        )
        return result.plaintext

    def rounds(self, score: int) -> int:
        """Number of binary-search rounds needed to map ``score``.

        The paper bounds the expected count by ``5 log2(M) + 12``; the
        Fig. 7 bench sweeps this cost against ``M`` and ``|R|``.  The
        count is a property of the descent *path* and therefore
        identical in both cache regimes; only ``cache_buckets=False``
        additionally pays every round's HGD draw, which is what the
        uncached cost probe times.
        """
        return self._descend(score).rounds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OneToManyOpm(M={self._domain.size}, N={self._range.size})"
