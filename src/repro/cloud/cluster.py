"""Sharded, concurrent serving layer for the secure index.

The single :class:`~repro.cloud.server.CloudServer` is a one-worker
service; a production deployment partitions the encrypted index across
worker shards so searches (and index maintenance) proceed in parallel.
This module provides that layer:

* :class:`ShardedIndex` — partitions :class:`SecureIndex` posting
  lists across ``N`` shards by a keyed hash of the *index address*
  ``pi_x(w)``.  Placement is a public function of the address, which
  the server observes on every query anyway, so the partition leaks
  nothing beyond the scheme's existing search/access-pattern leakage
  — and because Wang et al.'s ranking is per-posting-list, every
  search touches exactly one shard: shards are independent by
  construction.
* :class:`ClusterServer` — a front end that owns one
  :class:`CloudServer` per shard, routes every request to the owning
  shard, and fans concurrent traffic out on a thread pool.  Each shard
  keeps its own bounded LRU decrypted-list cache and its own
  :class:`~repro.cloud.network.ChannelStats`, aggregated across the
  cluster.

The concurrency model is deliberately simple: a shard is the unit of
serialization (one request at a time per shard, via the shard lock),
and posting-list updates swap whole list objects, so a search never
observes a torn list — it sees either the pre-update or the
post-update version.
"""

from __future__ import annotations

import hashlib
import heapq
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.cloud.cache import ResultCache
from repro.cloud.faults import FaultPlan, FaultStats, FaultyChannel
from repro.cloud.network import Channel, ChannelStats, LinkModel
from repro.cloud.protocol import (
    MODE_CONJUNCTIVE,
    MultiSearchRequest,
    MultiSearchResponse,
    SearchRequest,
    detect_codec,
    pack_multi_score,
    pack_partial_score,
    peek_kind,
    unpack_partial_score,
)
from repro.cloud.retry import (
    BREAKER_STATE_VALUES,
    BreakerConfig,
    BreakerSnapshot,
    CircuitBreaker,
    RetryPolicy,
    RetryingChannel,
)
from repro.cloud.server import CloudServer, SearchObservation, ServerLog
from repro.cloud.storage import BlobStore
from repro.cloud.updates import (
    PutBlobRequest,
    RemoveBlobRequest,
    UpdateListRequest,
)
from repro.core.secure_index import EntryLayout, SecureIndex
from repro.core.trapdoor import Trapdoor
from repro.errors import (
    ParameterError,
    ProtocolError,
    ShardDownError,
    TransportError,
)
from repro.ir.topk import rank_pairs
from repro.obs.export import render_prometheus
from repro.obs.trace import NOOP_TRACER

#: Default keyed-hash seed for shard placement.  Any deployment-chosen
#: value works (placement only needs to be stable and balanced); it is
#: recorded alongside persisted shards so reloads route identically.
DEFAULT_SHARD_SEED = b"repro-shard-placement-v1"

#: Default shard count for convenience constructors.
DEFAULT_NUM_SHARDS = 4


def routing_address(request_bytes: bytes) -> bytes:
    """The bytes that decide which shard owns one request.

    Addressed requests (search, update-list) route by the index
    address they touch.  Blob requests carry no index address; they
    route by their file id so blob traffic spreads deterministically
    (any worker can serve them — the blob store is shared in-process
    and replicated per worker over the network).  Shared by
    :class:`ClusterServer` and the socket front end
    (:class:`~repro.cloud.netserve.NetServer`), so the two deployments
    route every request identically.
    """
    kind = peek_kind(request_bytes)
    if kind == "search":
        request = SearchRequest.from_bytes(request_bytes)
        return Trapdoor.deserialize(request.trapdoor_bytes).address
    if kind == "update-list":
        return UpdateListRequest.from_bytes(request_bytes).address
    if kind == "put-blob":
        return PutBlobRequest.from_bytes(request_bytes).file_id.encode(
            "utf-8"
        )
    if kind == "remove-blob":
        return RemoveBlobRequest.from_bytes(request_bytes).file_id.encode(
            "utf-8"
        )
    if kind == "fetch":
        return request_bytes
    raise ProtocolError(f"unknown request kind {kind!r}")


def shard_for_address(
    address: bytes, num_shards: int, seed: bytes = DEFAULT_SHARD_SEED
) -> int:
    """Owning shard of an index address: ``BLAKE2b_seed(address) mod N``.

    A keyed hash of the already-pseudonymous address: balanced (the
    addresses are PRF outputs, and the hash re-mixes them under the
    deployment seed) and computable by anyone who sees the address —
    i.e. exactly the parties the scheme already shows addresses to.
    """
    if num_shards < 1:
        raise ParameterError(f"num_shards must be >= 1, got {num_shards}")
    if not seed or len(seed) > 64:
        raise ParameterError("shard seed must be 1..64 bytes")
    digest = hashlib.blake2b(address, key=seed, digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


def split_multi_request(
    request: MultiSearchRequest, num_shards: int, seed: bytes
) -> dict[int, MultiSearchRequest]:
    """Partition a multi-search into per-shard partial sub-requests.

    Each shard gets *one* sub-request carrying every trapdoor it owns
    (in query order), flagged ``partial=True`` with no top-k bound:
    the shard must return its complete local aggregates, because a
    locally low-scoring file can still land in the global top-k once
    the other shards' contributions are added.  Shared by the
    in-process coordinator (:class:`ClusterServer`) and the socket
    front end (:class:`~repro.cloud.netserve.NetServer`), so both
    deployments fan out identically.
    """
    groups: dict[int, list[bytes]] = {}
    for trapdoor_bytes in request.trapdoors:
        address = Trapdoor.deserialize(trapdoor_bytes).address
        shard = shard_for_address(address, num_shards, seed)
        groups.setdefault(shard, []).append(trapdoor_bytes)
    return {
        shard: MultiSearchRequest(
            trapdoors=tuple(trapdoors),
            mode=request.mode,
            top_k=None,
            partial=True,
        )
        for shard, trapdoors in groups.items()
    }


def merge_partial_matches(
    partials: Sequence[tuple[tuple[str, bytes], ...]],
    mode: str,
    total_terms: int,
) -> list[tuple[str, int, int]]:
    """Merge per-shard partial aggregates into global candidates.

    ``partials`` is one ``matches`` tuple per shard (partial score
    fields: sum || matched-term count).  Conjunctive mode keeps only
    files present in *every* shard's local intersection whose matched
    counts add up to ``total_terms``; disjunctive mode sums across all
    shards.  Returns ``(file_id, opm_sum, matched_terms)`` in
    ascending file-id order — the same candidate order a single
    server's aggregation produces, so the coordinator's final
    :func:`repro.ir.topk.rank_pairs` cut breaks ties identically.
    """
    per_shard: list[dict[str, tuple[int, int]]] = [
        {
            file_id: unpack_partial_score(score_field)
            for file_id, score_field in matches
        }
        for matches in partials
    ]
    if not per_shard:
        return []
    if mode == MODE_CONJUNCTIVE:
        smallest = min(per_shard, key=len)
        others = [m for m in per_shard if m is not smallest]
        merged: list[tuple[str, int, int]] = []
        for file_id in sorted(smallest):
            total, count = smallest[file_id]
            for shard_map in others:
                entry = shard_map.get(file_id)
                if entry is None:
                    break
                total += entry[0]
                count += entry[1]
            else:
                if count == total_terms:
                    merged.append((file_id, total, count))
        return merged
    sums: dict[str, tuple[int, int]] = {}
    for shard_map in per_shard:
        for file_id, (total, count) in shard_map.items():
            sum_so_far, count_so_far = sums.get(file_id, (0, 0))
            sums[file_id] = (sum_so_far + total, count_so_far + count)
    return [
        (file_id, total, count)
        for file_id, (total, count) in sorted(sums.items())
    ]


class ShardedIndex:
    """A :class:`SecureIndex` partitioned across ``N`` shards by address.

    Presents the same owner/server surface as :class:`SecureIndex`
    (``add_list`` / ``replace_list`` / ``lookup`` / ``items`` / sizes /
    serialization) while storing each posting list in the shard its
    address hashes to.  Every per-list operation touches exactly one
    shard.

    Parameters
    ----------
    layout:
        The fixed entry geometry (identical across all shards).
    num_shards:
        Number of partitions.
    padded_length:
        Forwarded to every shard (basic-scheme list padding).
    shard_seed:
        Keyed-hash seed for placement (1..64 bytes).
    """

    def __init__(
        self,
        layout: EntryLayout,
        num_shards: int,
        padded_length: int | None = None,
        shard_seed: bytes = DEFAULT_SHARD_SEED,
    ):
        if num_shards < 1:
            raise ParameterError(f"num_shards must be >= 1, got {num_shards}")
        if not shard_seed or len(shard_seed) > 64:
            raise ParameterError("shard seed must be 1..64 bytes")
        self._layout = layout
        self._padded_length = padded_length
        self._seed = bytes(shard_seed)
        self._shards = tuple(
            SecureIndex(layout, padded_length=padded_length)
            for _ in range(num_shards)
        )

    @classmethod
    def from_secure_index(
        cls,
        index: SecureIndex,
        num_shards: int,
        shard_seed: bytes = DEFAULT_SHARD_SEED,
    ) -> "ShardedIndex":
        """Partition an existing index (snapshot; the source is untouched)."""
        sharded = cls(
            index.layout,
            num_shards,
            padded_length=index.padded_length,
            shard_seed=shard_seed,
        )
        for address, entries in index.items():
            # Lists from a built index are already at padded_length,
            # so the shard's own padding step is a no-op here.
            sharded.shard_for(address).add_list(address, list(entries))
        return sharded

    @classmethod
    def from_shards(
        cls,
        shards: Sequence[SecureIndex],
        shard_seed: bytes = DEFAULT_SHARD_SEED,
    ) -> "ShardedIndex":
        """Reassemble from per-shard indexes (the persistence path).

        Validates that every list sits in the shard its address hashes
        to under ``shard_seed`` — a reload with the wrong seed or
        reordered shard files would silently misroute every search
        otherwise.
        """
        if not shards:
            raise ParameterError("at least one shard is required")
        first = shards[0]
        sharded = cls(
            first.layout,
            len(shards),
            padded_length=first.padded_length,
            shard_seed=shard_seed,
        )
        for shard_id, shard in enumerate(shards):
            if shard.layout != first.layout:
                raise ParameterError("shards disagree on entry layout")
            for address, entries in shard.items():
                expected = shard_for_address(address, len(shards), sharded._seed)
                if expected != shard_id:
                    raise ParameterError(
                        f"address {address.hex()} stored in shard {shard_id} "
                        f"but hashes to shard {expected} (wrong seed or "
                        "shard order?)"
                    )
                sharded._shards[shard_id].add_list(address, list(entries))
        return sharded

    @classmethod
    def from_stores(
        cls,
        stores: Sequence,
        shard_seed: bytes = DEFAULT_SHARD_SEED,
    ) -> "ShardedIndex":
        """Wrap per-shard *store* objects without copying their lists.

        The packed-deployment load path: each element is any object
        with the shard-side index surface (``layout`` /
        ``padded_length`` / ``lookup`` / ``items`` / ``addresses`` /
        ``num_lists`` / ``size_bytes``) — e.g. a lazy
        :class:`~repro.cloud.store.PackedStore` — and is served *as
        is*, so an ``mmap``-backed shard stays lazy instead of being
        materialized the way :meth:`from_shards` does.  Placement is
        validated from ``addresses()`` alone: no posting block is
        decoded to prove the routing is right.
        """
        if not stores:
            raise ParameterError("at least one store is required")
        first = stores[0]
        sharded = cls(
            first.layout,
            len(stores),
            padded_length=first.padded_length,
            shard_seed=shard_seed,
        )
        for shard_id, store in enumerate(stores):
            if store.layout != first.layout:
                raise ParameterError("shards disagree on entry layout")
            for address in store.addresses():
                expected = shard_for_address(
                    address, len(stores), sharded._seed
                )
                if expected != shard_id:
                    raise ParameterError(
                        f"address {address.hex()} stored in shard "
                        f"{shard_id} but hashes to shard {expected} "
                        "(wrong seed or shard order?)"
                    )
        sharded._shards = tuple(stores)
        return sharded

    # -- partition geometry ------------------------------------------------

    @property
    def layout(self) -> EntryLayout:
        """The entry geometry (shared by all shards)."""
        return self._layout

    @property
    def padded_length(self) -> int | None:
        """``nu`` when padding is enabled, else None."""
        return self._padded_length

    @property
    def num_shards(self) -> int:
        """Number of partitions."""
        return len(self._shards)

    @property
    def shards(self) -> tuple[SecureIndex, ...]:
        """The per-shard indexes, in shard order."""
        return self._shards

    @property
    def shard_seed(self) -> bytes:
        """The placement seed (persisted with the deployment)."""
        return self._seed

    def shard_id(self, address: bytes) -> int:
        """Owning shard number of an address."""
        return shard_for_address(address, len(self._shards), self._seed)

    def shard_for(self, address: bytes) -> SecureIndex:
        """Owning shard of an address."""
        return self._shards[self.shard_id(address)]

    # -- SecureIndex surface ----------------------------------------------

    def add_list(self, address: bytes, encrypted_entries: list[bytes]) -> None:
        """Store one posting list in its owning shard."""
        self.shard_for(address).add_list(address, encrypted_entries)

    def replace_list(
        self, address: bytes, encrypted_entries: list[bytes]
    ) -> None:
        """Replace an existing list in its owning shard."""
        self.shard_for(address).replace_list(address, encrypted_entries)

    def lookup(self, address: bytes) -> list[bytes] | None:
        """Fetch the entries at ``address`` from its owning shard."""
        return self.shard_for(address).lookup(address)

    def items(self) -> Iterator[tuple[bytes, list[bytes]]]:
        """All lists across shards, merged back into address order."""
        return heapq.merge(
            *(shard.items() for shard in self._shards),
            key=lambda item: item[0],
        )

    def addresses(self) -> Iterator[bytes]:
        """All addresses across shards, merged into ascending order."""
        return heapq.merge(*(shard.addresses() for shard in self._shards))

    @property
    def num_lists(self) -> int:
        """Total posting lists across shards."""
        return sum(shard.num_lists for shard in self._shards)

    def size_bytes(self) -> int:
        """Total ciphertext bytes across shards."""
        return sum(shard.size_bytes() for shard in self._shards)

    def to_secure_index(self) -> SecureIndex:
        """Merge back into a single unsharded index (a copy)."""
        merged = SecureIndex(self._layout, padded_length=self._padded_length)
        for address, entries in self.items():
            merged.add_list(address, list(entries))
        return merged

    # -- serialization -----------------------------------------------------

    def serialize(self) -> bytes:
        """Self-describing encoding: seed + per-shard index encodings."""
        import json

        payload = {
            "kind": "sharded-index",
            "shard_seed": self._seed.hex(),
            "shards": [
                json.loads(shard.serialize().decode("utf-8"))
                for shard in self._shards
            ],
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def deserialize(cls, data: bytes) -> "ShardedIndex":
        """Parse the :meth:`serialize` encoding (placement revalidated)."""
        import json

        try:
            payload = json.loads(data.decode("utf-8"))
            if payload.get("kind") != "sharded-index":
                raise ParameterError("not a sharded-index encoding")
            seed = bytes.fromhex(payload["shard_seed"])
            shards = [
                SecureIndex.deserialize(
                    json.dumps(item, sort_keys=True).encode("utf-8")
                )
                for item in payload["shards"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ParameterError(
                f"malformed sharded-index encoding: {exc}"
            ) from exc
        return cls.from_shards(shards, shard_seed=seed)


@dataclass(frozen=True)
class PartialResult:
    """A degraded batch answer: what was served, and what was lost.

    The graceful-degradation contract of the resilient serving path: a
    search that loses shards returns the top-k answers the healthy
    shards produced plus an explicit account of the missing shards,
    instead of raising.  Leaks nothing beyond the already-public
    access pattern — shard ids are a public function of queried
    addresses, and a missing entry says only "this shard did not
    answer".

    Attributes
    ----------
    responses:
        One entry per request, in request order; ``None`` where the
        owning shard could not be reached within the retry policy.
    missing_shards:
        Sorted, de-duplicated ids of the shards that failed at least
        one request in this batch.
    failures:
        ``(request position, shard id, error class name)`` for every
        failed request — the full degradation account.
    """

    responses: tuple[bytes | None, ...]
    missing_shards: tuple[int, ...]
    failures: tuple[tuple[int, int, str], ...] = ()

    @property
    def complete(self) -> bool:
        """True when every request was served."""
        return not self.missing_shards

    @property
    def served(self) -> int:
        """Number of requests that got a response."""
        return sum(
            1 for response in self.responses if response is not None
        )

    def require_complete(self) -> tuple[bytes, ...]:
        """The responses, or :class:`ShardDownError` if any are missing."""
        if self.missing_shards:
            raise ShardDownError(
                f"shards {list(self.missing_shards)} did not answer "
                f"({self.served}/{len(self.responses)} requests served)"
            )
        return tuple(
            response
            for response in self.responses
            if response is not None
        )


class ClusterServer:
    """A sharded, thread-safe cloud server.

    Owns one :class:`CloudServer` per shard (each hosting one partition
    of the index and sharing the blob store), routes every request to
    the shard owning its address, and fans concurrent request batches
    out on a thread pool.  Exposes the same byte-level :meth:`handle`
    entry point as :class:`CloudServer`, so owners
    (:class:`~repro.cloud.updates.RemoteIndexMaintainer`) and users
    (:class:`~repro.cloud.user.DataUser`) connect to a cluster exactly
    as to a single server.

    Parameters
    ----------
    index:
        A pre-partitioned :class:`ShardedIndex`, or a plain
        :class:`SecureIndex` to partition on construction (snapshot).
    blob_store:
        The encrypted collection, shared across shards.
    can_rank:
        Forwarded to every shard server (efficient vs basic scheme).
    num_shards:
        Partition count when ``index`` is unsharded (default 4);
        must be omitted or match when a :class:`ShardedIndex` is given.
    cache_searches / cache_capacity:
        Per-cluster decrypted-list cache switch and *total* capacity;
        each shard runs its own LRU of ``capacity / N`` entries (at
        least one), and :meth:`invalidate_cache` routes to the owning
        shard.
    result_cache_bytes:
        Optional byte budget for a front-end cache of fully-encoded
        search response frames keyed by ``(codec, request-frame
        digest)``.  A hit answers without touching the owning shard
        (its stored observations are replayed into the shard's
        curious-server log, so search/access-pattern accounting stays
        exact) and is byte-identical to the uncached answer; updates
        bump the owning shard's epoch (blob mutations bump all), so a
        post-update query always re-executes.  Only single-keyword
        ``search`` frames are cached at this layer — multi-search
        fan-outs are cached by the socket front end
        (:class:`~repro.cloud.netserve.NetServer`).  ``None`` (the
        default) disables the cache.
    update_token:
        Write-authorization secret, forwarded to every shard.
    log_capacity:
        Optional per-shard bound on the curious-server observation log
        (see :class:`~repro.cloud.server.ServerLog`); ``None`` keeps
        full history.
    max_workers:
        Thread-pool width for :meth:`handle_many` (default: twice the
        shard count).
    link_model / simulate_latency:
        Forwarded to each shard's :class:`~repro.cloud.network.Channel`;
        with ``simulate_latency`` every shard call sleeps for its
        modeled service time, making scaling measurements wall-clock
        faithful (see ``benchmarks/bench_cluster_scaling.py``).
    fault_plan:
        Optional deterministic fault injection: each shard's channel
        is wrapped in a :class:`~repro.cloud.faults.FaultyChannel`
        with the plan's schedule for that shard id.
    retry_policy:
        Optional per-shard retry: each (possibly faulty) shard
        channel is wrapped in a
        :class:`~repro.cloud.retry.RetryingChannel`, so transient
        drops and corruption are absorbed before the circuit breaker
        ever sees a failure.
    breaker:
        Per-shard circuit-breaker tuning (defaults applied when
        omitted).  Breakers only act on
        :class:`~repro.errors.TransportError` failures, so a
        fault-free deployment never trips one.
    retry_sleep:
        Clock for retry backoff waits (injectable so tests and
        deterministic suites can run on modeled time).
    obs:
        Optional :class:`repro.obs.Obs` bundle, threaded through the
        whole serving stack: each request runs under a
        ``cluster.handle`` / ``cluster.handle_resilient`` root span
        with per-shard ``shard.dispatch`` children (retry attempts and
        injected faults annotate below them via the shard's retry and
        fault wrappers), shard servers record search-phase spans and
        leakage events, and headline counters/latency histograms land
        in the shared metrics registry.  ``None`` (the default) wires
        everything to the no-op tracer.
    """

    def __init__(
        self,
        index: SecureIndex | ShardedIndex,
        blob_store: BlobStore,
        can_rank: bool,
        num_shards: int | None = None,
        cache_searches: bool = False,
        cache_capacity: int | None = None,
        update_token: bytes | None = None,
        max_workers: int | None = None,
        link_model: LinkModel | None = None,
        simulate_latency: bool = False,
        shard_seed: bytes = DEFAULT_SHARD_SEED,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: BreakerConfig | None = None,
        retry_sleep: Callable[[float], None] = time.sleep,
        obs=None,
        log_capacity: int | None = None,
        result_cache_bytes: int | None = None,
    ):
        self._obs = obs
        self._tracer = obs.tracer if obs is not None else NOOP_TRACER
        if isinstance(index, ShardedIndex):
            if num_shards is not None and num_shards != index.num_shards:
                raise ParameterError(
                    f"index has {index.num_shards} shards but num_shards="
                    f"{num_shards} was requested"
                )
            self._sharded = index
        else:
            self._sharded = ShardedIndex.from_secure_index(
                index,
                num_shards if num_shards is not None else DEFAULT_NUM_SHARDS,
                shard_seed=shard_seed,
            )
        shards = self._sharded.num_shards
        if cache_capacity is None:
            per_shard_capacity = None
        else:
            if cache_capacity < 1:
                raise ParameterError(
                    f"cache capacity must be >= 1, got {cache_capacity}"
                )
            per_shard_capacity = max(1, cache_capacity // shards)
        self._blobs = blob_store
        self._servers = tuple(
            CloudServer(
                shard,
                blob_store,
                can_rank,
                cache_searches=cache_searches,
                update_token=update_token,
                obs=obs,
                log_capacity=log_capacity,
                **(
                    {"cache_capacity": per_shard_capacity}
                    if per_shard_capacity is not None
                    else {}
                ),
            )
            for shard in self._sharded.shards
        )
        self._channels = tuple(
            Channel(
                server.handle,
                link_model=link_model,
                simulate_latency=simulate_latency,
            )
            for server in self._servers
        )
        # Serving stack per shard: base channel, optionally wrapped in
        # fault injection, optionally wrapped in retry.  Breakers sit
        # above the stack in _call_shard, so one exhausted retry run
        # counts as a single breaker failure.
        self._faulty_channels: tuple[FaultyChannel, ...] | None = None
        serving: tuple[Channel | FaultyChannel | RetryingChannel, ...]
        serving = self._channels
        if fault_plan is not None:
            self._faulty_channels = tuple(
                FaultyChannel(
                    channel, fault_plan.schedule_for(shard), obs=obs
                )
                for shard, channel in enumerate(serving)
            )
            serving = self._faulty_channels
        self._retrying_channels: tuple[RetryingChannel, ...] | None = None
        if retry_policy is not None:
            self._retrying_channels = tuple(
                RetryingChannel(
                    channel, retry_policy, sleep=retry_sleep, obs=obs
                )
                for channel in serving
            )
            serving = self._retrying_channels
        self._serving = serving
        self._breakers = tuple(
            CircuitBreaker(breaker) for _ in range(shards)
        )
        self._result_cache: ResultCache | None = (
            ResultCache(result_cache_bytes, shards)
            if result_cache_bytes is not None
            else None
        )
        self._shard_locks = tuple(threading.Lock() for _ in range(shards))
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers if max_workers is not None else 2 * shards,
            thread_name_prefix="rsse-shard",
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the request thread pool down (idempotent)."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ClusterServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- topology ----------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return self._sharded.num_shards

    @property
    def sharded_index(self) -> ShardedIndex:
        """The hosted partitioned index."""
        return self._sharded

    @property
    def servers(self) -> tuple[CloudServer, ...]:
        """The per-shard servers, in shard order."""
        return self._servers

    @property
    def blob_store(self) -> BlobStore:
        """The hosted encrypted collection (shared across shards)."""
        return self._blobs

    # -- routing -----------------------------------------------------------

    def shard_id_for(self, request_bytes: bytes) -> int:
        """Owning shard of one request.

        Addressed requests (search, update-list) go to the shard that
        owns the address.  Blob requests carry no index address; they
        hash their file id (or id list) so blob traffic spreads across
        shard workers deterministically — the blob store itself is
        shared, so any worker can serve them.
        """
        return shard_for_address(
            routing_address(request_bytes),
            self._sharded.num_shards,
            self._sharded.shard_seed,
        )

    def _call_shard(
        self, shard: int, request_bytes: bytes, parent=None
    ) -> bytes:
        """One shard call through breaker + retry + fault injection.

        The breaker check, the call, and the outcome recording all
        happen under the shard lock, so breaker transitions are a
        deterministic function of the per-shard call sequence.  Only
        :class:`~repro.errors.TransportError` failures count against
        the breaker: a :class:`~repro.errors.ProtocolError` means the
        *request* was bad, not the shard.

        ``parent`` bridges the thread-pool boundary: pool workers pass
        the batch's root span explicitly so their ``shard.dispatch``
        spans land in the right trace tree.
        """
        with self._tracer.span(
            "shard.dispatch", parent=parent, shard=shard
        ) as span:
            with self._shard_locks[shard]:
                breaker = self._breakers[shard]
                if not breaker.allow():
                    span.set(breaker="open")
                    raise ShardDownError(
                        f"shard {shard}: circuit open "
                        f"(awaiting half-open probe)"
                    )
                if self._tracer.enabled:
                    span.set(breaker=breaker.state)
                try:
                    response = self._serving[shard].call(request_bytes)
                except TransportError:
                    breaker.record_failure()
                    raise
                breaker.record_success()
                return response

    def _call_shard_observed(
        self, shard: int, request_bytes: bytes, parent=None
    ) -> tuple[bytes, tuple[SearchObservation, ...]]:
        """:meth:`_call_shard` plus the observations the call appended.

        The capture happens under the shard lock, so the log delta is
        exactly this call's appends — the raw material the result
        cache replays into the shard log on every later hit.  Under
        fault injection a retried call may append more than one
        observation; the delta keeps them all, matching what the shard
        actually logged.
        """
        server_log = self._servers[shard].log
        with self._tracer.span(
            "shard.dispatch", parent=parent, shard=shard
        ) as span:
            with self._shard_locks[shard]:
                breaker = self._breakers[shard]
                if not breaker.allow():
                    span.set(breaker="open")
                    raise ShardDownError(
                        f"shard {shard}: circuit open "
                        f"(awaiting half-open probe)"
                    )
                if self._tracer.enabled:
                    span.set(breaker=breaker.state)
                recorded_before = server_log.total_recorded
                try:
                    response = self._serving[shard].call(request_bytes)
                except TransportError:
                    breaker.record_failure()
                    raise
                breaker.record_success()
                return response, server_log.tail(
                    server_log.total_recorded - recorded_before
                )

    def _observe_request(self, kind: str, span) -> None:
        """Count one served root request + its traced duration."""
        if self._obs is None:
            return
        self._obs.metrics.counter(
            "repro_cluster_requests_total", kind=kind
        ).inc()
        if self._tracer.enabled and span.end_s is not None:
            self._obs.metrics.histogram(
                "repro_cluster_request_seconds", kind=kind
            ).observe(span.duration_s)

    def handle(self, request_bytes: bytes) -> bytes:
        """Route one request to its owning shard and serve it.

        Safe to call from many threads at once; requests to distinct
        shards proceed in parallel, requests to the same shard are
        serialized on the shard lock.  Under an injected fault plan
        this may raise a :class:`~repro.errors.TransportError`
        subclass; use :meth:`handle_resilient` for the non-raising
        degraded contract.
        """
        kind = peek_kind(request_bytes)
        if kind == "multi-search":
            return self._handle_multi_search(request_bytes)
        if self._result_cache is not None:
            if kind == "search":
                return self._handle_search_cached(request_bytes)
            self._note_mutation(kind, request_bytes)
        shard = self.shard_id_for(request_bytes)
        with self._tracer.span("cluster.handle", shard=shard) as span:
            response = self._call_shard(shard, request_bytes)
        self._observe_request("handle", span)
        return response

    def _note_mutation(self, kind: str, request_bytes: bytes) -> None:
        """Bump result-cache epochs for one mutating request.

        Bumped on *receipt* (before the shard applies the update): a
        redundant bump only costs a refill, while a missed one would
        serve stale bytes.  ``update-list`` touches exactly one
        shard's state; blob mutations touch the shared store every
        cached response may embed, so they bump every shard.
        """
        if self._result_cache is None:
            return
        if kind == "update-list":
            self._result_cache.bump(self.shard_id_for(request_bytes))
        elif kind in ("put-blob", "remove-blob"):
            self._result_cache.bump(None)

    def _observe_result_cache(self, outcome: str) -> None:
        if self._obs is None:
            return
        self._obs.metrics.counter(
            f"repro_result_cache_{outcome}_total", layer="cluster"
        ).inc()
        if self._result_cache is not None:
            self._obs.metrics.gauge(
                "repro_result_cache_resident_bytes", layer="cluster"
            ).set(float(self._result_cache.resident_bytes))

    def _handle_search_cached(self, request_bytes: bytes) -> bytes:
        """Serve one search through the front-end result cache.

        A hit returns the stored frame and replays its observations
        into the owning shard's log (search/access-pattern exactness);
        a miss stamps the owning shard's epoch *before* dispatching,
        fills the cache, and returns the fresh frame — so a mutation
        racing the fill invalidates the entry rather than losing the
        race.
        """
        assert self._result_cache is not None
        codec = detect_codec(request_bytes)
        key = ResultCache.key_for(codec, request_bytes)
        entry = self._result_cache.get(key)
        if entry is not None:
            shard, observations = entry.payload
            server = self._servers[shard]
            for observation in observations:
                server.record_replayed_observation(observation)
            self._observe_result_cache("hits")
            if self._obs is not None:
                self._obs.metrics.counter(
                    "repro_cluster_requests_total", kind="handle"
                ).inc()
            return entry.frame
        shard = self.shard_id_for(request_bytes)
        stamps = self._result_cache.stamp((shard,))
        with self._tracer.span("cluster.handle", shard=shard) as span:
            response, captured = self._call_shard_observed(
                shard, request_bytes
            )
        self._observe_request("handle", span)
        self._result_cache.put(
            key, stamps, response, payload=(shard, captured)
        )
        self._observe_result_cache("misses")
        return response

    # -- multi-keyword fan-out ---------------------------------------------

    def _multi_fanout(
        self, request_bytes: bytes, parent=None
    ) -> tuple[bytes | None, list[tuple[int, Exception]]]:
        """Serve one multi-search across shards; never raises transport.

        A query whose terms all live on one shard is forwarded whole —
        that shard aggregates, ranks, and attaches files exactly like
        a single server.  Otherwise each owning shard gets one partial
        sub-request (all of its terms in one call) on the thread pool,
        and the coordinator merges the partial aggregates, re-ranks
        under the identical tie-break, and attaches blobs from the
        shared store.  Returns ``(response_bytes, [])`` on success or
        ``(None, [(shard, error), ...])`` when any shard fails — the
        conjunctive intersection (and the disjunctive sum) is unsound
        with a shard missing, so a lost shard fails the whole query
        rather than silently dropping its terms.
        """
        codec = detect_codec(request_bytes)
        request = MultiSearchRequest.from_bytes(request_bytes)
        sub_requests = split_multi_request(
            request, self._sharded.num_shards, self._sharded.shard_seed
        )
        if len(sub_requests) == 1:
            shard = next(iter(sub_requests))
            try:
                return (
                    self._call_shard(shard, request_bytes, parent=parent),
                    [],
                )
            except TransportError as exc:
                return None, [(shard, exc)]
        futures = {
            shard: self._executor.submit(
                self._call_shard,
                shard,
                sub_request.to_bytes(codec),
                parent,
            )
            for shard, sub_request in sorted(sub_requests.items())
        }
        partials: list[tuple[tuple[str, bytes], ...]] = []
        failures: list[tuple[int, Exception]] = []
        for shard, future in futures.items():
            try:
                partials.append(
                    MultiSearchResponse.from_bytes(future.result()).matches
                )
            except TransportError as exc:
                failures.append((shard, exc))
        if failures:
            return None, failures
        merged = merge_partial_matches(
            partials, request.mode, len(request.trapdoors)
        )
        if request.partial:
            response = MultiSearchResponse(
                matches=tuple(
                    (file_id, pack_partial_score(total, count))
                    for file_id, total, count in merged
                ),
                files=(),
            )
            return response.to_bytes(codec), []
        ranked = rank_pairs(
            [(file_id, total) for file_id, total, _ in merged],
            request.top_k,
        )
        matches = []
        payloads = []
        for file_id, total in ranked:
            # Same removed-blob tolerance as a single server.
            blob = self._blobs.get_optional(file_id)
            if blob is None:
                continue
            matches.append((file_id, pack_multi_score(total)))
            payloads.append((file_id, blob))
        response = MultiSearchResponse(
            matches=tuple(matches), files=tuple(payloads)
        )
        return response.to_bytes(codec), []

    def _handle_multi_search(
        self, request_bytes: bytes, parent=None
    ) -> bytes:
        """Raising flavour of the multi-search fan-out (handle path)."""
        with self._tracer.span(
            "cluster.multi_search", parent=parent
        ) as span:
            inner = span if self._tracer.enabled else None
            response, failures = self._multi_fanout(
                request_bytes, parent=inner
            )
            if self._tracer.enabled:
                span.set(failed_shards=len(failures))
        if failures:
            raise failures[0][1]
        assert response is not None
        self._observe_request("multi_search", span)
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_cluster_multi_requests_total",
                mode=MultiSearchRequest.from_bytes(request_bytes).mode,
            ).inc()
        return response

    def _group_by_shard(
        self, batch: Sequence[bytes]
    ) -> tuple[dict[int, list[int]], list[int]]:
        """Request positions per owning shard, in request order.

        The batch fan-out unit: one pooled task per *shard* per batch
        (not per request), amortizing thread-pool dispatch and breaker
        bookkeeping across every request a shard owns.  Multi-search
        requests have no single owning shard; their positions come
        back separately and are fanned out by the coordinator itself
        (each one already parallelizes internally across shards).
        """
        groups: dict[int, list[int]] = {}
        multi_positions: list[int] = []
        for position, request_bytes in enumerate(batch):
            if peek_kind(request_bytes) == "multi-search":
                multi_positions.append(position)
                continue
            groups.setdefault(self.shard_id_for(request_bytes), []).append(
                position
            )
        return groups, multi_positions

    def _observe_batch(self, batch_size: int, groups: int, kind: str) -> None:
        """Record one batch fan-out in the metrics registry."""
        if self._obs is None:
            return
        self._obs.metrics.histogram(
            "repro_cluster_batch_size",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
            kind=kind,
        ).observe(float(batch_size))
        self._obs.metrics.counter(
            "repro_cluster_batch_tasks_total", kind=kind
        ).inc(groups)

    def handle_many(self, requests: Iterable[bytes]) -> list[bytes]:
        """Serve a batch concurrently; responses in request order.

        The batch is grouped by owning shard and dispatched as one
        pooled task per shard: requests for distinct shards run in
        parallel, while a shard's own requests run back-to-back on one
        worker without re-queueing — the same serialization the shard
        lock would force anyway, minus the pool overhead.  Responses
        are byte-identical to per-request :meth:`handle` calls.

        If any request fails, the whole batch still executes (matching
        the per-request dispatch semantics) and the earliest-position
        exception is raised.
        """
        batch = list(requests)
        if not batch:
            return []
        if self._result_cache is not None:
            for request_bytes in batch:
                self._note_mutation(peek_kind(request_bytes), request_bytes)
        groups, multi_positions = self._group_by_shard(batch)
        self._observe_batch(
            len(batch), len(groups) + len(multi_positions), "handle_many"
        )
        responses: list[bytes | None] = [None] * len(batch)
        errors: list[tuple[int, Exception]] = []
        errors_lock = threading.Lock()

        def run_group(shard: int, positions: list[int]) -> None:
            for position in positions:
                try:
                    with self._tracer.span(
                        "cluster.handle", shard=shard
                    ) as span:
                        responses[position] = self._call_shard(
                            shard, batch[position]
                        )
                    self._observe_request("handle", span)
                except Exception as exc:
                    with errors_lock:
                        errors.append((position, exc))

        futures = [
            self._executor.submit(run_group, shard, positions)
            for shard, positions in groups.items()
        ]
        # Multi-searches run from the coordinator thread (each fans
        # its per-shard sub-requests out on the pool itself, so a
        # pooled wrapper task would just hold a worker hostage while
        # waiting on other workers).
        for position in multi_positions:
            try:
                responses[position] = self._handle_multi_search(
                    batch[position]
                )
            except Exception as exc:
                with errors_lock:
                    errors.append((position, exc))
        for future in futures:
            future.result()
        if errors:
            raise min(errors, key=lambda item: item[0])[1]
        return [response for response in responses if response is not None]

    def _try_handle(
        self, position: int, request_bytes: bytes, shard: int, parent=None
    ) -> tuple[int, bytes | None, int, str | None]:
        try:
            response = self._call_shard(shard, request_bytes, parent=parent)
            return position, response, shard, None
        except TransportError as exc:
            return position, None, shard, type(exc).__name__

    def handle_resilient(self, request_bytes: bytes) -> PartialResult:
        """Serve one request, degrading instead of raising.

        Transport failures (after the retry policy is exhausted and
        the breaker consulted) come back as a
        :class:`PartialResult` naming the missing shard — never as an
        exception.
        """
        return self.handle_many_resilient([request_bytes])

    def handle_many_resilient(
        self, requests: Iterable[bytes]
    ) -> PartialResult:
        """Serve a batch concurrently with graceful degradation.

        Every request is attempted; requests whose owning shard is
        unreachable (retries exhausted or circuit open) are reported
        in ``missing_shards``/``failures`` while the rest of the
        batch is served normally.  Responses stay in request order.
        """
        batch = list(requests)
        if self._result_cache is not None:
            for request_bytes in batch:
                self._note_mutation(peek_kind(request_bytes), request_bytes)
        with self._tracer.span(
            "cluster.handle_resilient", requests=len(batch)
        ) as root:
            # The root span is passed explicitly: pool workers run in
            # other threads, where thread-local parenting cannot see it.
            parent = root if self._tracer.enabled else None
            groups, multi_positions = self._group_by_shard(batch)
            self._observe_batch(
                len(batch),
                len(groups) + len(multi_positions),
                "handle_resilient",
            )

            def run_group(
                shard: int, positions: list[int]
            ) -> list[tuple[int, bytes | None, int, str | None]]:
                return [
                    self._try_handle(
                        position, batch[position], shard, parent=parent
                    )
                    for position in positions
                ]

            futures = [
                self._executor.submit(run_group, shard, positions)
                for shard, positions in groups.items()
            ]
            responses_by_position: dict[int, bytes | None] = {}
            failure_entries: list[tuple[int, int, str]] = []
            # Coordinator-side multi-search fan-out (see handle_many);
            # a multi that loses shards yields None at its position
            # plus one failure entry per lost shard.
            for position in multi_positions:
                response, shard_failures = self._multi_fanout(
                    batch[position], parent=parent
                )
                responses_by_position[position] = response
                failure_entries.extend(
                    (position, shard, type(exc).__name__)
                    for shard, exc in shard_failures
                )
            for future in futures:
                for position, response, shard, error in future.result():
                    responses_by_position[position] = response
                    if error is not None:
                        failure_entries.append((position, shard, error))
            failures = tuple(sorted(failure_entries))
            result = PartialResult(
                responses=tuple(
                    responses_by_position[position]
                    for position in range(len(batch))
                ),
                missing_shards=tuple(
                    sorted({shard for _, shard, _ in failures})
                ),
                failures=failures,
            )
            root.set(served=result.served, failed=len(failures))
        self._observe_request("handle_resilient", root)
        if self._obs is not None and failures:
            self._obs.metrics.counter(
                "repro_cluster_degraded_requests_total"
            ).inc(len(failures))
        return result

    # -- cache -------------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Searches answered from shard caches, cluster-wide."""
        return sum(server.cache_hits for server in self._servers)

    @property
    def result_cache(self) -> ResultCache | None:
        """The front-end encoded-response cache (None when disabled)."""
        return self._result_cache

    def invalidate_cache(self, address: bytes | None = None) -> None:
        """Drop cached decrypted lists (all shards, or one address)."""
        if address is None:
            for server in self._servers:
                server.invalidate_cache()
            if self._result_cache is not None:
                self._result_cache.bump(None)
        else:
            shard = self._sharded.shard_id(address)
            self._servers[shard].invalidate_cache(address)
            if self._result_cache is not None:
                self._result_cache.bump(shard)

    # -- observability -----------------------------------------------------

    @property
    def shard_stats(self) -> tuple[ChannelStats, ...]:
        """Per-shard traffic counters, in shard order."""
        return tuple(channel.stats for channel in self._channels)

    def total_stats(self) -> ChannelStats:
        """Cluster-wide traffic counters (merged across shards).

        Merging snapshots each shard's stats atomically, so sampling
        a live cluster never sums a torn per-shard view.
        """
        return ChannelStats.merged(self.shard_stats)

    @property
    def shard_health(self) -> tuple[BreakerSnapshot, ...]:
        """Per-shard circuit-breaker views, in shard order."""
        return tuple(breaker.snapshot() for breaker in self._breakers)

    def publish_breaker_gauges(self) -> None:
        """Refresh ``repro_net_breaker_state{worker=...}`` gauges.

        The same series the networked front end publishes
        (:meth:`repro.cloud.netserve.NetServer.scrape`), so one
        dashboard watches breaker health across both deployment
        shapes.  Published at scrape time — the breakers hold the
        authoritative state; a per-call mirror would just be a second
        copy to keep coherent.  No-op without an obs bundle.
        """
        if self._obs is None:
            return
        for shard, breaker in enumerate(self._breakers):
            snapshot = breaker.snapshot()
            self._obs.metrics.gauge(
                "repro_net_breaker_state", worker=str(shard)
            ).set(BREAKER_STATE_VALUES[snapshot.state])

    def scrape(self) -> str:
        """Prometheus exposition text for this in-process cluster.

        Parity with :meth:`repro.cloud.netserve.NetServer.scrape`:
        breaker-state gauges and per-shard channel-traffic gauges are
        refreshed first, so the text covers serving counters, breaker
        health, and wire bytes in one scrape.  Raises
        :class:`~repro.errors.ParameterError` when the cluster runs
        with observability disabled.
        """
        if self._obs is None:
            raise ParameterError(
                "observability is disabled on this cluster (obs=None)"
            )
        self.publish_breaker_gauges()
        for shard, stats in enumerate(self.shard_stats):
            stats.publish(self._obs.metrics, channel=str(shard))
        return render_prometheus(self._obs.metrics.snapshot())

    @property
    def fault_stats(self) -> tuple[FaultStats, ...] | None:
        """Per-shard injected-fault counters (None without a plan)."""
        if self._faulty_channels is None:
            return None
        return tuple(
            channel.fault_stats for channel in self._faulty_channels
        )

    @property
    def retrying_channels(self) -> tuple[RetryingChannel, ...] | None:
        """Per-shard retry wrappers (None without a policy).

        Exposes the per-call attempt traces the determinism suites
        compare run-to-run.
        """
        return self._retrying_channels

    @property
    def logs(self) -> tuple[ServerLog, ...]:
        """Per-shard curious-server logs, in shard order."""
        return tuple(server.log for server in self._servers)

    def search_pattern(self) -> dict[bytes, int]:
        """Cluster-wide search pattern (merged across shard logs)."""
        pattern: Counter[bytes] = Counter()
        for log in self.logs:
            pattern.update(log.search_pattern())
        return dict(pattern)
