"""The honest-but-curious cloud server.

Hosts the secure index and the encrypted file collection, and executes
searches exactly as the protocol prescribes (honest) while recording
everything it observes (curious): which index address was queried, how
often, which files matched, and the protected score fields — the raw
material for the leakage analysis in :mod:`repro.analysis.leakage` and
the reverse-engineering attack of :mod:`repro.analysis.attacks`.

The server never holds any key except the per-list keys ``f_y(w)``
embedded in trapdoors it receives, so its capabilities are exactly the
paper's threat model.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.cloud.cache import DEFAULT_CACHE_CAPACITY, LruCache
from repro.cloud.protocol import (
    FileRequest,
    RankedFilesResponse,
    SearchRequest,
    SearchResponse,
    peek_kind,
)
from repro.cloud.storage import BlobStore
from repro.core.results import ServerMatch
from repro.core.secure_index import SecureIndex, decrypt_posting_list
from repro.core.trapdoor import Trapdoor
from repro.errors import ProtocolError
from repro.ir.topk import rank_all, top_k
from repro.obs.trace import NOOP_TRACER


@dataclass(frozen=True)
class SearchObservation:
    """Everything the curious server wrote down about one search.

    Attributes
    ----------
    address:
        The queried index address (search pattern: equal addresses mean
        equal keywords).
    matched_file_ids:
        The access pattern — which files were touched.
    score_fields:
        The protected score field of every match (OPM values in the
        efficient scheme: the attack surface of Fig. 4 / Fig. 6).
    returned_file_ids:
        What was actually sent back (for top-k, a strict subset — the
        extra "requested files outrank the rest" leakage of the basic
        two-round protocol shows up here too).
    """

    address: bytes
    matched_file_ids: tuple[str, ...]
    score_fields: tuple[bytes, ...]
    returned_file_ids: tuple[str, ...]


@dataclass
class ServerLog:
    """The curious server's accumulating notebook."""

    observations: list[SearchObservation] = field(default_factory=list)

    def search_pattern(self) -> dict[bytes, int]:
        """Address -> times queried (the search pattern)."""
        pattern: dict[bytes, int] = {}
        for observation in self.observations:
            pattern[observation.address] = (
                pattern.get(observation.address, 0) + 1
            )
        return pattern

    def access_pattern(self) -> dict[bytes, tuple[str, ...]]:
        """Address -> matched files (the access pattern)."""
        return {
            observation.address: observation.matched_file_ids
            for observation in self.observations
        }


class CloudServer:
    """The cloud server ``CS`` of Fig. 1.

    One ``CloudServer`` processes one request at a time: :meth:`handle`
    takes an internal lock, so concurrent callers are safe but
    serialized.  The unit of parallelism is the *server* — the sharded
    front end (:class:`repro.cloud.cluster.ClusterServer`) runs one of
    these per shard to serve searches concurrently.

    Parameters
    ----------
    secure_index:
        The outsourced index ``I``.
    blob_store:
        The encrypted collection ``C``.
    can_rank:
        True for the efficient scheme (score fields are OPM values and
        numeric order is relevance order); False for the basic scheme,
        where the server returns matches in index order because score
        fields are semantically secure ciphertexts.
    cache_searches:
        Memoize decrypted posting lists per queried address (the search
        pattern the scheme already leaks) in a bounded LRU cache.
    cache_capacity:
        Maximum decrypted lists resident when caching is enabled.
    obs:
        Optional :class:`repro.obs.Obs` bundle.  When set, every
        handled request runs under a ``server.handle`` span (with
        per-phase child spans for trapdoor parsing, posting-list
        decryption, and ranking), searches append to the replayable
        leakage-event stream, and headline counters mirror into the
        metrics registry.  ``None`` (the default) keeps the whole path
        on the shared no-op tracer.
    """

    def __init__(
        self,
        secure_index: SecureIndex,
        blob_store: BlobStore,
        can_rank: bool,
        cache_searches: bool = False,
        update_token: bytes | None = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        obs=None,
    ):
        self._index = secure_index
        self._blobs = blob_store
        self._can_rank = can_rank
        self._log = ServerLog()
        self._cache: LruCache | None = (
            LruCache(cache_capacity) if cache_searches else None
        )
        self._update_token = update_token
        self._lock = threading.RLock()
        self._obs = obs
        self._tracer = obs.tracer if obs is not None else NOOP_TRACER

    @property
    def log(self) -> ServerLog:
        """The curious server's observation log."""
        return self._log

    @property
    def secure_index(self) -> SecureIndex:
        """The hosted index (the server owns this data)."""
        return self._index

    @property
    def blob_store(self) -> BlobStore:
        """The hosted encrypted collection."""
        return self._blobs

    # -- protocol handling -------------------------------------------------

    def handle(self, request_bytes: bytes) -> bytes:
        """Transport entry point: dispatch one request, return response.

        Serialized on the server's lock: this server is a one-worker
        service, safe (but not parallel) under concurrent callers.
        """
        kind = peek_kind(request_bytes)
        with self._tracer.span("server.handle", kind=kind):
            with self._lock:
                if kind == "search":
                    return self._handle_search(
                        SearchRequest.from_bytes(request_bytes)
                    ).to_bytes()
                if kind == "fetch":
                    return self._handle_fetch(
                        FileRequest.from_bytes(request_bytes)
                    ).to_bytes()
                if kind in ("update-list", "put-blob", "remove-blob"):
                    response = self._handle_update(kind, request_bytes)
                    if self._obs is not None:
                        self._obs.metrics.counter(
                            "repro_server_updates_total", kind=kind
                        ).inc()
                    return response.to_bytes()
        raise ProtocolError(f"unknown request kind {kind!r}")

    def _handle_update(self, kind: str, request_bytes: bytes):
        """Apply one authenticated update, idempotently.

        Every update is safe to re-send: a retry layer that lost a
        response (e.g. corrupted in flight) re-executes the request,
        so appends skip entries already present (exact-duplicate
        detection is sound because entry encryption is deterministic),
        a re-put of an identical blob acks, and removing an absent
        blob acks.  Conflicting re-puts are still an error — that is
        a protocol violation, not a retry.
        """
        from repro.cloud.updates import (
            AckResponse,
            PutBlobRequest,
            RemoveBlobRequest,
            UpdateListRequest,
            check_token,
        )

        if kind == "update-list":
            request = UpdateListRequest.from_bytes(request_bytes)
            check_token(self._update_token, request.token)
            existing = self._index.lookup(request.address)
            if request.mode == "append":
                if existing is None:
                    self._index.add_list(
                        request.address, list(request.entries)
                    )
                else:
                    present = set(existing)
                    fresh = [
                        entry
                        for entry in request.entries
                        if entry not in present
                    ]
                    if not fresh:
                        return AckResponse(
                            ok=True, detail="already applied"
                        )
                    self._index.replace_list(
                        request.address, existing + fresh
                    )
            else:  # replace
                if existing is None:
                    raise ProtocolError(
                        "cannot replace a posting list that does not exist"
                    )
                self._index.replace_list(
                    request.address, list(request.entries)
                )
            self.invalidate_cache(request.address)
            return AckResponse(ok=True)
        if kind == "put-blob":
            put = PutBlobRequest.from_bytes(request_bytes)
            check_token(self._update_token, put.token)
            stored = self._blobs.get_optional(put.file_id)
            if stored is not None:
                if stored == put.blob:
                    return AckResponse(ok=True, detail="already stored")
                raise ProtocolError(
                    f"blob {put.file_id!r} already stored with "
                    "different contents"
                )
            self._blobs.put(put.file_id, put.blob)
            return AckResponse(ok=True)
        remove = RemoveBlobRequest.from_bytes(request_bytes)
        check_token(self._update_token, remove.token)
        if remove.file_id not in self._blobs:
            return AckResponse(ok=True, detail="already removed")
        self._blobs.delete(remove.file_id)
        return AckResponse(ok=True)

    @property
    def cache_hits(self) -> int:
        """Searches answered from the decrypted-list cache."""
        return self._cache.hits if self._cache is not None else 0

    @property
    def cache(self) -> LruCache | None:
        """The bounded decrypted-list cache (None when disabled)."""
        return self._cache

    def invalidate_cache(self, address: bytes | None = None) -> None:
        """Drop cached decrypted lists (all, or one address).

        An owner pushing index updates must call this (or deploy with
        ``cache_searches=False``); the update protocol of
        :mod:`repro.cloud.updates` does it on every list it touches,
        and the simulated deployment gives the owner a direct handle
        too.
        """
        if self._cache is None:
            return
        if address is None:
            self._cache.clear()
        else:
            self._cache.pop(address)

    def _matches_for(self, trapdoor: Trapdoor) -> list[ServerMatch]:
        """``SearchIndex``: locate, decrypt, drop dummies.

        With caching enabled, repeated trapdoors (the *search pattern*
        the scheme already reveals) reuse the decrypted list: the
        per-entry decryption work is paid once per keyword, not once
        per query — a legitimate optimization because it consumes only
        information the protocol leaks anyway.  The cache is a bounded
        LRU (:class:`~repro.cloud.cache.LruCache`): cold keywords are
        evicted and simply re-decrypted on their next query.
        """
        if self._cache is not None:
            cached = self._cache.get(trapdoor.address)
            if cached is not None:
                return cached
        entries = self._index.lookup(trapdoor.address)
        if entries is None:
            matches: list[ServerMatch] = []
        else:
            matches = [
                ServerMatch(file_id=file_id, score_field=score_field)
                for file_id, score_field in decrypt_posting_list(
                    self._index.layout, trapdoor.list_key, entries
                )
            ]
        if self._cache is not None:
            self._cache.put(trapdoor.address, matches)
        return matches

    def _handle_search(self, request: SearchRequest) -> SearchResponse:
        with self._tracer.span("search.trapdoor"):
            trapdoor = Trapdoor.deserialize(request.trapdoor_bytes)
        hits_before = self.cache_hits
        with self._tracer.span("search.postings") as span:
            matches = self._matches_for(trapdoor)
            span.set(
                postings=len(matches),
                cache_hit=self.cache_hits > hits_before,
            )

        rank_counters: dict[str, int] | None = (
            {} if self._tracer.enabled else None
        )
        with self._tracer.span(
            "search.rank",
            can_rank=self._can_rank,
            k=request.top_k,
        ) as span:
            if self._can_rank:
                ordered = rank_all(
                    matches,
                    key=lambda match: match.opm_value(),
                    counters=rank_counters,
                )
                if request.top_k is not None:
                    ordered = top_k(
                        matches,
                        request.top_k,
                        key=lambda match: match.opm_value(),
                        counters=rank_counters,
                    )
            else:
                # Semantically secure score fields: no server-side
                # ranking possible; a top-k bound cannot be honoured
                # meaningfully.
                ordered = list(matches)
            if rank_counters:
                span.set(**rank_counters)

        with self._tracer.span("search.files") as span:
            if request.entries_only:
                returned: list[ServerMatch] = []
                files: tuple[tuple[str, bytes], ...] = ()
            else:
                # Tolerate a file removed between the index read and
                # the blob fetch (concurrent owner updates): dropping
                # it from both lists yields exactly the post-removal
                # response instead of a torn one.
                returned = []
                payloads = []
                for match in ordered:
                    blob = self._blobs.get_optional(match.file_id)
                    if blob is None:
                        continue
                    returned.append(match)
                    payloads.append((match.file_id, blob))
                ordered = returned
                files = tuple(payloads)
            span.set(files=len(files))

        self._log.observations.append(
            SearchObservation(
                address=trapdoor.address,
                matched_file_ids=tuple(match.file_id for match in matches),
                score_fields=tuple(match.score_field for match in matches),
                returned_file_ids=tuple(match.file_id for match in returned),
            )
        )
        if self._obs is not None:
            current = self._tracer.current()
            self._obs.leakage.record(
                trapdoor.address,
                matched_file_ids=tuple(
                    match.file_id for match in matches
                ),
                returned_file_ids=tuple(
                    match.file_id for match in returned
                ),
                trace_id=current.trace_id if current is not None else 0,
            )
            self._obs.metrics.counter("repro_server_searches_total").inc()
            self._obs.metrics.histogram(
                "repro_server_postings_scanned",
                buckets=(1.0, 10.0, 100.0, 1000.0, 10000.0),
            ).observe(float(len(matches)))
        response_matches = tuple(
            (match.file_id, match.score_field) for match in ordered
        )
        return SearchResponse(matches=response_matches, files=files)

    def _handle_fetch(self, request: FileRequest) -> RankedFilesResponse:
        """Second round of the basic top-k protocol.

        The server learns that the requested files outrank the
        unrequested ones — the extra leakage Section III-C points out;
        it lands in the log as ``returned_file_ids`` of a fresh
        observation tied to no address.
        """
        files = tuple(
            (file_id, self._blobs.get(file_id)) for file_id in request.file_ids
        )
        self._log.observations.append(
            SearchObservation(
                address=b"",
                matched_file_ids=(),
                score_fields=(),
                returned_file_ids=tuple(request.file_ids),
            )
        )
        return RankedFilesResponse(files=files)
