"""The honest-but-curious cloud server.

Hosts the secure index and the encrypted file collection, and executes
searches exactly as the protocol prescribes (honest) while recording
everything it observes (curious): which index address was queried, how
often, which files matched, and the protected score fields — the raw
material for the leakage analysis in :mod:`repro.analysis.leakage` and
the reverse-engineering attack of :mod:`repro.analysis.attacks`.

The server never holds any key except the per-list keys ``f_y(w)``
embedded in trapdoors it receives, so its capabilities are exactly the
paper's threat model.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import MutableSequence

from repro.cloud.cache import DEFAULT_CACHE_CAPACITY, LruCache
from repro.cloud.protocol import (
    CODEC_BINARY,
    MODE_CONJUNCTIVE,
    FileRequest,
    MultiSearchRequest,
    MultiSearchResponse,
    ObservedRequest,
    ObservedResponse,
    ObsSnapshotRequest,
    ObsSnapshotResponse,
    RankedFilesResponse,
    SearchRequest,
    SearchResponse,
    TracedRequest,
    detect_codec,
    pack_multi_score,
    pack_partial_score,
    peek_kind,
)
from repro.cloud.storage import BlobStore
from repro.core.results import ServerMatch
from repro.core.secure_index import SecureIndex, decrypt_posting_list
from repro.core.trapdoor import Trapdoor
from repro.errors import ParameterError, ProtocolError
from repro.ir.topk import (
    intersect_sums,
    rank_all,
    rank_pairs,
    top_k,
    top_of_ranked,
    union_sums,
)
from repro.obs.export import export_jsonl
from repro.obs.trace import NOOP_TRACER, RemoteParent, Span


@dataclass(frozen=True)
class SearchObservation:
    """Everything the curious server wrote down about one search.

    Attributes
    ----------
    address:
        The queried index address (search pattern: equal addresses mean
        equal keywords).
    matched_file_ids:
        The access pattern — which files were touched.
    score_fields:
        The protected score field of every match (OPM values in the
        efficient scheme: the attack surface of Fig. 4 / Fig. 6).
    returned_file_ids:
        What was actually sent back (for top-k, a strict subset — the
        extra "requested files outrank the rest" leakage of the basic
        two-round protocol shows up here too).
    """

    address: bytes
    matched_file_ids: tuple[str, ...]
    score_fields: tuple[bytes, ...]
    returned_file_ids: tuple[str, ...]


@dataclass
class ServerLog:
    """The curious server's accumulating notebook.

    By default every observation is kept forever — leakage analysis
    needs the full history.  For million-query benchmark runs pass
    ``max_observations`` to keep only the most recent window (a
    ``deque(maxlen=...)``); the running :meth:`search_pattern` counter
    still covers *all* observations ever recorded through
    :meth:`record`, so pattern accounting stays exact even when old
    observations have been dropped.
    """

    observations: MutableSequence[SearchObservation] = field(
        default_factory=list
    )
    max_observations: int | None = None

    def __post_init__(self) -> None:
        if self.max_observations is not None:
            if self.max_observations < 1:
                raise ParameterError(
                    "max_observations must be >= 1, got "
                    f"{self.max_observations}"
                )
            self.observations = deque(
                self.observations, maxlen=self.max_observations
            )
        self._pattern: Counter[bytes] = Counter(
            observation.address for observation in self.observations
        )
        self._recorded = len(self.observations)

    def record(self, observation: SearchObservation) -> None:
        """Append one observation, keeping the pattern counter exact."""
        self.observations.append(observation)
        self._pattern[observation.address] += 1
        self._recorded += 1

    @property
    def total_recorded(self) -> int:
        """Lifetime observations recorded (monotone; survives bounded
        logs dropping old entries, so callers can count appends by
        differencing)."""
        return self._recorded

    def tail(self, count: int) -> tuple[SearchObservation, ...]:
        """The most recent ``count`` retained observations, in order."""
        if count <= 0:
            return ()
        observations = self.observations
        count = min(count, len(observations))
        if isinstance(observations, deque):
            start = len(observations) - count
            return tuple(
                itertools.islice(observations, start, len(observations))
            )
        return tuple(observations[-count:])

    def search_pattern(self) -> dict[bytes, int]:
        """Address -> times queried (the search pattern).

        Unbounded logs answer with one :class:`collections.Counter`
        sweep of ``observations`` (so direct appends — the
        leakage-analysis idiom — are always counted).  Bounded logs
        answer from the running counter maintained by :meth:`record`,
        which is exact across the full history even after old
        observations fall out of the window.
        """
        if self.max_observations is None:
            return dict(
                Counter(
                    observation.address
                    for observation in self.observations
                )
            )
        return dict(self._pattern)

    def access_pattern(self) -> dict[bytes, tuple[str, ...]]:
        """Address -> matched files (the access pattern)."""
        return {
            observation.address: observation.matched_file_ids
            for observation in self.observations
        }


@dataclass(frozen=True)
class CachedPostings:
    """One decrypted posting list, as the warm cache stores it.

    ``matches`` keeps index order (what the curious server logs, and
    what the basic scheme returns).  ``ranked`` is the same matches
    pre-sorted by descending OPM value — built once at cache-fill time
    so every OPM score field is decoded to an int exactly once, and a
    warm top-k query is an O(k) slice.  Pre-sorting is a legitimate
    optimization: numeric order of the score fields is exactly what
    the one-to-many OPM already leaks to the server, so the cache
    stores nothing the server could not always compute.  ``ranked`` is
    ``None`` for the basic scheme (``can_rank=False``: score fields
    are semantically secure, the server cannot sort them).
    """

    matches: tuple[ServerMatch, ...]
    ranked: tuple[ServerMatch, ...] | None
    #: ``file_id -> decoded OPM value``, built at fill time alongside
    #: ``ranked`` so a warm multi-keyword aggregation probes a dict
    #: instead of re-decoding score fields.  ``None`` when the server
    #: cannot rank or caching is off.
    by_file: dict[str, int] | None = None


class CloudServer:
    """The cloud server ``CS`` of Fig. 1.

    One ``CloudServer`` processes one request at a time: :meth:`handle`
    takes an internal lock, so concurrent callers are safe but
    serialized.  The unit of parallelism is the *server* — the sharded
    front end (:class:`repro.cloud.cluster.ClusterServer`) runs one of
    these per shard to serve searches concurrently.

    Parameters
    ----------
    secure_index:
        The outsourced index ``I`` — an in-memory
        :class:`SecureIndex` or any object with the same server-side
        surface (``layout`` / ``padded_length`` / ``lookup`` /
        ``add_list`` / ``replace_list`` / ``items`` / ``num_lists`` /
        ``size_bytes``), e.g. a lazy ``mmap``-backed
        :class:`~repro.cloud.store.PackedStore` whose cold lookups
        touch only the queried posting block before feeding the same
        ranked warm cache.
    blob_store:
        The encrypted collection ``C``.
    can_rank:
        True for the efficient scheme (score fields are OPM values and
        numeric order is relevance order); False for the basic scheme,
        where the server returns matches in index order because score
        fields are semantically secure ciphertexts.
    cache_searches:
        Memoize decrypted posting lists per queried address (the search
        pattern the scheme already leaks) in a bounded LRU cache.
    cache_capacity:
        Maximum decrypted lists resident when caching is enabled.
    result_cache_bytes:
        Optional byte budget for a memo of fully-encoded
        ``SearchResponse`` frames keyed by ``(codec, request-frame
        digest)`` — i.e. per ``(trapdoor, k, codec)``, since trapdoor
        generation is deterministic.  A memo hit skips decode, rank
        *and* re-encode while still recording the search in the
        observation log and leakage stream (the cache must never blind
        the curious server).  ``None`` (the default) disables the memo.
    log_capacity:
        Optional bound on the curious server's observation log (see
        :class:`ServerLog`).  ``None`` (the default) keeps the full
        history for leakage analysis.
    obs:
        Optional :class:`repro.obs.Obs` bundle.  When set, every
        handled request runs under a ``server.handle`` span (with
        per-phase child spans for trapdoor parsing, posting-list
        decryption, and ranking), searches append to the replayable
        leakage-event stream, and headline counters mirror into the
        metrics registry.  ``None`` (the default) keeps the whole path
        on the shared no-op tracer.
    """

    def __init__(
        self,
        secure_index: SecureIndex,
        blob_store: BlobStore,
        can_rank: bool,
        cache_searches: bool = False,
        update_token: bytes | None = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        obs=None,
        log_capacity: int | None = None,
        result_cache_bytes: int | None = None,
    ):
        self._index = secure_index
        self._blobs = blob_store
        self._can_rank = can_rank
        self._log = ServerLog(max_observations=log_capacity)
        self._cache: LruCache | None = (
            LruCache(cache_capacity) if cache_searches else None
        )
        self._response_memo: LruCache | None = (
            LruCache(
                capacity=None,
                capacity_bytes=result_cache_bytes,
                size_of=lambda entry: len(entry[0]),
            )
            if result_cache_bytes is not None
            else None
        )
        self._memo_keys_by_address: dict[bytes, set[tuple[str, bytes]]] = {}
        self._update_token = update_token
        self._lock = threading.RLock()
        self._obs = obs
        self._tracer = obs.tracer if obs is not None else NOOP_TRACER

    @property
    def log(self) -> ServerLog:
        """The curious server's observation log."""
        return self._log

    @property
    def secure_index(self) -> SecureIndex:
        """The hosted index (the server owns this data)."""
        return self._index

    @property
    def blob_store(self) -> BlobStore:
        """The hosted encrypted collection."""
        return self._blobs

    # -- protocol handling -------------------------------------------------

    def handle(self, request_bytes: bytes) -> bytes:
        """Transport entry point: dispatch one request, return response.

        Serialized on the server's lock: this server is a one-worker
        service, safe (but not parallel) under concurrent callers.

        The response mirrors the request's wire codec: a binary-framed
        request gets a binary-framed response, a JSON request a JSON
        one, so clients never need to negotiate.

        A request may arrive wrapped in a
        :class:`~repro.cloud.protocol.TracedRequest` envelope carrying
        the caller's trace context; the envelope is unwrapped
        unconditionally (so enabling tracing on either side never
        changes response bytes), and when this server's tracer is live
        the ``server.handle`` span adopts the remote caller's span as
        its parent — one stitched tree per query across the process
        boundary.  ``obs-snapshot`` requests are answered outside the
        span and metric instrumentation entirely: a telemetry scrape
        observes the server without perturbing what it observes.
        """
        kind = peek_kind(request_bytes)
        parent: RemoteParent | None = None
        if kind == "traced":
            envelope = TracedRequest.from_bytes(request_bytes)
            request_bytes = envelope.payload
            kind = peek_kind(request_bytes)
            if self._tracer.enabled:
                parent = RemoteParent(
                    envelope.trace_id, envelope.span_id
                )
        observe = False
        if kind == "observed":
            request_bytes = ObservedRequest.from_bytes(request_bytes).payload
            kind = peek_kind(request_bytes)
            observe = True
        codec = detect_codec(request_bytes)
        if kind == "obs-snapshot":
            ObsSnapshotRequest.from_bytes(request_bytes)
            return self._handle_obs_snapshot().to_bytes(codec)
        with self._tracer.span("server.handle", parent=parent, kind=kind):
            with self._lock:
                recorded_before = self._log.total_recorded
                response_bytes = self._dispatch_locked(
                    kind, request_bytes, codec
                )
                if response_bytes is not None:
                    if observe:
                        return ObservedResponse(
                            payload=response_bytes,
                            observations=self._captured_observations(
                                self._log.total_recorded - recorded_before
                            ),
                        ).to_bytes(CODEC_BINARY)
                    return response_bytes
        raise ProtocolError(f"unknown request kind {kind!r}")

    def _dispatch_locked(
        self, kind: str, request_bytes: bytes, codec: str
    ) -> bytes | None:
        """Serve one unwrapped request (caller holds the lock and span)."""
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_server_requests_total", codec=codec
            ).inc()
        if kind == "search":
            request = SearchRequest.from_bytes(request_bytes)
            if self._response_memo is not None:
                return self._memoized_search(request, request_bytes, codec)
            return self._handle_search(request).to_bytes(codec)
        if kind == "multi-search":
            return self._handle_multi_search(
                MultiSearchRequest.from_bytes(request_bytes)
            ).to_bytes(codec)
        if kind == "fetch":
            return self._handle_fetch(
                FileRequest.from_bytes(request_bytes)
            ).to_bytes(codec)
        if kind in ("update-list", "put-blob", "remove-blob"):
            response = self._handle_update(kind, request_bytes)
            if self._obs is not None:
                self._obs.metrics.counter(
                    "repro_server_updates_total", kind=kind
                ).inc()
            return response.to_bytes(codec)
        return None

    def _captured_observations(
        self, appended: int
    ) -> tuple[tuple[bytes, tuple[str, ...], tuple[str, ...]], ...]:
        """Wire form of the observations the current dispatch appended.

        Score fields are deliberately excluded: the leakage-event
        stream the front end replays into never carries them.
        """
        return tuple(
            (
                observation.address,
                observation.matched_file_ids,
                observation.returned_file_ids,
            )
            for observation in self._log.tail(appended)
        )

    def _handle_update(self, kind: str, request_bytes: bytes):
        """Apply one authenticated update, idempotently.

        Every update is safe to re-send: a retry layer that lost a
        response (e.g. corrupted in flight) re-executes the request,
        so appends skip entries already present (exact-duplicate
        detection is sound because entry encryption is deterministic),
        a re-put of an identical blob acks, and removing an absent
        blob acks.  Conflicting re-puts are still an error — that is
        a protocol violation, not a retry.
        """
        from repro.cloud.updates import (
            AckResponse,
            PutBlobRequest,
            RemoveBlobRequest,
            UpdateListRequest,
            check_token,
        )

        if kind == "update-list":
            request = UpdateListRequest.from_bytes(request_bytes)
            check_token(self._update_token, request.token)
            existing = self._index.lookup(request.address)
            if request.mode == "append":
                if existing is None:
                    self._index.add_list(
                        request.address, list(request.entries)
                    )
                else:
                    present = set(existing)
                    fresh = [
                        entry
                        for entry in request.entries
                        if entry not in present
                    ]
                    if not fresh:
                        return AckResponse(
                            ok=True, detail="already applied"
                        )
                    self._index.replace_list(
                        request.address, existing + fresh
                    )
            else:  # replace
                if existing is None:
                    raise ProtocolError(
                        "cannot replace a posting list that does not exist"
                    )
                self._index.replace_list(
                    request.address, list(request.entries)
                )
            self.invalidate_cache(request.address)
            return AckResponse(ok=True)
        if kind == "put-blob":
            put = PutBlobRequest.from_bytes(request_bytes)
            check_token(self._update_token, put.token)
            stored = self._blobs.get_optional(put.file_id)
            if stored is not None:
                if stored == put.blob:
                    return AckResponse(ok=True, detail="already stored")
                raise ProtocolError(
                    f"blob {put.file_id!r} already stored with "
                    "different contents"
                )
            self._blobs.put(put.file_id, put.blob)
            # Any memoized response may embed (or have skipped) this
            # blob; there is no per-blob reverse map, so drop them all.
            self._clear_response_memo()
            return AckResponse(ok=True)
        remove = RemoveBlobRequest.from_bytes(request_bytes)
        check_token(self._update_token, remove.token)
        if remove.file_id not in self._blobs:
            return AckResponse(ok=True, detail="already removed")
        self._blobs.delete(remove.file_id)
        self._clear_response_memo()
        return AckResponse(ok=True)

    def _handle_obs_snapshot(self) -> ObsSnapshotResponse:
        """Ship this server's telemetry (spans, metrics, leakage, slow).

        Runs outside the request span and counters so back-to-back
        scrapes are byte-identical; a server without an obs bundle
        answers with the minimal (header-only) artifact rather than an
        error, so a mixed deployment still scrapes cleanly.
        """
        with self._lock:
            if self._obs is None:
                artifact = export_jsonl()
            else:
                artifact = self._obs.export_jsonl()
        return ObsSnapshotResponse(artifact=artifact.encode("utf-8"))

    def _record_slow(
        self,
        kind: str,
        phase_spans: tuple[tuple[str, Span], ...],
    ) -> None:
        """Feed one served query's phase spans to the slow-query log.

        Phase durations come straight from the handler's own spans
        (decode -> postings -> aggregate/rank -> respond), so a kept
        entry arrives already attributed; with tracing off the spans
        are no-ops and nothing is recorded.
        """
        if self._obs is None or not self._tracer.enabled:
            return
        current = self._tracer.current()
        self._obs.slowlog.record(
            kind,
            current.trace_id if current is not None else 0,
            tuple(
                (name, span.duration_s) for name, span in phase_spans
            ),
        )

    @property
    def cache_hits(self) -> int:
        """Searches answered from the decrypted-list cache."""
        return self._cache.hits if self._cache is not None else 0

    @property
    def cache(self) -> LruCache | None:
        """The bounded decrypted-list cache (None when disabled)."""
        return self._cache

    @property
    def result_cache(self) -> LruCache | None:
        """The encoded-response memo (None when disabled)."""
        return self._response_memo

    def invalidate_cache(self, address: bytes | None = None) -> None:
        """Drop cached decrypted lists and memoized responses.

        An owner pushing index updates must call this (or deploy with
        ``cache_searches=False``); the update protocol of
        :mod:`repro.cloud.updates` does it on every list it touches,
        and the simulated deployment gives the owner a direct handle
        too.  With an address, only that posting list and the response
        frames built from it are dropped; without one, everything goes.
        """
        with self._lock:
            if address is None:
                if self._cache is not None:
                    self._cache.clear()
                self._clear_response_memo()
                return
            if self._cache is not None:
                self._cache.pop(address)
            if self._response_memo is not None:
                for key in self._memo_keys_by_address.pop(address, ()):
                    self._response_memo.pop(key)

    def _clear_response_memo(self) -> None:
        if self._response_memo is None:
            return
        self._response_memo.clear()
        self._memo_keys_by_address.clear()

    def record_replayed_observation(
        self, observation: SearchObservation
    ) -> None:
        """Log one search served from a cache in front of this server.

        The cluster's result cache answers repeat queries without
        touching the owning shard, yet the shard's curious-server log
        must still count every logical search (search- and
        access-pattern exactness is a correctness property of the
        leakage analysis).  The front end replays the stored
        observation here on every hit.
        """
        with self._lock:
            self._log.record(observation)
            if self._obs is not None:
                self._obs.leakage.record(
                    observation.address,
                    matched_file_ids=observation.matched_file_ids,
                    returned_file_ids=observation.returned_file_ids,
                )
                self._obs.metrics.counter(
                    "repro_server_searches_total"
                ).inc()

    def _memoized_search(
        self, request: SearchRequest, request_bytes: bytes, codec: str
    ) -> bytes:
        """Serve one search through the encoded-response memo.

        The key digests the raw request frame, which covers trapdoor,
        top-k bound, entries-only flag *and* codec framing — any two
        byte-identical frames are the same logical query and get the
        byte-identical response.  A hit still records the observation
        and leakage event the uncached execution would have produced
        (stored alongside the frame at fill time), so the memo speeds
        up the curious server without blinding it.
        """
        key = (
            codec,
            hashlib.blake2b(request_bytes, digest_size=16).digest(),
        )
        assert self._response_memo is not None
        with self._tracer.span("search.cache") as cache_span:
            memoized = self._response_memo.get(key)
        if memoized is not None:
            response_bytes, observation = memoized
            self._log.record(observation)
            if self._obs is not None:
                current = self._tracer.current()
                self._obs.leakage.record(
                    observation.address,
                    matched_file_ids=observation.matched_file_ids,
                    returned_file_ids=observation.returned_file_ids,
                    trace_id=(
                        current.trace_id if current is not None else 0
                    ),
                )
                self._obs.metrics.counter(
                    "repro_server_searches_total"
                ).inc()
                self._obs.metrics.histogram(
                    "repro_server_postings_scanned",
                    buckets=(1.0, 10.0, 100.0, 1000.0, 10000.0),
                ).observe(float(len(observation.matched_file_ids)))
                self._obs.metrics.counter(
                    "repro_result_cache_hits_total", layer="server"
                ).inc()
            self._record_slow("search", (("cache", cache_span),))
            return response_bytes
        response_bytes = self._handle_search(request).to_bytes(codec)
        observation = self._log.observations[-1]
        self._response_memo.put(key, (response_bytes, observation))
        self._memo_keys_by_address.setdefault(
            observation.address, set()
        ).add(key)
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_result_cache_misses_total", layer="server"
            ).inc()
            self._obs.metrics.gauge(
                "repro_result_cache_resident_bytes", layer="server"
            ).set(float(self._response_memo.resident_bytes))
        return response_bytes

    def _postings_for(self, trapdoor: Trapdoor) -> CachedPostings:
        """``SearchIndex``: locate, decrypt, drop dummies.

        With caching enabled, repeated trapdoors (the *search pattern*
        the scheme already reveals) reuse the decrypted list: the
        per-entry decryption work is paid once per keyword, not once
        per query — a legitimate optimization because it consumes only
        information the protocol leaks anyway.  The cache is a bounded
        LRU (:class:`~repro.cloud.cache.LruCache`): cold keywords are
        evicted and simply re-decrypted on their next query.

        In the efficient scheme the cache additionally stores the list
        pre-sorted by descending OPM value (see
        :class:`CachedPostings`): the sort and every score-field
        decode happen once at fill time, and warm top-k queries are an
        O(k) slice.
        """
        if self._cache is not None:
            cached = self._cache.get(trapdoor.address)
            if cached is not None:
                return cached
        entries = self._index.lookup(trapdoor.address)
        if entries is None:
            matches: tuple[ServerMatch, ...] = ()
        else:
            matches = tuple(
                ServerMatch(file_id=file_id, score_field=score_field)
                for file_id, score_field in decrypt_posting_list(
                    self._index.layout, trapdoor.list_key, entries
                )
            )
        ranked: tuple[ServerMatch, ...] | None = None
        by_file: dict[str, int] | None = None
        if self._cache is not None and self._can_rank:
            # rank_all's tie-break (toward earlier items) matches
            # top_k's, so slicing this pre-sorted list reproduces the
            # per-query ranking byte for byte.
            ranked = tuple(
                rank_all(matches, key=ServerMatch.opm_value)
            )
            by_file = {
                match.file_id: match.opm_value() for match in matches
            }
        posting = CachedPostings(
            matches=matches, ranked=ranked, by_file=by_file
        )
        if self._cache is not None:
            self._cache.put(trapdoor.address, posting)
        return posting

    def _handle_search(self, request: SearchRequest) -> SearchResponse:
        with self._tracer.span("search.trapdoor") as decode_span:
            trapdoor = Trapdoor.deserialize(request.trapdoor_bytes)
        hits_before = self.cache_hits
        with self._tracer.span("search.postings") as postings_span:
            posting = self._postings_for(trapdoor)
            matches = posting.matches
            postings_span.set(
                postings=len(matches),
                cache_hit=self.cache_hits > hits_before,
            )

        rank_counters: dict[str, int] | None = (
            {} if self._tracer.enabled else None
        )
        with self._tracer.span(
            "search.rank",
            can_rank=self._can_rank,
            k=request.top_k,
        ) as rank_span:
            if not self._can_rank:
                # Semantically secure score fields: no server-side
                # ranking possible; a top-k bound cannot be honoured
                # meaningfully.
                ordered = list(matches)
            elif posting.ranked is not None:
                # Ranked-cache fast path: the list is already in
                # descending OPM order, so top-k is an O(k) slice —
                # zero comparisons, zero score-field decodes.
                ordered = top_of_ranked(
                    posting.ranked, request.top_k, counters=rank_counters
                )
                rank_span.set(ranked_cache=True)
            elif request.top_k is not None:
                # Honesty mode (no cache): one bounded-heap pass.
                ordered = top_k(
                    matches,
                    request.top_k,
                    key=ServerMatch.opm_value,
                    counters=rank_counters,
                )
            else:
                ordered = rank_all(
                    matches,
                    key=ServerMatch.opm_value,
                    counters=rank_counters,
                )
            if rank_counters:
                rank_span.set(**rank_counters)

        with self._tracer.span("search.files") as files_span:
            if request.entries_only:
                returned: list[ServerMatch] = []
                files: tuple[tuple[str, bytes], ...] = ()
            else:
                # Tolerate a file removed between the index read and
                # the blob fetch (concurrent owner updates): dropping
                # it from both lists yields exactly the post-removal
                # response instead of a torn one.
                returned = []
                payloads = []
                for match in ordered:
                    blob = self._blobs.get_optional(match.file_id)
                    if blob is None:
                        continue
                    returned.append(match)
                    payloads.append((match.file_id, blob))
                ordered = returned
                files = tuple(payloads)
            files_span.set(files=len(files))

        self._log.record(
            SearchObservation(
                address=trapdoor.address,
                matched_file_ids=tuple(match.file_id for match in matches),
                score_fields=tuple(match.score_field for match in matches),
                returned_file_ids=tuple(match.file_id for match in returned),
            )
        )
        if self._obs is not None:
            current = self._tracer.current()
            self._obs.leakage.record(
                trapdoor.address,
                matched_file_ids=tuple(
                    match.file_id for match in matches
                ),
                returned_file_ids=tuple(
                    match.file_id for match in returned
                ),
                trace_id=current.trace_id if current is not None else 0,
            )
            self._obs.metrics.counter("repro_server_searches_total").inc()
            self._obs.metrics.histogram(
                "repro_server_postings_scanned",
                buckets=(1.0, 10.0, 100.0, 1000.0, 10000.0),
            ).observe(float(len(matches)))
            if self._cache is not None:
                self._obs.metrics.gauge(
                    "repro_server_cache_hit_ratio"
                ).set(self._cache.hit_ratio)
        self._record_slow(
            "search",
            (
                ("decode", decode_span),
                ("postings", postings_span),
                ("rank", rank_span),
                ("respond", files_span),
            ),
        )
        response_matches = tuple(
            (match.file_id, match.score_field) for match in ordered
        )
        return SearchResponse(matches=response_matches, files=files)

    def _score_map(self, posting: CachedPostings) -> dict[str, int]:
        """``file_id -> OPM value`` for one posting list.

        Warm path: the dict was built once at cache-fill time.  Cold
        (or cache-off) path: decode the score fields now — same values
        either way, so responses are byte-identical cache on/off.
        """
        if posting.by_file is not None:
            return posting.by_file
        return {
            match.file_id: match.opm_value()
            for match in posting.matches
        }

    def _handle_multi_search(
        self, request: MultiSearchRequest
    ) -> MultiSearchResponse:
        """One-round multi-keyword top-k: aggregate OPM sums server-side.

        Looks up every trapdoor through the same ranked warm cache the
        single-keyword path uses (so only queried terms are decoded,
        also under the packed mmap store), sums per-file OPM values
        across terms — intersecting for conjunctive mode, merging for
        disjunctive — and selects the top-k with a bounded heap under
        the canonical tie-break (descending sum, ascending file id).

        ``partial=True`` (the cluster-internal flavour) skips the
        top-k cut and file fetch and returns every local aggregate
        with its matched-term count, in ascending file-id order.
        """
        if not self._can_rank:
            raise ProtocolError(
                "multi-keyword search requires rankable score fields "
                "(the efficient scheme); the basic scheme cannot "
                "aggregate semantically secure scores server-side"
            )
        with self._tracer.span(
            "search.trapdoor", terms=len(request.trapdoors)
        ) as decode_span:
            trapdoors = [
                Trapdoor.deserialize(t) for t in request.trapdoors
            ]
        hits_before = self.cache_hits
        postings: list[CachedPostings] = []
        per_term: list[dict[str, int]] = []
        with self._tracer.span("search.postings") as postings_span:
            for trapdoor in trapdoors:
                posting = self._postings_for(trapdoor)
                postings.append(posting)
                per_term.append(self._score_map(posting))
            postings_span.set(
                postings=sum(len(p.matches) for p in postings),
                cache_hits=self.cache_hits - hits_before,
            )

        rank_counters: dict[str, int] | None = (
            {} if self._tracer.enabled else None
        )
        with self._tracer.span(
            "search.aggregate",
            mode=request.mode,
            terms=len(trapdoors),
            k=request.top_k,
            partial=request.partial,
        ) as aggregate_span:
            if request.mode == MODE_CONJUNCTIVE:
                pairs = intersect_sums(per_term)
            else:
                pairs = union_sums(per_term)
            aggregate_span.set(candidates=len(pairs))
            if request.partial:
                if request.mode == MODE_CONJUNCTIVE:
                    # Every survivor matched all local terms.
                    counts = {
                        file_id: len(per_term) for file_id, _ in pairs
                    }
                else:
                    counts = {
                        file_id: sum(
                            1 for scores in per_term if file_id in scores
                        )
                        for file_id, _ in pairs
                    }
                ranked = pairs  # already ascending file id
            else:
                ranked = rank_pairs(
                    pairs, request.top_k, counters=rank_counters
                )
            if rank_counters:
                aggregate_span.set(**rank_counters)

        with self._tracer.span("search.files") as files_span:
            if request.partial:
                returned_pairs = ranked
                files: tuple[tuple[str, bytes], ...] = ()
                matches = tuple(
                    (file_id, pack_partial_score(total, counts[file_id]))
                    for file_id, total in returned_pairs
                )
            else:
                # Same tolerance as the single-keyword path: a blob
                # removed since the index read drops out of both lists.
                returned_pairs = []
                payloads = []
                for file_id, total in ranked:
                    blob = self._blobs.get_optional(file_id)
                    if blob is None:
                        continue
                    returned_pairs.append((file_id, total))
                    payloads.append((file_id, blob))
                files = tuple(payloads)
                matches = tuple(
                    (file_id, pack_multi_score(total))
                    for file_id, total in returned_pairs
                )
            files_span.set(files=len(files))

        returned_ids = tuple(file_id for file_id, _ in returned_pairs)
        for trapdoor, posting in zip(trapdoors, postings):
            self._log.record(
                SearchObservation(
                    address=trapdoor.address,
                    matched_file_ids=tuple(
                        match.file_id for match in posting.matches
                    ),
                    score_fields=tuple(
                        match.score_field for match in posting.matches
                    ),
                    returned_file_ids=returned_ids,
                )
            )
        if self._obs is not None:
            current = self._tracer.current()
            for trapdoor, posting in zip(trapdoors, postings):
                self._obs.leakage.record(
                    trapdoor.address,
                    matched_file_ids=tuple(
                        match.file_id for match in posting.matches
                    ),
                    returned_file_ids=returned_ids,
                    trace_id=(
                        current.trace_id if current is not None else 0
                    ),
                )
            self._obs.metrics.counter(
                "repro_server_multi_searches_total", mode=request.mode
            ).inc()
            if self._cache is not None:
                self._obs.metrics.gauge(
                    "repro_server_cache_hit_ratio"
                ).set(self._cache.hit_ratio)
        self._record_slow(
            "multi-search",
            (
                ("decode", decode_span),
                ("postings", postings_span),
                ("aggregate", aggregate_span),
                ("respond", files_span),
            ),
        )
        return MultiSearchResponse(matches=matches, files=files)

    def _handle_fetch(self, request: FileRequest) -> RankedFilesResponse:
        """Second round of the basic top-k protocol.

        The server learns that the requested files outrank the
        unrequested ones — the extra leakage Section III-C points out;
        it lands in the log as ``returned_file_ids`` of a fresh
        observation tied to no address.
        """
        files = tuple(
            (file_id, self._blobs.get(file_id)) for file_id in request.file_ids
        )
        self._log.record(
            SearchObservation(
                address=b"",
                matched_file_ids=(),
                score_fields=(),
                returned_file_ids=tuple(request.file_ids),
            )
        )
        return RankedFilesResponse(files=files)
