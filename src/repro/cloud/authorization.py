"""User authorization and revocation over broadcast encryption.

Completes the paper's Setup-phase key-distribution story: the data
owner wraps the credential bundle (trapdoor keys + file key) in a
broadcast ciphertext addressed to all currently authorized users.
Authorizing a user hands out its slot's path keys; revoking a user
re-broadcasts the (re-keyed) credentials under a cover that excludes
the revoked slot, so the revoked user cannot read any *future*
credential epoch.

Forward secrecy caveat, faithfully modelled: revocation cannot erase
keys a user already holds — the owner must rotate the scheme keys and
re-encrypt/re-index for full revocation, which is exactly why the
epoch counter exists.  :meth:`AuthorizationManager.rotate_credentials`
performs that rotation given fresh credentials.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.cloud.broadcast import (
    BroadcastCiphertext,
    BroadcastEncryption,
    UserKeySet,
)
from repro.cloud.owner import UserCredentials
from repro.crypto.keys import SchemeKey
from repro.errors import CryptoError, ParameterError


def _encode_credentials(credentials: UserCredentials, epoch: int) -> bytes:
    payload = {
        "epoch": epoch,
        "scheme_key": credentials.scheme_key.serialize().hex(),
        "file_key": credentials.file_key.hex(),
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _decode_credentials(data: bytes) -> tuple[UserCredentials, int]:
    try:
        payload = json.loads(data.decode("utf-8"))
        credentials = UserCredentials(
            scheme_key=SchemeKey.deserialize(
                bytes.fromhex(payload["scheme_key"])
            ),
            file_key=bytes.fromhex(payload["file_key"]),
        )
        return credentials, int(payload["epoch"])
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise CryptoError(f"malformed credential payload: {exc}") from exc


@dataclass(frozen=True)
class AuthorizationTicket:
    """What a newly authorized user receives out of band."""

    key_set: UserKeySet


class AuthorizationManager:
    """Owner-side group management for credential distribution.

    Parameters
    ----------
    master_key:
        Secret seeding the broadcast key tree.
    capacity:
        Maximum concurrently assignable user slots (power of two).
    """

    def __init__(self, master_key: bytes, capacity: int = 64):
        self._broadcast = BroadcastEncryption(master_key, capacity)
        self._next_slot = 0
        self._revoked: set[int] = set()
        self._epoch = 0
        self._current: BroadcastCiphertext | None = None

    @property
    def epoch(self) -> int:
        """Current credential epoch (bumped on rotation)."""
        return self._epoch

    @property
    def revoked_slots(self) -> set[int]:
        """Currently revoked slots (copy)."""
        return set(self._revoked)

    def authorize_user(self) -> AuthorizationTicket:
        """Assign the next slot and issue its path keys."""
        if self._next_slot >= self._broadcast.capacity:
            raise ParameterError(
                f"user capacity {self._broadcast.capacity} exhausted"
            )
        slot = self._next_slot
        self._next_slot += 1
        return AuthorizationTicket(
            key_set=self._broadcast.user_key_set(slot)
        )

    def revoke_user(self, user_index: int) -> None:
        """Exclude a slot from all future credential broadcasts."""
        if not 0 <= user_index < self._next_slot:
            raise ParameterError(f"unknown user slot {user_index}")
        self._revoked.add(user_index)
        self._current = None  # force a re-broadcast

    def publish_credentials(
        self, credentials: UserCredentials
    ) -> BroadcastCiphertext:
        """Broadcast the current credential bundle to non-revoked users."""
        self._current = self._broadcast.encrypt(
            _encode_credentials(credentials, self._epoch), self._revoked
        )
        return self._current

    def rotate_credentials(
        self, fresh_credentials: UserCredentials
    ) -> BroadcastCiphertext:
        """Bump the epoch and broadcast freshly rotated credentials.

        Call after revocation with *re-keyed* scheme credentials; the
        revoked user holds the old epoch's keys but cannot read this
        broadcast, so it is locked out of the re-keyed index.
        """
        self._epoch += 1
        return self.publish_credentials(fresh_credentials)

    # -- user side ----------------------------------------------------

    @staticmethod
    def redeem(
        ticket: AuthorizationTicket, broadcast: BroadcastCiphertext
    ) -> tuple[UserCredentials, int]:
        """User-side: unwrap the credential broadcast with path keys.

        Returns the credentials and their epoch; raises
        :class:`CryptoError` for revoked (uncovered) users.
        """
        payload = BroadcastEncryption.decrypt(ticket.key_set, broadcast)
        return _decode_credentials(payload)
