"""Real network serving: sockets, processes, and the binary codec.

Everything below the wire in PRs 1–5 — the sharded cluster, retry and
breakers, the ranked cache, the dual codec — ran behind the in-process
:class:`~repro.cloud.network.Channel`, which means one Python process
and the GIL capping a "4-shard" cluster at one core.  This module is
the deployment shape the codec was designed for:

* :class:`NetServer` — an asyncio TCP front end speaking
  length-prefixed frames (:func:`~repro.cloud.protocol.encode_frame`)
  whose payloads are the PR-5 codec messages.  Dispatch is
  :func:`~repro.cloud.protocol.peek_kind` (one byte for the binary
  codec); JSON clients work unchanged via
  :func:`~repro.cloud.protocol.detect_codec`, and every response
  mirrors its request's codec.
* **Pre-forked shard workers** — one OS *process* per shard
  (``multiprocessing`` fork context), each owning a full
  :class:`~repro.cloud.server.CloudServer` over its index partition
  plus its own ranked cache, so shards rank and decrypt on separate
  cores.  The parent talks to each worker over a duplex pipe with
  request-id multiplexing, so one worker serves pipelined requests
  from many connections.
* **Backpressure, twice** — a per-connection in-flight window (the
  reader simply stops consuming the socket, letting TCP flow control
  push back on the client) and a global queue-depth high-water mark
  that *sheds* load with an explicit
  :class:`~repro.cloud.protocol.ErrorResponse` carrying
  ``ServerOverloadedError`` rather than queueing without bound.
* :class:`NetworkChannel` — the client side: a drop-in
  :class:`~repro.cloud.network.Transport`, so
  :class:`~repro.cloud.user.DataUser`,
  :class:`~repro.cloud.retry.RetryingChannel`, and
  :class:`~repro.cloud.updates.RemoteIndexMaintainer` run unmodified
  over real sockets, plus pipelined batch calls mirroring the cluster
  fan-out (:meth:`NetworkChannel.call_many_resilient` returns the
  same :class:`~repro.cloud.cluster.PartialResult` contract).

Routing is byte-identical to :class:`~repro.cloud.cluster.ClusterServer`
(shared :func:`~repro.cloud.cluster.routing_address`), with one
deployment difference: the blob store is *replicated* per worker
process (fork copy-on-write), so ``put-blob``/``remove-blob`` are
broadcast to every worker while addressed requests go only to their
owning shard.  The in-process cluster remains the deterministic
reference; the loopback suite asserts the two produce byte-identical
responses.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import signal
import socket
import threading
import time
from collections import deque
from typing import Callable, Iterable, Sequence

import repro.errors
from repro.cloud.cluster import (
    DEFAULT_NUM_SHARDS,
    DEFAULT_SHARD_SEED,
    PartialResult,
    ShardedIndex,
    merge_partial_matches,
    routing_address,
    shard_for_address,
    split_multi_request,
)
from repro.cloud.cache import ResultCache
from repro.cloud.network import ChannelStats
from repro.cloud.protocol import (
    CODEC_BINARY,
    MAX_FRAME_BYTES,
    AdminRequest,
    AdminResponse,
    ErrorResponse,
    MultiSearchRequest,
    MultiSearchResponse,
    ObservedRequest,
    ObservedResponse,
    ObsSnapshotRequest,
    ObsSnapshotResponse,
    StreamDecoder,
    TracedRequest,
    detect_codec,
    encode_frame,
    pack_multi_score,
    pack_partial_score,
    peek_kind,
)
from repro.cloud.retry import (
    BREAKER_STATE_VALUES,
    BreakerConfig,
    BreakerSnapshot,
    CircuitBreaker,
)
from repro.cloud.server import CloudServer
from repro.cloud.storage import BlobStore
from repro.core.secure_index import SecureIndex
from repro.errors import (
    CallDroppedError,
    CallTimeoutError,
    CorruptedResponseError,
    ParameterError,
    ProtocolError,
    ReproError,
    ServerOverloadedError,
    ShardDownError,
    TransportError,
)
from repro.ir.topk import rank_pairs
from repro.obs import (
    LeakageLog,
    MetricsRegistry,
    MetricsSnapshot,
    Obs,
    ObsDump,
    SlowQueryLog,
    dump_jsonl,
    load_jsonl,
    merge_dumps,
    render_prometheus,
)
from repro.obs.trace import NOOP_TRACER, FakeClock, Tracer

#: Default per-connection in-flight window (requests admitted but not
#: yet answered before the server stops reading that socket).
DEFAULT_MAX_INFLIGHT_PER_CONN = 32

#: Default global queue-depth high-water mark: requests in flight
#: across all connections beyond which new arrivals are shed with an
#: explicit overload response.
DEFAULT_MAX_QUEUE_DEPTH = 128

#: Blob mutations are broadcast to every worker (replicated stores).
_BROADCAST_KINDS = ("put-blob", "remove-blob")

_STATUS_OK = 0x00
_STATUS_ERROR = 0x01

_RID_BYTES = 8

#: Span/trace-id stride between processes of one deployment: worker
#: ``i`` counts ids from ``(i + 1) * stride``, the front end from 0,
#: so a merged cluster artifact never collides on ids.  2^48 ids per
#: process outlasts any run; 2^16 processes fit below the wire's
#: 8-byte id fields.
_WORKER_ID_STRIDE = 1 << 48

#: Slow-query entries surfaced in the admin ``health`` section.
_HEALTH_SLOW_QUERIES = 10


def _pack_strs(*values: str) -> bytes:
    parts = []
    for value in values:
        data = value.encode("utf-8")
        parts.append(len(data).to_bytes(4, "big"))
        parts.append(data)
    return b"".join(parts)


def _unpack_strs(data: bytes, count: int) -> list[str]:
    values = []
    offset = 0
    for _ in range(count):
        length = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        values.append(data[offset:offset + length].decode("utf-8"))
        offset += length
    return values


def _worker_main(
    conn,
    shard_index: SecureIndex,
    blob_store: BlobStore,
    can_rank: bool,
    cache_searches: bool,
    cache_capacity: int | None,
    update_token: bytes | None,
    delay_s: float,
    obs=None,
    clock: Callable[[], float] | None = None,
    result_cache_bytes: int | None = None,
) -> None:
    """One shard worker: a CloudServer behind a request pipe.

    Runs in the forked child.  The shard index and blob store arrive
    via fork copy-on-write (never pickled), so the worker starts with
    an exact snapshot of the parent's deployment.  The loop is
    deliberately single-threaded — a shard is the unit of
    serialization, exactly the guarantee the in-process cluster gets
    from its shard lock — and exits when the parent closes its pipe
    end.  SIGINT is ignored so an interactive Ctrl-C reaches only the
    parent, which then shuts workers down via the pipes.

    ``obs`` is this worker's *own* bundle (processes cannot share a
    registry): the parent builds it pre-fork with a disjoint tracer
    id range and fetches its contents over the pipe via
    ``obs-snapshot`` requests.  ``clock`` overrides the per-request
    elapsed-time source (a worker-local
    :class:`~repro.obs.trace.FakeClock` in deterministic deployments,
    so ``worker_us`` attributes are byte-stable too).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    server = CloudServer(
        shard_index,
        blob_store,
        can_rank,
        cache_searches=cache_searches,
        update_token=update_token,
        obs=obs,
        result_cache_bytes=result_cache_bytes,
        **(
            {"cache_capacity": cache_capacity}
            if cache_capacity is not None
            else {}
        ),
    )
    timer = clock if clock is not None else time.perf_counter
    while True:
        try:
            envelope = conn.recv_bytes()
        except (EOFError, OSError):
            break
        rid = envelope[:_RID_BYTES]
        request = envelope[_RID_BYTES:]
        if delay_s:
            time.sleep(delay_s)
        started = timer()
        try:
            response = server.handle(request)
        except Exception as exc:  # noqa: BLE001 — workers must not die
            reply = (
                rid
                + bytes([_STATUS_ERROR])
                + _pack_strs(type(exc).__name__, str(exc))
            )
        else:
            elapsed_us = min(
                int((timer() - started) * 1e6), 2**32 - 1
            )
            reply = (
                rid
                + bytes([_STATUS_OK])
                + elapsed_us.to_bytes(4, "big")
                + response
            )
        try:
            conn.send_bytes(reply)
        except (OSError, BrokenPipeError):
            break
    conn.close()


class _WorkerHandle:
    """Parent-side view of one shard worker process.

    Multiplexes pipelined requests over the worker pipe with 8-byte
    request ids; a dedicated reader thread resolves the matching
    asyncio futures via ``call_soon_threadsafe``.  When the pipe dies
    (worker crashed or killed), every pending call — and every future
    call — fails with :class:`~repro.errors.ShardDownError`, which is
    what the front end's per-worker circuit breaker counts.
    """

    def __init__(self, shard: int, process, conn, breaker: CircuitBreaker):
        self.shard = shard
        self.process = process
        self.conn = conn
        self.breaker = breaker
        self.alive = True
        self._lock = threading.Lock()
        self._pending: dict[bytes, asyncio.Future] = {}
        self._next_rid = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._reader: threading.Thread | None = None

    def start_reader(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"netserve-worker-{self.shard}-reader",
            daemon=True,
        )
        self._reader.start()

    @staticmethod
    def _resolve(future: asyncio.Future, result) -> None:
        if not future.done():
            future.set_result(result)

    @staticmethod
    def _fail(future: asyncio.Future, exc: Exception) -> None:
        if not future.done():
            future.set_exception(exc)

    def _read_loop(self) -> None:
        assert self._loop is not None
        while True:
            try:
                data = self.conn.recv_bytes()
            except (EOFError, OSError):
                break
            rid = bytes(data[:_RID_BYTES])
            with self._lock:
                future = self._pending.pop(rid, None)
            if future is None:
                continue
            status = data[_RID_BYTES]
            body = bytes(data[_RID_BYTES + 1:])
            if status == _STATUS_OK:
                elapsed_us = int.from_bytes(body[:4], "big")
                outcome = (True, body[4:], elapsed_us, "")
            else:
                code, detail = _unpack_strs(body, 2)
                outcome = (False, b"", 0, f"{code}\x00{detail}")
            try:
                self._loop.call_soon_threadsafe(
                    self._resolve, future, outcome
                )
            except RuntimeError:  # loop already closed during shutdown
                break
        with self._lock:
            self.alive = False
            orphans = list(self._pending.values())
            self._pending.clear()
        for future in orphans:
            try:
                self._loop.call_soon_threadsafe(
                    self._fail,
                    future,
                    ShardDownError(f"shard {self.shard}: worker died"),
                )
            except RuntimeError:  # loop already closed during shutdown
                break

    def _send(self, envelope: bytes) -> None:
        with self._lock:
            if not self.alive:
                raise ShardDownError(
                    f"shard {self.shard}: worker is not running"
                )
            self.conn.send_bytes(envelope)

    async def call(self, request: bytes) -> tuple[bool, bytes, int, str]:
        """One pipelined worker round trip.

        Returns ``(ok, response, worker_us, packed_error)``; raises
        :class:`~repro.errors.ShardDownError` when the worker (or its
        pipe) is gone.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        with self._lock:
            if not self.alive:
                raise ShardDownError(
                    f"shard {self.shard}: worker is not running"
                )
            rid = self._next_rid.to_bytes(_RID_BYTES, "big")
            self._next_rid += 1
            self._pending[rid] = future
        try:
            await loop.run_in_executor(None, self._send, rid + request)
        except (OSError, ValueError, BrokenPipeError) as exc:
            with self._lock:
                self._pending.pop(rid, None)
            raise ShardDownError(
                f"shard {self.shard}: worker pipe failed ({exc})"
            ) from exc
        return await future

    def shutdown(self, timeout_s: float) -> None:
        # Stop the worker *before* touching the pipe: the reader
        # thread is blocked in ``recv_bytes``, and on POSIX closing a
        # file descriptor does not wake a thread already blocked on
        # it — but the worker's death closes the far end, which does
        # (EOF).
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=timeout_s)
        if self.process.is_alive():  # pragma: no cover — last resort
            self.process.kill()
            self.process.join(timeout=timeout_s)
        if self._reader is not None:
            self._reader.join(timeout=timeout_s)
        try:
            self.conn.close()
        except OSError:
            pass


class NetServer:
    """A multi-process TCP front end for the sharded index.

    Accepts persistent connections carrying length-prefixed codec
    frames, routes each request to the worker process owning its shard
    (broadcasting blob mutations to all workers — the blob store is
    replicated per process), and writes responses back *in request
    order* per connection, so clients may pipeline freely.

    Failure semantics are explicit bytes, never silence: a request
    whose shard is down, whose handler rejected it, or which was shed
    at the admission-control limit comes back as an
    :class:`~repro.cloud.protocol.ErrorResponse` in the request's own
    codec, carrying the exception class name and the shard id when one
    is known.  Per-worker circuit breakers (same
    :class:`~repro.cloud.retry.CircuitBreaker` as the in-process
    cluster) stop hammering a dead worker after
    ``failure_threshold`` consecutive pipe failures.

    Parameters
    ----------
    index:
        A pre-partitioned :class:`~repro.cloud.cluster.ShardedIndex`,
        or a plain :class:`~repro.core.secure_index.SecureIndex` to
        partition on construction.
    blob_store:
        The encrypted collection; each worker inherits a fork-time
        copy, kept consistent by broadcasting blob mutations.
    can_rank:
        Forwarded to every worker's CloudServer.
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    num_shards / shard_seed:
        Partition geometry when ``index`` is unsharded.
    cache_searches / cache_capacity / update_token:
        Per-worker CloudServer knobs (each worker owns a private
        ranked cache over its shard).
    result_cache_bytes:
        Byte budget for the hot-query fast lane.  When set, the front
        end keeps a :class:`~repro.cloud.cache.ResultCache` of fully
        encoded response frames keyed by ``(codec, frame digest)`` —
        a repeated query is answered from the asyncio loop with zero
        worker IPC and zero re-encode — and concurrent identical
        requests are *coalesced* into one shared worker round trip
        via an asyncio future map (single-flight).  Each worker's
        CloudServer additionally gets a proportional slice as its own
        encoded-response memo.  Mutations invalidate by epoch:
        ``update-list`` bumps its owning shard, blob broadcasts bump
        every shard, and error/partial responses are never cached, so
        responses are byte-identical with the cache on or off.  Cache
        hits still record their search/access-pattern observations
        (captured at fill time via
        :class:`~repro.cloud.protocol.ObservedRequest` envelopes and
        replayed into the front end's leakage log), so the merged
        cluster artifact keeps exact leakage counts.
    max_inflight_per_conn:
        Per-connection admission window; past it the server stops
        reading the socket (TCP pushes back on the client).
    max_queue_depth:
        Global in-flight high-water mark; past it new requests are
        shed with ``ServerOverloadedError`` responses.
    max_frame_bytes:
        Per-frame size cap enforced at the length prefix.
    breaker:
        Per-worker circuit-breaker tuning (defaults when omitted).
    worker_delay_s:
        Artificial per-request service delay inside each worker —
        a test/bench knob for provoking overload deterministically.
    obs:
        Optional :class:`repro.obs.Obs` bundle.  The front end keeps a
        connection gauge (``repro_net_connections``), an in-flight
        histogram (``repro_net_inflight``), request and
        overload-rejection counters, breaker-state gauges
        (``repro_net_breaker_state{worker=...}``), and per-request
        spans whose ``worker_us`` attribute bridges the worker's
        measured handling time across the process boundary.  When set,
        each worker additionally gets its *own* pre-fork bundle (a
        registry cannot be shared across processes) with a disjoint
        tracer id range, worker-bound frames travel inside
        :class:`~repro.cloud.protocol.TracedRequest` envelopes so
        worker spans stitch under the front end's ``net.request``
        root, and the ``admin`` request kind serves merged
        cluster-wide Prometheus/JSONL/health views (see
        :meth:`scrape`).
    deterministic_obs:
        Give every worker a private
        :class:`~repro.obs.trace.FakeClock` driving both its span
        timings and its ``worker_us`` measurements, so exported
        cluster artifacts are a pure function of the request sequence
        (the CI smoke job diffs two full runs byte-for-byte).  Only
        meaningful with ``obs``.
    """

    def __init__(
        self,
        index: SecureIndex | ShardedIndex,
        blob_store: BlobStore,
        can_rank: bool,
        host: str = "127.0.0.1",
        port: int = 0,
        num_shards: int | None = None,
        shard_seed: bytes = DEFAULT_SHARD_SEED,
        cache_searches: bool = False,
        cache_capacity: int | None = None,
        result_cache_bytes: int | None = None,
        update_token: bytes | None = None,
        max_inflight_per_conn: int = DEFAULT_MAX_INFLIGHT_PER_CONN,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        breaker: BreakerConfig | None = None,
        worker_delay_s: float = 0.0,
        obs=None,
        deterministic_obs: bool = False,
    ):
        if max_inflight_per_conn < 1:
            raise ParameterError(
                f"max_inflight_per_conn must be >= 1, got "
                f"{max_inflight_per_conn}"
            )
        if max_queue_depth < 1:
            raise ParameterError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if worker_delay_s < 0:
            raise ParameterError(
                f"worker_delay_s must be >= 0, got {worker_delay_s}"
            )
        if isinstance(index, ShardedIndex):
            if num_shards is not None and num_shards != index.num_shards:
                raise ParameterError(
                    f"index has {index.num_shards} shards but num_shards="
                    f"{num_shards} was requested"
                )
            self._sharded = index
        else:
            self._sharded = ShardedIndex.from_secure_index(
                index,
                num_shards if num_shards is not None else DEFAULT_NUM_SHARDS,
                shard_seed=shard_seed,
            )
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover — POSIX only
            raise ParameterError(
                "NetServer requires the fork start method (POSIX)"
            ) from exc
        shards = self._sharded.num_shards
        if cache_capacity is not None and cache_capacity < 1:
            raise ParameterError(
                f"cache capacity must be >= 1, got {cache_capacity}"
            )
        self._per_shard_capacity = (
            max(1, cache_capacity // shards)
            if cache_capacity is not None
            else None
        )
        if result_cache_bytes is not None and result_cache_bytes < 1:
            raise ParameterError(
                f"result_cache_bytes must be >= 1, got {result_cache_bytes}"
            )
        self._result_cache = (
            ResultCache(result_cache_bytes, shards)
            if result_cache_bytes is not None
            else None
        )
        self._per_shard_result_bytes = (
            max(1, result_cache_bytes // shards)
            if result_cache_bytes is not None
            else None
        )
        #: Single-flight map: key -> future resolving to
        #: ``(response bytes, wire observations)``.  Touched only on
        #: the event-loop thread.
        self._single_flight: dict[
            tuple[str, bytes], asyncio.Future
        ] = {}
        self._blobs = blob_store
        self._can_rank = can_rank
        self._cache_searches = cache_searches
        self._update_token = update_token
        self._worker_delay_s = worker_delay_s
        self._breaker_config = breaker
        self._host = host
        self._requested_port = port
        self._bound_port: int | None = None
        self._max_inflight = max_inflight_per_conn
        self._max_depth = max_queue_depth
        self._max_frame = max_frame_bytes
        self._obs = obs
        self._deterministic_obs = deterministic_obs
        self._tracer = obs.tracer if obs is not None else NOOP_TRACER
        self._workers: tuple[_WorkerHandle, ...] = ()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._stop_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._inflight = 0
        self._started = False
        self._closed = False
        self._start_error: BaseException | None = None

    def _worker_obs(self, shard: int):
        """Build one worker's private obs bundle (pre-fork).

        The tracer counts ids from ``(shard + 1) * _WORKER_ID_STRIDE``
        so merged cluster artifacts never collide with the front end's
        (or another worker's) span ids; the slow-query knobs mirror the
        front end's.  Returns ``(None, None)`` when observability is
        off — the worker then runs the exact pre-obs code path.
        """
        if self._obs is None:
            return None, None
        clock = FakeClock() if self._deterministic_obs else None
        template = self._obs.slowlog
        obs = Obs(
            tracer=Tracer(
                clock=clock, id_base=(shard + 1) * _WORKER_ID_STRIDE
            ),
            metrics=MetricsRegistry(),
            leakage=LeakageLog(),
            slowlog=SlowQueryLog(
                threshold_s=template.threshold_s,
                sample_every=template.sample_every,
                capacity=template.capacity,
            ),
        )
        return obs, clock

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "NetServer":
        """Fork the workers, bind the socket, begin serving.

        Returns ``self`` so tests can write
        ``with NetServer(...).start() as server``.  The front-end
        event loop runs on a background thread; this call returns once
        the listening port is bound and every worker's reader is live.
        """
        if self._started:
            raise ParameterError("server is already started")
        self._started = True
        handles = []
        for shard, shard_index in enumerate(self._sharded.shards):
            parent_conn, child_conn = self._mp.Pipe(duplex=True)
            worker_obs, worker_clock = self._worker_obs(shard)
            process = self._mp.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    shard_index,
                    self._blobs,
                    self._can_rank,
                    self._cache_searches,
                    self._per_shard_capacity,
                    self._update_token,
                    self._worker_delay_s,
                    worker_obs,
                    worker_clock,
                    self._per_shard_result_bytes,
                ),
                name=f"netserve-shard-{shard}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            handles.append(
                _WorkerHandle(
                    shard,
                    process,
                    parent_conn,
                    CircuitBreaker(self._breaker_config),
                )
            )
        self._workers = tuple(handles)
        ready = threading.Event()
        self._loop_thread = threading.Thread(
            target=self._run_loop,
            args=(ready,),
            name="netserve-frontend",
            daemon=True,
        )
        self._loop_thread.start()
        ready.wait()
        if self._start_error is not None:
            error = self._start_error
            self.close()
            raise ParameterError(
                f"could not start network server: {error}"
            ) from error
        return self

    def _run_loop(self, ready: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve(ready))
        except BaseException as exc:  # pragma: no cover — defensive
            self._start_error = exc
        finally:
            ready.set()
            loop.close()

    async def _serve(self, ready: threading.Event) -> None:
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_conn, self._host, self._requested_port
            )
        except OSError as exc:
            self._start_error = exc
            return
        self._bound_port = server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        for handle in self._workers:
            handle.start_reader(loop)
        ready.set()
        async with server:
            await self._stop_event.wait()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        # In-flight request tasks may still be parked on worker
        # futures; cancel them so the loop closes without orphans.
        current = asyncio.current_task()
        leftovers = [
            task for task in asyncio.all_tasks() if task is not current
        ]
        for task in leftovers:
            task.cancel()
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)

    def close(self) -> None:
        """Stop serving and reap every worker process (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # pragma: no cover — loop already gone
                pass
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10.0)
        for handle in self._workers:
            handle.shutdown(timeout_s=10.0)

    def __enter__(self) -> "NetServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- topology -----------------------------------------------------------

    @property
    def host(self) -> str:
        """The bind address."""
        return self._host

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._bound_port is None:
            raise ParameterError("server has not been started")
        return self._bound_port

    @property
    def num_shards(self) -> int:
        """Number of shard worker processes."""
        return self._sharded.num_shards

    @property
    def result_cache(self) -> ResultCache | None:
        """The front-end result cache (``None`` when the fast lane is off)."""
        return self._result_cache

    @property
    def worker_processes(self) -> tuple:
        """The shard worker process handles (for liveness assertions)."""
        return tuple(handle.process for handle in self._workers)

    @property
    def worker_health(self) -> tuple[BreakerSnapshot, ...]:
        """Per-worker circuit-breaker views, in shard order."""
        return tuple(handle.breaker.snapshot() for handle in self._workers)

    def kill_worker(self, shard: int) -> None:
        """Kill one shard worker process (fault-injection helper).

        SIGKILL, not a clean shutdown — the parent finds out the same
        way it would about a real crash: the worker pipe goes dead and
        in-flight calls fail with
        :class:`~repro.errors.ShardDownError`.
        """
        handle = self._workers[shard]
        handle.process.kill()
        handle.process.join(timeout=10.0)

    # -- request path -------------------------------------------------------

    def _observe_conn(self, delta: int) -> None:
        if self._obs is not None:
            self._obs.metrics.gauge("repro_net_connections").add(delta)

    def _observe_admitted(self, kind: str) -> None:
        if self._obs is None:
            return
        self._obs.metrics.counter(
            "repro_net_requests_total", kind=kind
        ).inc()
        self._obs.metrics.histogram(
            "repro_net_inflight",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        ).observe(float(self._inflight))

    def _observe_overload(self) -> None:
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_net_overload_rejections_total"
            ).inc()

    async def _handle_conn(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        self._observe_conn(+1)
        # The gauge decrement lives in its own outermost ``finally``:
        # teardown below awaits twice (the writer task, then
        # ``wait_closed``), and a cancellation or surprise exception
        # landing between them must not leave a phantom connection in
        # ``repro_net_connections`` forever.
        try:
            await self._conn_loop(reader, writer)
        finally:
            self._observe_conn(-1)
            self._conn_tasks.discard(task)

    async def _conn_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        decoder = StreamDecoder(self._max_frame)
        window = asyncio.Semaphore(self._max_inflight)
        responses: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.get_running_loop().create_task(
            self._write_loop(responses, writer)
        )
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                try:
                    frames = decoder.feed(chunk)
                except ProtocolError:
                    # A framing violation poisons the whole stream
                    # (there is no resynchronization point); drop the
                    # connection rather than guess at boundaries.
                    break
                for frame in frames:
                    # The admission window: waiting here stops the
                    # read loop, which stops ACKing the socket, which
                    # is TCP backpressure on the client.
                    await window.acquire()
                    await responses.put(
                        asyncio.get_running_loop().create_task(
                            self._serve_one(frame, window)
                        )
                    )
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            # The queue is unbounded, so the sentinel cannot block —
            # and ``put_nowait`` cannot be interrupted by a second
            # cancellation the way ``await put`` could, which would
            # orphan the writer task.
            responses.put_nowait(None)
            try:
                await writer_task
            except asyncio.CancelledError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write_loop(
        self, responses: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Drain response tasks in admission order (pipelining)."""
        while True:
            task = await responses.get()
            if task is None:
                return
            payload = await task
            try:
                writer.write(encode_frame(payload, self._max_frame))
                await writer.drain()
            except (ConnectionError, OSError):
                return

    async def _serve_one(
        self, frame: bytes, window: asyncio.Semaphore
    ) -> bytes:
        """Serve one admitted frame; always returns response bytes."""
        try:
            try:
                codec = detect_codec(frame)
                kind = peek_kind(frame)
            except ProtocolError as exc:
                return ErrorResponse(
                    code="ProtocolError", detail=str(exc)
                ).to_bytes()
            if kind == "admin":
                # Out-of-band: no admission control, no request
                # counters, no tracing.  A scrape must work *during*
                # overload, and observing the server must not perturb
                # what it observes (two back-to-back scrapes of an
                # idle server are byte-identical).
                return await self._admin(frame, codec)
            if self._inflight >= self._max_depth:
                self._observe_overload()
                return ErrorResponse(
                    code="ServerOverloadedError",
                    detail=(
                        f"queue depth {self._inflight} at its high-water "
                        f"mark ({self._max_depth}); retry with backoff"
                    ),
                ).to_bytes(codec)
            self._inflight += 1
            self._observe_admitted(kind)
            try:
                with self._tracer.span("net.request", kind=kind) as span:
                    response = await self._route(frame, codec, kind, span)
                return response
            finally:
                self._inflight -= 1
        finally:
            window.release()

    async def _route(
        self, frame: bytes, codec: str, kind: str, span
    ) -> bytes:
        """Route one admitted frame, through the fast lane when on."""
        if self._result_cache is not None:
            self._note_mutation(kind, frame)
            shards = self._cacheable_shards(frame, kind)
            if shards is not None:
                return await self._serve_cached(
                    frame, codec, kind, span, shards
                )
        if kind == "multi-search":
            return await self._multi(frame, codec, span)
        if kind in _BROADCAST_KINDS:
            return await self._broadcast(frame, codec, span)
        try:
            shard = shard_for_address(
                routing_address(frame),
                self._sharded.num_shards,
                self._sharded.shard_seed,
            )
        except ReproError as exc:
            return ErrorResponse(
                code=type(exc).__name__, detail=str(exc)
            ).to_bytes(codec)
        return await self._dispatch(shard, frame, codec, span)

    # -- hot-query fast lane -------------------------------------------------

    def _note_mutation(self, kind: str, frame: bytes) -> None:
        """Bump result-cache epochs for a mutating frame, pre-dispatch.

        Bump-on-receipt over-invalidates (the mutation might still
        fail validation worker-side) but can never serve stale bytes:
        a racing fill stamped with the old epoch lands dead on
        arrival.  Blob mutations are broadcast to every worker, so
        they bump every shard's epoch.
        """
        assert self._result_cache is not None
        if kind in _BROADCAST_KINDS:
            self._result_cache.bump(None)
        elif kind == "update-list":
            try:
                shard = shard_for_address(
                    routing_address(frame),
                    self._sharded.num_shards,
                    self._sharded.shard_seed,
                )
            except ReproError:
                self._result_cache.bump(None)
            else:
                self._result_cache.bump(shard)

    def _cacheable_shards(
        self, frame: bytes, kind: str
    ) -> tuple[int, ...] | None:
        """The shard set a cache entry for ``frame`` depends on.

        ``None`` means the frame is not cacheable: only ``search``
        and non-partial ``multi-search`` qualify (a ``partial``
        multi-search returns unranked aggregates meant for client-side
        merging, and anything malformed gets its error from the
        normal path).
        """
        if kind == "search":
            try:
                return (
                    shard_for_address(
                        routing_address(frame),
                        self._sharded.num_shards,
                        self._sharded.shard_seed,
                    ),
                )
            except ReproError:
                return None
        if kind == "multi-search":
            try:
                request = MultiSearchRequest.from_bytes(frame)
                if request.partial:
                    return None
                sub_requests = split_multi_request(
                    request,
                    self._sharded.num_shards,
                    self._sharded.shard_seed,
                )
            except ReproError:
                return None
            return tuple(sorted(sub_requests))
        return None

    def _observe_result_cache(self, outcome: str) -> None:
        assert self._result_cache is not None
        if self._obs is None:
            return
        self._obs.metrics.counter(
            f"repro_result_cache_{outcome}_total", layer="frontend"
        ).inc()
        self._obs.metrics.gauge(
            "repro_result_cache_resident_bytes", layer="frontend"
        ).set(float(self._result_cache.resident_bytes))

    def _emit_cached_observations(self, observations, span) -> None:
        """Replay fill-time observations for a front-end cache hit.

        A hit never reaches a worker, so the worker's leakage log
        cannot see it; the front end records the same search/access
        pattern tuples into its own log instead, keeping the merged
        cluster artifact's counts exact (every answered query is one
        observation, coalesced followers included).
        """
        if self._obs is None:
            return
        trace_id = span.trace_id if self._tracer.enabled else 0
        for address, matched, returned in observations:
            self._obs.leakage.record(
                address,
                matched_file_ids=matched,
                returned_file_ids=returned,
                trace_id=trace_id,
            )

    async def _serve_cached(
        self,
        frame: bytes,
        codec: str,
        kind: str,
        span,
        shards: tuple[int, ...],
    ) -> bytes:
        """The fast lane: cache lookup, then single-flight, then fill."""
        cache = self._result_cache
        assert cache is not None
        key = ResultCache.key_for(codec, frame)
        # Single-flight first: while a leader is in flight the cache
        # holds no fresh entry for this key (the leader writes the
        # entry and leaves the map with no ``await`` in between), so
        # a follower never misses a hit by checking here, and a
        # follower's lookup never skews the cache's miss counter.
        leader = self._single_flight.get(key)
        if leader is not None:
            # Single-flight: an identical request is already in
            # flight; await its shared round trip instead of adding
            # another.  ``shield`` keeps a follower's cancellation
            # from killing the leader's future mid-fill.
            cache.note_coalesced()
            self._observe_result_cache("coalesced")
            try:
                response, observations = await asyncio.shield(leader)
            except asyncio.CancelledError:
                if not leader.cancelled():
                    raise  # this follower itself was cancelled
                # The leader was torn down without a result (its
                # connection died); serve independently.
                return await self._fill(
                    frame, codec, kind, span, shards, key, None
                )
            except Exception:  # noqa: BLE001 — degrade to own dispatch
                return await self._fill(
                    frame, codec, kind, span, shards, key, None
                )
            self._emit_cached_observations(observations, span)
            if self._tracer.enabled:
                span.set(cache="coalesced")
            return response
        entry = cache.get(key)
        if entry is not None:
            self._observe_result_cache("hits")
            self._emit_cached_observations(entry.payload, span)
            if self._tracer.enabled:
                span.set(cache="hit")
            return entry.frame
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        self._single_flight[key] = future
        try:
            return await self._fill(
                frame, codec, kind, span, shards, key, future
            )
        finally:
            if self._single_flight.get(key) is future:
                del self._single_flight[key]
            if not future.done():
                future.cancel()

    async def _fill(
        self,
        frame: bytes,
        codec: str,
        kind: str,
        span,
        shards: tuple[int, ...],
        key: tuple[str, bytes],
        future: asyncio.Future | None,
    ) -> bytes:
        """One worker round trip that (on success) populates the cache.

        Epoch stamps are taken *before* dispatch, so a mutation racing
        this fill invalidates the entry before it is even written.
        Error responses are never cached and never resolve followers
        (the leader's future is cancelled instead, and each follower
        retries independently).
        """
        cache = self._result_cache
        assert cache is not None
        self._observe_result_cache("misses")
        stamps = cache.stamp(shards)
        if kind == "multi-search":
            response, observations = await self._multi_impl(
                frame, codec, span, observe=True
            )
        else:
            response, observations = await self._dispatch_observed(
                shards[0], frame, codec, span
            )
        try:
            failed = peek_kind(response) == "error"
        except ProtocolError:  # pragma: no cover — defensive
            failed = True
        if not failed:
            cache.put(key, stamps, response, payload=observations)
            if future is not None and not future.done():
                future.set_result((response, observations))
        return response

    async def _dispatch_observed(
        self, shard: int, frame: bytes, codec: str, span
    ) -> tuple[bytes, tuple]:
        """A worker call that also captures its leakage observations.

        Wraps the frame in an :class:`ObservedRequest` envelope
        (inside the tracing envelope, when tracing is on); the worker
        answers with an :class:`ObservedResponse` carrying the inner
        response plus the observations the request appended to its
        server log.  Error bytes pass through unwrapped with no
        observations.
        """
        wrapped = ObservedRequest(payload=frame).to_bytes(CODEC_BINARY)
        response = await self._dispatch(shard, wrapped, codec, span)
        try:
            if peek_kind(response) == "observed-response":
                envelope = ObservedResponse.from_bytes(response)
                return envelope.payload, envelope.observations
        except ProtocolError:  # pragma: no cover — defensive
            pass
        return response, ()

    async def _dispatch(
        self, shard: int, frame: bytes, codec: str, span
    ) -> bytes:
        """One breaker-guarded worker call; failures become bytes."""
        handle = self._workers[shard]
        if self._tracer.enabled:
            span.set(shard=shard)
        if not handle.breaker.allow():
            return ErrorResponse(
                code="ShardDownError",
                detail=(
                    f"shard {shard}: circuit open "
                    "(awaiting half-open probe)"
                ),
                shard=shard,
            ).to_bytes(codec)
        payload = frame
        if self._tracer.enabled:
            # Cross-process trace propagation: the worker unwraps the
            # envelope and parents its ``server.handle`` span under
            # this request's span, so the merged cluster artifact
            # shows one stitched tree per query.  Responses travel
            # unwrapped (ids only flow down), and with obs off the
            # worker sees the exact client frame — byte-identity
            # between obs on/off is asserted by the loopback suite.
            payload = TracedRequest(
                trace_id=span.trace_id,
                span_id=span.span_id,
                payload=frame,
            ).to_bytes(CODEC_BINARY)
        try:
            ok, response, worker_us, packed = await handle.call(payload)
        except ShardDownError as exc:
            handle.breaker.record_failure()
            return ErrorResponse(
                code="ShardDownError", detail=str(exc), shard=shard
            ).to_bytes(codec)
        # A server-side error means the worker *served* the request
        # (the request was bad, not the shard): breaker success.
        handle.breaker.record_success()
        if not ok:
            code, _, detail = packed.partition("\x00")
            return ErrorResponse(
                code=code, detail=detail, shard=shard
            ).to_bytes(codec)
        if self._tracer.enabled:
            span.set(worker_us=worker_us)
        return response

    async def _multi(self, frame: bytes, codec: str, span) -> bytes:
        """Coordinate one multi-search across shard workers.

        Mirrors :meth:`ClusterServer._multi_fanout` over pipes: a
        query owned by one shard is forwarded whole; otherwise every
        owning shard gets its partial sub-request concurrently
        (``asyncio.gather``), the partial aggregates are merged under
        the identical tie-break, and blobs come from the front end's
        replica of the store (kept current by :meth:`_broadcast`).
        A failed shard fails the whole query — its error travels back
        as the response, shard id included, because a conjunctive
        intersection (or disjunctive sum) missing a shard's terms
        would be silently wrong rather than merely partial.
        """
        response, _ = await self._multi_impl(
            frame, codec, span, observe=False
        )
        return response

    async def _multi_impl(
        self, frame: bytes, codec: str, span, observe: bool
    ) -> tuple[bytes, tuple]:
        """Multi-search fan-out, optionally capturing observations.

        With ``observe`` the per-shard calls go through
        :meth:`_dispatch_observed` and the concatenated observations
        (sorted shard order, worker order within a shard) ride back
        for the result cache to replay on later hits.  The merged
        response bytes are identical either way.
        """
        try:
            request = MultiSearchRequest.from_bytes(frame)
            sub_requests = split_multi_request(
                request, self._sharded.num_shards, self._sharded.shard_seed
            )
        except ReproError as exc:
            return (
                ErrorResponse(
                    code=type(exc).__name__, detail=str(exc)
                ).to_bytes(codec),
                (),
            )
        if self._tracer.enabled:
            span.set(
                mode=request.mode,
                terms=len(request.trapdoors),
                fanout=len(sub_requests),
            )
        if len(sub_requests) == 1:
            shard = next(iter(sub_requests))
            if observe:
                return await self._dispatch_observed(
                    shard, frame, codec, span
                )
            return await self._dispatch(shard, frame, codec, span), ()
        ordered = sorted(sub_requests.items())
        observations: tuple = ()
        if observe:
            outcomes = await asyncio.gather(
                *(
                    self._dispatch_observed(
                        shard, sub_request.to_bytes(codec), codec, span
                    )
                    for shard, sub_request in ordered
                )
            )
            responses = [response for response, _ in outcomes]
            observations = tuple(
                observation
                for _, captured in outcomes
                for observation in captured
            )
        else:
            responses = await asyncio.gather(
                *(
                    self._dispatch(
                        shard, sub_request.to_bytes(codec), codec, span
                    )
                    for shard, sub_request in ordered
                )
            )
        partials = []
        for response in responses:
            if peek_kind(response) == "error":
                return response, ()
            partials.append(MultiSearchResponse.from_bytes(response).matches)
        merged = merge_partial_matches(
            partials, request.mode, len(request.trapdoors)
        )
        if request.partial:
            return (
                MultiSearchResponse(
                    matches=tuple(
                        (file_id, pack_partial_score(total, count))
                        for file_id, total, count in merged
                    ),
                    files=(),
                ).to_bytes(codec),
                observations,
            )
        ranked = rank_pairs(
            [(file_id, total) for file_id, total, _ in merged],
            request.top_k,
        )
        matches = []
        payloads = []
        for file_id, total in ranked:
            blob = self._blobs.get_optional(file_id)
            if blob is None:
                continue
            matches.append((file_id, pack_multi_score(total)))
            payloads.append((file_id, blob))
        return (
            MultiSearchResponse(
                matches=tuple(matches), files=tuple(payloads)
            ).to_bytes(codec),
            observations,
        )

    def _apply_blob_mutation(self, frame: bytes) -> None:
        """Mirror an acked blob mutation into the front end's store.

        Workers hold fork-time replicas that broadcasts keep current;
        the parent's copy must track them too, because the
        multi-search coordinator attaches blobs from it.  Idempotent,
        like the worker-side handlers.
        """
        from repro.cloud.updates import PutBlobRequest, RemoveBlobRequest

        kind = peek_kind(frame)
        if kind == "put-blob":
            put = PutBlobRequest.from_bytes(frame)
            if self._blobs.get_optional(put.file_id) is None:
                self._blobs.put(put.file_id, put.blob)
        else:
            remove = RemoveBlobRequest.from_bytes(frame)
            if remove.file_id in self._blobs:
                self._blobs.delete(remove.file_id)

    async def _broadcast(self, frame: bytes, codec: str, span) -> bytes:
        """Apply a blob mutation on every worker (replicated stores).

        The response returned to the client is the *owning* shard's
        (the same shard the in-process cluster would route to), so a
        networked ack is byte-identical to the reference.  Handlers
        are deterministic, so live workers all produce that same ack;
        dead workers are already failing their own searches and are
        skipped by their breakers.
        """
        owner = shard_for_address(
            routing_address(frame),
            self._sharded.num_shards,
            self._sharded.shard_seed,
        )
        results = await asyncio.gather(
            *(
                self._dispatch(shard, frame, codec, span)
                for shard in range(self._sharded.num_shards)
            )
        )
        if peek_kind(results[owner]) == "ack":
            self._apply_blob_mutation(frame)
        return results[owner]

    # -- telemetry plane ----------------------------------------------------

    async def _admin(self, frame: bytes, codec: str) -> bytes:
        """Serve one ``admin`` request (already exempt from admission)."""
        try:
            request = AdminRequest.from_bytes(frame)
        except ReproError as exc:
            return ErrorResponse(
                code=type(exc).__name__, detail=str(exc)
            ).to_bytes(codec)
        if self._obs is None:
            return ErrorResponse(
                code="ParameterError",
                detail="observability is disabled on this server",
            ).to_bytes(codec)
        if request.section == "prometheus":
            payload = (await self._cluster_dump_text()).encode("utf-8")
        elif request.section == "jsonl":
            payload = (await self._cluster_jsonl_text()).encode("utf-8")
        else:
            payload = json.dumps(
                await self._health_view(), sort_keys=True, indent=2
            ).encode("utf-8")
        return AdminResponse(payload=payload).to_bytes(codec)

    async def _collect_worker_dumps(self) -> list[tuple[str, ObsDump]]:
        """Fetch each live worker's obs artifact over its pipe.

        Sequential in shard order — scrapes are rare, and determinism
        beats latency here — and via :meth:`_WorkerHandle.call`
        *directly*: no breaker interaction, no span, no request
        counter, so a scrape never perturbs the state it reports.
        (The worker side serves ``obs-snapshot`` before its own
        span/counter instrumentation for the same reason.)  Dead
        workers are skipped; their absence shows in the breaker
        gauges, not as a scrape failure.
        """
        request = ObsSnapshotRequest().to_bytes(CODEC_BINARY)
        dumps: list[tuple[str, ObsDump]] = []
        for handle in self._workers:
            try:
                ok, response, _, _ = await handle.call(request)
            except ShardDownError:
                continue
            if not ok:
                continue
            artifact = ObsSnapshotResponse.from_bytes(response).artifact
            dumps.append(
                (str(handle.shard), load_jsonl(artifact.decode("utf-8")))
            )
        return dumps

    def _publish_breaker_gauges(self) -> None:
        """Refresh ``repro_net_breaker_state{worker=...}`` gauges.

        Published at scrape time (breakers already hold their own
        authoritative state; mirroring it on every call would just be
        a second copy to keep coherent).  Encoding: closed=0,
        half-open=1, open=2.
        """
        assert self._obs is not None
        for handle in self._workers:
            snapshot = handle.breaker.snapshot()
            self._obs.metrics.gauge(
                "repro_net_breaker_state", worker=str(handle.shard)
            ).set(BREAKER_STATE_VALUES[snapshot.state])

    async def _cluster_dump(self) -> ObsDump:
        """The merged cluster-wide view: front end plus every worker.

        Front-end records carry ``worker="frontend"``; each shard's
        carry its shard number.  Span ids are already disjoint by
        construction (:data:`_WORKER_ID_STRIDE`), so the merged trace
        section holds one stitched tree per query.
        """
        assert self._obs is not None
        self._publish_breaker_gauges()
        labeled: list[tuple[str, ObsDump]] = [
            ("frontend", load_jsonl(self._obs.export_jsonl()))
        ]
        labeled.extend(await self._collect_worker_dumps())
        return merge_dumps(labeled)

    async def _health_view(self) -> dict:
        """JSON health section: shard/breaker state plus slow queries.

        Deliberately excludes anything host- or run-specific (pids,
        ports, clock readings) so two scrapes of the same logical
        state are byte-identical.
        """
        assert self._obs is not None
        workers = {}
        for handle in self._workers:
            snapshot = handle.breaker.snapshot()
            workers[str(handle.shard)] = {
                "alive": handle.alive,
                "breaker": {
                    "state": snapshot.state,
                    "consecutive_failures": snapshot.consecutive_failures,
                    "times_opened": snapshot.times_opened,
                    "probes": snapshot.probes,
                    "suppressed_calls": snapshot.suppressed_calls,
                },
            }
        metrics = self._obs.metrics.snapshot()
        dump = await self._cluster_dump()
        slow = [
            entry.as_dict() for entry in dump.slow[-_HEALTH_SLOW_QUERIES:]
        ]
        result_cache: dict = {"enabled": self._result_cache is not None}
        if self._result_cache is not None:
            result_cache.update(self._result_cache.stats())
        return {
            "num_shards": self._sharded.num_shards,
            "connections": metrics.value("repro_net_connections"),
            "inflight": self._inflight,
            "overload_rejections": metrics.value(
                "repro_net_overload_rejections_total"
            ),
            "result_cache": result_cache,
            "workers": workers,
            "slow_queries": slow,
        }

    def _run_admin(self, factory):
        """Run one admin coroutine on the serving loop, synchronously.

        Takes a factory (not a coroutine) so the guard clauses below
        can reject before anything awaitable is created.
        """
        if self._obs is None:
            raise ParameterError(
                "observability is disabled on this server (obs=None)"
            )
        if self._loop is None or not self._started or self._closed:
            raise ParameterError("server is not running")
        future = asyncio.run_coroutine_threadsafe(factory(), self._loop)
        return future.result(timeout=30.0)

    def scrape(self) -> str:
        """Merged cluster-wide Prometheus exposition text.

        Covers the front end's instruments (connections, in-flight,
        request/overload counters, breaker-state gauges) *and* every
        worker's (search counters, cache hits, leakage totals), the
        latter labeled ``worker="<shard>"`` — the same text the
        ``admin``/``prometheus`` wire request returns.
        """
        return self._run_admin(self._cluster_dump_text)

    async def _cluster_dump_text(self) -> str:
        dump = await self._cluster_dump()
        return render_prometheus(MetricsSnapshot(points=dump.metrics))

    def export_cluster_jsonl(self) -> str:
        """Merged cluster-wide JSONL artifact (spans/metrics/leakage).

        One stitched span tree per query across the process boundary;
        every record labeled with its originating process.  The text
        round-trips through :func:`repro.obs.load_jsonl` and passes
        ``scripts/check_trace_schema.py``.
        """
        return self._run_admin(self._cluster_jsonl_text)

    async def _cluster_jsonl_text(self) -> str:
        return dump_jsonl(await self._cluster_dump())

    def health(self) -> dict:
        """The admin ``health`` section as a dict (see :meth:`_health_view`)."""
        return self._run_admin(self._health_view)


#: ``ErrorResponse.code`` values that a NetworkChannel re-raises as the
#: matching :mod:`repro.errors` class (anything else degrades to
#: :class:`~repro.errors.TransportError`).
def _exception_for(code: str, detail: str) -> ReproError:
    candidate = getattr(repro.errors, code, None)
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        return candidate(detail or code)
    return TransportError(f"{code}: {detail}")


class NetworkChannel:
    """A real-socket drop-in for :class:`~repro.cloud.network.Channel`.

    Satisfies :class:`~repro.cloud.network.Transport` — one blocking
    :meth:`call` per round trip plus the standard
    :class:`~repro.cloud.network.ChannelStats` accounting — so
    :class:`~repro.cloud.user.DataUser`,
    :class:`~repro.cloud.retry.RetryingChannel`, and
    :class:`~repro.cloud.updates.RemoteIndexMaintainer` work over
    loopback (or a LAN) without modification.  The connection is
    persistent and lazily established; any socket-level failure tears
    it down and surfaces as the matching
    :class:`~repro.errors.TransportError` subclass, and the next call
    reconnects from a clean frame boundary.

    :class:`~repro.cloud.protocol.ErrorResponse` payloads are
    *protocol*, not data: they re-raise client-side as the exception
    class they name, so error semantics match the in-process channel
    (a dead shard raises :class:`~repro.errors.ShardDownError` either
    way).

    Parameters
    ----------
    host / port:
        The :class:`NetServer` to dial.
    timeout_s:
        Socket timeout per blocking operation; an expiry raises
        :class:`~repro.errors.CallTimeoutError` (retryable).
    codec:
        Optional descriptive codec label (mirrors ``Channel``).
    max_frame_bytes:
        Frame-size cap for both directions.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 10.0,
        codec: str | None = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        if timeout_s <= 0:
            raise ParameterError(
                f"timeout_s must be positive, got {timeout_s}"
            )
        self._host = host
        self._port = port
        self._timeout_s = timeout_s
        self._codec = codec
        self._max_frame = max_frame_bytes
        self._stats = ChannelStats()
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._decoder: StreamDecoder | None = None
        # Responses decoded but not yet consumed: one socket read may
        # complete several pipelined frames at once.
        self._frames: deque[bytes] = deque()

    @property
    def stats(self) -> ChannelStats:
        """Traffic counters since construction or last reset."""
        return self._stats

    @property
    def codec(self) -> str | None:
        """The declared wire-codec label (None when unspecified)."""
        return self._codec

    def close(self) -> None:
        """Drop the connection (idempotent; next call reconnects)."""
        with self._lock:
            self._disconnect()

    def __enter__(self) -> "NetworkChannel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing (all under the channel lock) -------------------------------

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._decoder = None
        self._frames.clear()

    def _ensure_connected(self) -> socket.socket:
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self._host, self._port), timeout=self._timeout_s
                )
            except socket.timeout as exc:
                raise CallTimeoutError(
                    f"connect to {self._host}:{self._port} timed out"
                ) from exc
            except OSError as exc:
                raise CallDroppedError(
                    f"connect to {self._host}:{self._port} failed: {exc}"
                ) from exc
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._decoder = StreamDecoder(self._max_frame)
        return self._sock

    def _send_frames(self, requests: Sequence[bytes]) -> None:
        sock = self._ensure_connected()
        try:
            sock.sendall(
                b"".join(
                    encode_frame(request, self._max_frame)
                    for request in requests
                )
            )
        except socket.timeout as exc:
            self._disconnect()
            raise CallTimeoutError("send timed out") from exc
        except OSError as exc:
            self._disconnect()
            raise CallDroppedError(f"send failed: {exc}") from exc

    def _recv_frame(self) -> bytes:
        if self._frames:
            return self._frames.popleft()
        sock = self._sock
        decoder = self._decoder
        assert sock is not None and decoder is not None
        while not self._frames:
            try:
                chunk = sock.recv(65536)
            except socket.timeout as exc:
                self._disconnect()
                raise CallTimeoutError(
                    f"no response within {self._timeout_s}s"
                ) from exc
            except OSError as exc:
                self._disconnect()
                raise CallDroppedError(f"receive failed: {exc}") from exc
            if not chunk:
                self._disconnect()
                raise CallDroppedError("server closed the connection")
            try:
                self._frames.extend(decoder.feed(chunk))
            except ProtocolError as exc:
                # The stream is desynchronized; only a fresh
                # connection restores a frame boundary.
                self._disconnect()
                raise CorruptedResponseError(
                    f"response framing violated: {exc}"
                ) from exc
        return self._frames.popleft()

    @staticmethod
    def _raise_if_error(response: bytes) -> bytes:
        try:
            is_error = peek_kind(response) == "error"
        except ProtocolError:
            is_error = False
        if is_error:
            error = ErrorResponse.from_bytes(response)
            raise _exception_for(error.code, error.detail)
        return response

    # -- Transport surface ---------------------------------------------------

    def call(self, request: bytes) -> bytes:
        """Send ``request``, return the server's response (one RTT).

        Accounting mirrors the in-process channel exactly: a call that
        raises (socket failure *or* an error response) counts as a
        ``failed_calls`` tick and never as response traffic.
        """
        with self._lock:
            self._stats.record_request(len(request))
            try:
                self._send_frames([request])
                response = self._raise_if_error(self._recv_frame())
            except Exception:
                self._stats.record_failure()
                raise
            self._stats.record_response(len(response))
            return response

    def admin(self, section: str) -> bytes:
        """Fetch one admin section over the wire (binary codec).

        ``section`` is one of
        :data:`~repro.cloud.protocol.ADMIN_SECTIONS` —
        ``"prometheus"`` (exposition text), ``"jsonl"`` (the merged
        cluster artifact), or ``"health"`` (a JSON document).  The
        server answers out of band — no admission control, no tracing
        — so a scrape works even while data requests are being shed.
        Raises :class:`~repro.errors.ParameterError` when the server
        runs with observability disabled.
        """
        request = AdminRequest(section=section).to_bytes(CODEC_BINARY)
        response = self.call(request)
        return AdminResponse.from_bytes(response).payload

    def call_many(self, requests: Iterable[bytes]) -> list[bytes]:
        """Serve a batch over one pipelined exchange.

        All requests go out back-to-back before the first response is
        read — one flush, one queue transit per direction — and the
        server's per-connection ordering guarantee puts responses back
        in request order.  If any request failed, the whole batch is
        still drained (keeping the stream synchronized) and the
        earliest-position exception is raised, matching
        :meth:`~repro.cloud.cluster.ClusterServer.handle_many`.
        """
        batch = list(requests)
        if not batch:
            return []
        with self._lock:
            outcomes = self._pipelined(batch)
        for outcome in outcomes:
            if isinstance(outcome, Exception):
                raise outcome
        return [
            outcome for outcome in outcomes if isinstance(outcome, bytes)
        ]

    def call_many_resilient(
        self, requests: Iterable[bytes]
    ) -> PartialResult:
        """Pipelined batch with the cluster's graceful-degradation contract.

        Transport failures (a dead shard's
        :class:`~repro.cloud.protocol.ErrorResponse`, an overload
        rejection) are reported per-position in a
        :class:`~repro.cloud.cluster.PartialResult` — shard ids taken
        from the error payload (``-1`` when the server could not name
        one) — while healthy responses come back normally.
        Non-transport failures (socket loss mid-batch, protocol
        violations) still raise: they cannot be attributed to a shard.
        """
        batch = list(requests)
        with self._lock:
            outcomes = self._pipelined(batch, keep_shards=True)
        responses: list[bytes | None] = []
        failures: list[tuple[int, int, str]] = []
        for position, outcome in enumerate(outcomes):
            if isinstance(outcome, bytes):
                responses.append(outcome)
                continue
            if isinstance(outcome, tuple):
                exc, shard = outcome
                responses.append(None)
                failures.append((position, shard, type(exc).__name__))
                continue
            raise outcome
        return PartialResult(
            responses=tuple(responses),
            missing_shards=tuple(
                sorted({shard for _, shard, _ in failures})
            ),
            failures=tuple(failures),
        )

    def _pipelined(
        self, batch: Sequence[bytes], keep_shards: bool = False
    ) -> list:
        """Send a batch, collect per-position outcomes in order.

        Each outcome is response bytes, an exception, or (with
        ``keep_shards``, for transport failures only)
        ``(exception, shard id)``.  Socket-level failures abort the
        exchange: every unanswered position gets the same exception,
        and the connection is already torn down for reconnection.
        """
        for request in batch:
            self._stats.record_request(len(request))
        outcomes: list = []
        try:
            self._send_frames(batch)
        except TransportError as exc:
            self._stats.record_failure()
            return [exc] * len(batch)
        for _ in batch:
            try:
                response = self._recv_frame()
            except TransportError as exc:
                # The stream is gone; everything unanswered fails the
                # same way.
                failed = len(batch) - len(outcomes)
                for _ in range(failed):
                    self._stats.record_failure()
                outcomes.extend([exc] * failed)
                break
            try:
                is_error = peek_kind(response) == "error"
            except ProtocolError:
                is_error = False
            if not is_error:
                self._stats.record_response(len(response))
                outcomes.append(response)
                continue
            self._stats.record_failure()
            error = ErrorResponse.from_bytes(response)
            exc = _exception_for(error.code, error.detail)
            if keep_shards and isinstance(exc, TransportError):
                outcomes.append(
                    (exc, error.shard if error.shard is not None else -1)
                )
            else:
                outcomes.append(exc)
        return outcomes
