"""Complete-subtree broadcast encryption (NNL subset cover).

The paper's Setup phase hands the trapdoor-generation key to a *group*
of authorized users "by employing off-the-shelf public key cryptography
or more efficient primitive such as broadcast encryption".  This module
implements that more efficient primitive — the complete-subtree method
of Naor-Naor-Lotspiech — so the repository's multi-user story is
complete, including revocation:

* users occupy leaves of a binary tree over ``capacity`` slots; each
  user holds the keys of the ``log2(capacity) + 1`` nodes on its
  root-to-leaf path;
* to address all *non-revoked* users, the owner computes the subset
  cover: the maximal subtrees containing no revoked leaf.  The payload
  is wrapped once per cover node — ``O(r log(N/r))`` ciphertexts for
  ``r`` revocations, independent of the number of authorized users;
* a user decrypts iff one of its path nodes is in the cover, which
  holds exactly when the user is not revoked.

Node keys are PRF-derived from the owner's master key, so the owner
stores nothing per user.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.symmetric import SymmetricCipher
from repro.errors import CryptoError, ParameterError


def _node_key(master: bytes, node: int) -> bytes:
    return hmac.new(
        master, b"bcast|node|" + node.to_bytes(8, "big"), hashlib.sha256
    ).digest()


@dataclass(frozen=True)
class UserKeySet:
    """One user's key material: its slot and root-to-leaf node keys."""

    user_index: int
    node_keys: tuple[tuple[int, bytes], ...]


@dataclass(frozen=True)
class BroadcastCiphertext:
    """A broadcast: the payload wrapped under every cover-node key."""

    wrapped: tuple[tuple[int, bytes], ...]

    @property
    def num_ciphertexts(self) -> int:
        """Cover size — the bandwidth cost of this broadcast."""
        return len(self.wrapped)


class BroadcastEncryption:
    """Complete-subtree broadcast encryption over a fixed user capacity.

    Parameters
    ----------
    master_key:
        The owner's secret; all node keys derive from it.
    capacity:
        Number of user slots; must be a power of two >= 2.
    """

    def __init__(self, master_key: bytes, capacity: int):
        if not master_key:
            raise ParameterError("master key must be non-empty")
        if capacity < 2 or capacity & (capacity - 1):
            raise ParameterError(
                f"capacity must be a power of two >= 2, got {capacity}"
            )
        self._master = bytes(master_key)
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        """Number of user slots."""
        return self._capacity

    # -- tree geometry (heap numbering: root = 1, leaves = N..2N-1) ----

    def _leaf(self, user_index: int) -> int:
        if not 0 <= user_index < self._capacity:
            raise ParameterError(
                f"user index must be in [0, {self._capacity}), got "
                f"{user_index}"
            )
        return self._capacity + user_index

    def _path_to_root(self, node: int) -> list[int]:
        path = []
        while node >= 1:
            path.append(node)
            node //= 2
        return path

    # -- owner side ---------------------------------------------------------

    def user_key_set(self, user_index: int) -> UserKeySet:
        """Issue the path keys for one user slot."""
        path = self._path_to_root(self._leaf(user_index))
        return UserKeySet(
            user_index=user_index,
            node_keys=tuple(
                (node, _node_key(self._master, node)) for node in path
            ),
        )

    def _cover(self, revoked: set[int]) -> list[int]:
        """Complete-subtree cover of all non-revoked leaves."""
        for user_index in revoked:
            self._leaf(user_index)  # validates
        if not revoked:
            return [1]
        if len(revoked) == self._capacity:
            return []
        steiner: set[int] = set()
        for user_index in revoked:
            steiner.update(self._path_to_root(self._leaf(user_index)))
        cover = []
        for node in steiner:
            for child in (2 * node, 2 * node + 1):
                if child < 2 * self._capacity and child not in steiner:
                    cover.append(child)
        return sorted(cover)

    def encrypt(self, payload: bytes, revoked: set[int] | None = None) -> BroadcastCiphertext:
        """Wrap ``payload`` for every currently authorized user."""
        cover = self._cover(set(revoked or ()))
        wrapped = tuple(
            (node, SymmetricCipher(_node_key(self._master, node)).encrypt(payload))
            for node in cover
        )
        return BroadcastCiphertext(wrapped=wrapped)

    # -- user side --------------------------------------------------------------

    @staticmethod
    def decrypt(keys: UserKeySet, broadcast: BroadcastCiphertext) -> bytes:
        """Unwrap a broadcast; raises :class:`CryptoError` if revoked."""
        available = dict(keys.node_keys)
        for node, ciphertext in broadcast.wrapped:
            key = available.get(node)
            if key is not None:
                return SymmetricCipher(key).decrypt(ciphertext)
        raise CryptoError(
            f"user {keys.user_index} is not covered by this broadcast "
            "(revoked or outside the group)"
        )
