"""Packed on-disk posting-list storage engine.

The in-memory :class:`~repro.core.secure_index.SecureIndex` keeps every
encrypted posting entry as a Python ``bytes`` object in a dict of lists
— perfect for the deterministic reference path, but each entry pays
tens of bytes of object overhead and the whole index must be resident
before the first query.  This module is the scale path: a compact
packed file format whose encoding substrate is the same u32
length-prefixed framing as the binary wire codec
(:mod:`repro.cloud.protocol`), loaded via ``mmap`` with *lazy per-term
decode* — a cold query touches only the bytes of the posting block it
needs, and the decoded list feeds straight into the server's ranked
warm cache (:class:`~repro.cloud.server.CachedPostings`).

File layout (version 1)::

    header (48 bytes)
      magic      "RPKI"   4s
      version             u16   (= 1)
      flags               u16   (bit 0: padded_length present)
      zero_pad_bytes      u32   \\
      file_id_bytes       u32    } EntryLayout geometry
      score_bytes         u32   /
      padded_length       u32   (0 when absent)
      num_lists           u64
      table_offset        u64   (absolute offset of the offset table)
      total_entries       u64
    posting blocks, in ascending address order
      u32 block_length || u32 entry_count || entry_count fixed-width
      encrypted entries (``layout.ciphertext_bytes`` each)
    offset table, one row per list, same order as the blocks
      u16 address_length || address || u64 block_offset || u32 entry_count
    trailer magic "RPKE"  4s

Three access paths share the format:

* :class:`PackedIndexWriter` — streaming writer for address-sorted
  input (constant memory beyond the offset table);
* :class:`SpillingPackWriter` — constant-memory builds from *unsorted*
  input: buffers a bounded run of lists, spills each run sorted to a
  temporary segment file, and merges the sorted runs at close — the
  path that scales index construction past RAM;
* :class:`PackedIndexStore` — the read-only ``mmap`` view (lazy
  per-term decode); :func:`load_packed_index` is its eager non-mmap
  sibling that materializes a plain :class:`SecureIndex` (the
  deterministic dict reference, and the bench's comparison arm).

:class:`PackedStore` stacks mutability on top: an append-only **delta
log** (same framing) absorbs ``add_list``/``replace_list`` calls from
the update protocol (:mod:`repro.cloud.updates`), replayed into an
overlay on reload, and :meth:`PackedStore.compact` folds base + deltas
into a fresh packed file.  The class presents the full server-side
``SecureIndex`` surface, so :class:`~repro.cloud.server.CloudServer`
and :class:`~repro.cloud.cluster.ClusterServer` host it unchanged.
"""

from __future__ import annotations

import heapq
import mmap
import os
import tempfile
import threading
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, Sequence

from repro.cloud.protocol import encode_frame
from repro.core.secure_index import EntryLayout, SecureIndex
from repro.crypto.symmetric import random_bytes_like_ciphertext
from repro.errors import IndexError_, ParameterError

#: Leading magic of a packed index file.
PACKED_MAGIC = b"RPKI"

#: Trailing magic (truncation sentinel) of a packed index file.
PACKED_TRAILER = b"RPKE"

#: Leading magic of a delta-log file.
DELTA_MAGIC = b"RPKD"

#: Current packed-format version.
PACKED_VERSION = 1

#: Fixed header width in bytes.
HEADER_BYTES = 48

#: Delta-log record operations.
DELTA_ADD = 1
DELTA_REPLACE = 2

#: Default buffered entries before :class:`SpillingPackWriter` spills
#: a sorted run to disk (bounds builder memory, not corpus size).
DEFAULT_RUN_ENTRIES = 65536

#: Cap on one framed posting block / delta record.  Wider than the
#: wire codec's 16 MB default: a single unpadded posting list over a
#: million-document corpus can legitimately exceed a wire frame.
MAX_BLOCK_BYTES = 2**31 - 1

_FLAG_PADDED = 1


def _pack_header(
    layout: EntryLayout,
    padded_length: int | None,
    num_lists: int,
    table_offset: int,
    total_entries: int,
) -> bytes:
    flags = _FLAG_PADDED if padded_length is not None else 0
    return b"".join(
        (
            PACKED_MAGIC,
            PACKED_VERSION.to_bytes(2, "big"),
            flags.to_bytes(2, "big"),
            layout.zero_pad_bytes.to_bytes(4, "big"),
            layout.file_id_bytes.to_bytes(4, "big"),
            layout.score_bytes.to_bytes(4, "big"),
            (padded_length or 0).to_bytes(4, "big"),
            num_lists.to_bytes(8, "big"),
            table_offset.to_bytes(8, "big"),
            total_entries.to_bytes(8, "big"),
        )
    )


def _parse_header(
    header: bytes,
) -> tuple[EntryLayout, int | None, int, int, int]:
    """Validate + split a header.

    Returns (layout, padded_length, num_lists, table_offset, entries).
    """
    if len(header) < HEADER_BYTES:
        raise IndexError_("packed index header is truncated")
    if header[:4] != PACKED_MAGIC:
        raise IndexError_(
            f"not a packed index (bad magic {header[:4]!r})"
        )
    version = int.from_bytes(header[4:6], "big")
    if version != PACKED_VERSION:
        raise IndexError_(
            f"unsupported packed index version {version} "
            f"(this build reads version {PACKED_VERSION})"
        )
    flags = int.from_bytes(header[6:8], "big")
    try:
        layout = EntryLayout(
            zero_pad_bytes=int.from_bytes(header[8:12], "big"),
            file_id_bytes=int.from_bytes(header[12:16], "big"),
            score_bytes=int.from_bytes(header[16:20], "big"),
        )
    except ParameterError as exc:
        raise IndexError_(f"corrupt packed layout fields: {exc}") from exc
    padded = int.from_bytes(header[20:24], "big")
    padded_length = padded if flags & _FLAG_PADDED else None
    if flags & _FLAG_PADDED and padded < 1:
        raise IndexError_("padded flag set but padded_length is zero")
    num_lists = int.from_bytes(header[24:32], "big")
    table_offset = int.from_bytes(header[32:40], "big")
    total_entries = int.from_bytes(header[40:48], "big")
    return layout, padded_length, num_lists, table_offset, total_entries


def _check_entries(
    layout: EntryLayout, entries: Sequence[bytes]
) -> None:
    width = layout.ciphertext_bytes
    for entry in entries:
        if len(entry) != width:
            raise ParameterError(
                f"encrypted entry width {len(entry)} != expected {width}"
            )


def _pad_entries(
    entries: list[bytes], padded_length: int | None, width: int
) -> list[bytes]:
    """The same padding contract as ``SecureIndex.add_list``."""
    if padded_length is None:
        return entries
    if len(entries) > padded_length:
        raise ParameterError(
            f"list of {len(entries)} entries exceeds padded length "
            f"{padded_length}"
        )
    while len(entries) < padded_length:
        entries.append(random_bytes_like_ciphertext(width))
    return entries


class PackedIndexWriter:
    """Streaming writer for address-sorted posting lists.

    Feed lists in strictly ascending address order via
    :meth:`write_list`; blocks stream straight to disk, so resident
    memory is one posting list plus the (small) offset table.  The
    header is back-patched and the table + trailer appended on
    :meth:`close`.
    """

    def __init__(
        self,
        path: str | Path,
        layout: EntryLayout,
        padded_length: int | None = None,
    ):
        if padded_length is not None and padded_length < 1:
            raise ParameterError(
                f"padded_length must be >= 1, got {padded_length}"
            )
        self._path = Path(path)
        self._layout = layout
        self._padded_length = padded_length
        self._file: BinaryIO | None = self._path.open("wb")
        self._file.write(b"\x00" * HEADER_BYTES)
        self._table: list[tuple[bytes, int, int]] = []
        self._previous: bytes | None = None
        self._total_entries = 0

    @property
    def lists_written(self) -> int:
        """Posting lists streamed so far."""
        return len(self._table)

    @property
    def entries_written(self) -> int:
        """Encrypted entries streamed so far (padding included)."""
        return self._total_entries

    def write_list(
        self, address: bytes, encrypted_entries: Iterable[bytes]
    ) -> None:
        """Append one posting block (addresses must strictly ascend)."""
        if self._file is None:
            raise IndexError_("writer is closed")
        if not address or len(address) > 0xFFFF:
            raise ParameterError(
                "address must be 1..65535 bytes"
            )
        if self._previous is not None and address <= self._previous:
            raise IndexError_(
                "packed writer requires strictly ascending addresses "
                f"(got {address.hex()} after {self._previous.hex()})"
            )
        entries = list(encrypted_entries)
        _check_entries(self._layout, entries)
        entries = _pad_entries(
            entries, self._padded_length, self._layout.ciphertext_bytes
        )
        offset = self._file.tell()
        payload = len(entries).to_bytes(4, "big") + b"".join(entries)
        self._file.write(encode_frame(payload, MAX_BLOCK_BYTES))
        self._table.append((address, offset, len(entries)))
        self._previous = address
        self._total_entries += len(entries)

    def close(self) -> Path:
        """Flush the table + trailer, back-patch the header; idempotent."""
        if self._file is None:
            return self._path
        table_offset = self._file.tell()
        for address, offset, count in self._table:
            self._file.write(len(address).to_bytes(2, "big"))
            self._file.write(address)
            self._file.write(offset.to_bytes(8, "big"))
            self._file.write(count.to_bytes(4, "big"))
        self._file.write(PACKED_TRAILER)
        self._file.seek(0)
        self._file.write(
            _pack_header(
                self._layout,
                self._padded_length,
                len(self._table),
                table_offset,
                self._total_entries,
            )
        )
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._file = None
        return self._path

    def __enter__(self) -> "PackedIndexWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SpillingPackWriter:
    """Constant-memory packed builds from *unsorted* posting lists.

    Lists arrive in any order via :meth:`add_list`.  At most
    ``run_entries`` encrypted entries are buffered; when the buffer
    fills, the buffered lists are sorted by address and spilled to a
    temporary run file (same block framing as the packed body).  On
    :meth:`close` the sorted runs are k-way merged
    (:func:`heapq.merge`) into a :class:`PackedIndexWriter`, so the
    peak memory of building an index of any size is one run plus one
    posting list — corpora larger than RAM pack in one pass.
    """

    def __init__(
        self,
        path: str | Path,
        layout: EntryLayout,
        padded_length: int | None = None,
        run_entries: int = DEFAULT_RUN_ENTRIES,
        tmp_dir: str | Path | None = None,
    ):
        if run_entries < 1:
            raise ParameterError(
                f"run_entries must be >= 1, got {run_entries}"
            )
        self._path = Path(path)
        self._layout = layout
        self._padded_length = padded_length
        self._run_entries = run_entries
        self._tmp_dir = Path(tmp_dir) if tmp_dir is not None else None
        self._buffer: dict[bytes, list[bytes]] = {}
        self._buffered_entries = 0
        self._runs: list[Path] = []
        self._closed = False

    @property
    def runs_spilled(self) -> int:
        """Sorted run files written so far."""
        return len(self._runs)

    def add_list(
        self, address: bytes, encrypted_entries: Iterable[bytes]
    ) -> None:
        """Buffer one posting list (any address order; padding applied)."""
        if self._closed:
            raise IndexError_("writer is closed")
        if address in self._buffer:
            raise IndexError_("duplicate index address")
        entries = list(encrypted_entries)
        _check_entries(self._layout, entries)
        entries = _pad_entries(
            entries, self._padded_length, self._layout.ciphertext_bytes
        )
        self._buffer[address] = entries
        self._buffered_entries += len(entries)
        if self._buffered_entries >= self._run_entries:
            self._spill()

    def _spill(self) -> None:
        if not self._buffer:
            return
        descriptor, name = tempfile.mkstemp(
            prefix="rpk-run-",
            dir=str(self._tmp_dir) if self._tmp_dir is not None else None,
        )
        run_path = Path(name)
        with os.fdopen(descriptor, "wb") as run:
            for address in sorted(self._buffer):
                entries = self._buffer[address]
                run.write(len(address).to_bytes(2, "big"))
                run.write(address)
                run.write(len(entries).to_bytes(4, "big"))
                for entry in entries:
                    run.write(entry)
        self._runs.append(run_path)
        self._buffer = {}
        self._buffered_entries = 0

    def _iter_run(self, run_path: Path) -> Iterator[tuple[bytes, list[bytes]]]:
        width = self._layout.ciphertext_bytes
        with run_path.open("rb") as run:
            while True:
                prefix = run.read(2)
                if not prefix:
                    return
                address = run.read(int.from_bytes(prefix, "big"))
                count = int.from_bytes(run.read(4), "big")
                yield address, [run.read(width) for _ in range(count)]

    def close(self) -> Path:
        """Merge the sorted runs into the final packed file; idempotent."""
        if self._closed:
            return self._path
        self._spill()
        writer = PackedIndexWriter(
            self._path, self._layout, padded_length=self._padded_length
        )
        try:
            merged: Iterable[tuple[bytes, list[bytes]]] = heapq.merge(
                *(self._iter_run(run) for run in self._runs),
                key=lambda item: item[0],
            )
            for address, entries in merged:
                # Runs hold already-padded lists; re-padding is a no-op.
                writer.write_list(address, entries)
        finally:
            writer.close()
            for run_path in self._runs:
                run_path.unlink(missing_ok=True)
            self._runs = []
            self._closed = True
        return self._path

    def __enter__(self) -> "SpillingPackWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def pack_index(index, path: str | Path) -> Path:
    """Pack any index exposing ``layout``/``padded_length``/``items()``.

    Works for :class:`~repro.core.secure_index.SecureIndex`, a
    :class:`~repro.cloud.cluster.ShardedIndex`, or another store —
    ``items()`` already yields in address order, so this streams
    straight through :class:`PackedIndexWriter`.
    """
    with PackedIndexWriter(
        path, index.layout, padded_length=index.padded_length
    ) as writer:
        for address, entries in index.items():
            writer.write_list(address, entries)
    return Path(path)


def load_packed_index(path: str | Path) -> SecureIndex:
    """Eagerly materialize a packed file as an in-memory dict index.

    The deterministic reference arm: sequential buffered reads, no
    ``mmap``, every entry decoded into its own ``bytes`` object — the
    memory shape the packed format exists to avoid, kept loadable so
    equivalence (and the storage bench's resident-memory comparison)
    can always be re-checked against the same on-disk bytes.
    """
    path = Path(path)
    with path.open("rb") as packed:
        layout, padded_length, num_lists, table_offset, _ = _parse_header(
            packed.read(HEADER_BYTES)
        )
        size = path.stat().st_size
        table = _read_table(packed, size, num_lists, table_offset)
        index = SecureIndex(layout, padded_length=padded_length)
        width = layout.ciphertext_bytes
        for address, offset, count in table:
            packed.seek(offset)
            block = packed.read(8 + count * width)
            _check_block(block, count, width, address)
            index._tree.insert(
                address,
                [
                    block[8 + position * width : 8 + (position + 1) * width]
                    for position in range(count)
                ],
            )
    return index


def _read_table(
    packed: BinaryIO, size: int, num_lists: int, table_offset: int
) -> list[tuple[bytes, int, int]]:
    """Read + bounds-check the offset table of an open packed file."""
    if size < HEADER_BYTES + len(PACKED_TRAILER):
        raise IndexError_("packed index file is truncated")
    if not HEADER_BYTES <= table_offset <= size - len(PACKED_TRAILER):
        raise IndexError_("packed index table offset out of bounds")
    packed.seek(table_offset)
    raw = packed.read(size - table_offset)
    if raw[-4:] != PACKED_TRAILER:
        raise IndexError_(
            "packed index trailer missing (truncated or corrupt file)"
        )
    raw = raw[:-4]
    table: list[tuple[bytes, int, int]] = []
    cursor = 0
    previous: bytes | None = None
    for _ in range(num_lists):
        if cursor + 2 > len(raw):
            raise IndexError_("packed index table is truncated")
        address_length = int.from_bytes(raw[cursor : cursor + 2], "big")
        cursor += 2
        end = cursor + address_length + 12
        if address_length == 0 or end > len(raw):
            raise IndexError_("packed index table is truncated")
        address = raw[cursor : cursor + address_length]
        cursor += address_length
        offset = int.from_bytes(raw[cursor : cursor + 8], "big")
        count = int.from_bytes(raw[cursor + 8 : cursor + 12], "big")
        cursor += 12
        if previous is not None and address <= previous:
            raise IndexError_("packed index table addresses not ascending")
        if not HEADER_BYTES <= offset < table_offset:
            raise IndexError_("packed block offset out of bounds")
        previous = address
        table.append((address, offset, count))
    if cursor != len(raw):
        raise IndexError_("trailing bytes after packed index table")
    return table


def _check_block(
    block: bytes, count: int, width: int, address: bytes
) -> None:
    if len(block) != 8 + count * width:
        raise IndexError_(
            f"posting block for {address.hex()} is truncated"
        )
    length = int.from_bytes(block[:4], "big")
    stored = int.from_bytes(block[4:8], "big")
    if length != 4 + count * width or stored != count:
        raise IndexError_(
            f"posting block for {address.hex()} disagrees with the "
            "offset table (corrupt file)"
        )


class PackedIndexStore:
    """Read-only ``mmap`` view of a packed index file.

    Opening parses the header and the per-term offset table (small:
    one row per keyword, no entry bytes); posting blocks stay on disk
    until :meth:`lookup` slices exactly one of them out of the map —
    the lazy per-term decode that keeps resident memory proportional
    to the queried working set, not the corpus.

    Presents the server-side ``SecureIndex`` read surface (``layout``,
    ``padded_length``, ``lookup``, ``items``, ``num_lists``,
    ``size_bytes``, ``average_list_size_bytes``).
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._file = self._path.open("rb")
        try:
            (
                self._layout,
                self._padded_length,
                num_lists,
                self._table_offset,
                self._total_entries,
            ) = _parse_header(self._file.read(HEADER_BYTES))
            size = self._path.stat().st_size
            table = _read_table(
                self._file, size, num_lists, self._table_offset
            )
            counted = sum(count for _, _, count in table)
            if counted != self._total_entries:
                raise IndexError_(
                    f"header promises {self._total_entries} entries, "
                    f"table holds {counted}"
                )
            self._addresses = [address for address, _, _ in table]
            self._blocks = {
                address: (offset, count)
                for address, offset, count in table
            }
            self._mmap: mmap.mmap | None = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
            if hasattr(mmap, "MADV_RANDOM"):
                # Point lookups, not scans: without this the kernel's
                # readahead pages in ~128 KB around every cold fault,
                # dragging most of the file into RSS and defeating the
                # working-set-proportional memory story.
                self._mmap.madvise(mmap.MADV_RANDOM)
        except Exception:
            self._file.close()
            raise

    # -- geometry ----------------------------------------------------------

    @property
    def path(self) -> Path:
        """The backing packed file."""
        return self._path

    @property
    def layout(self) -> EntryLayout:
        """The entry geometry."""
        return self._layout

    @property
    def padded_length(self) -> int | None:
        """``nu`` when padding is enabled, else None."""
        return self._padded_length

    @property
    def num_lists(self) -> int:
        """Number of posting lists."""
        return len(self._addresses)

    @property
    def total_entries(self) -> int:
        """Total encrypted entries across all blocks."""
        return self._total_entries

    # -- read surface ------------------------------------------------------

    def addresses(self) -> Iterator[bytes]:
        """All addresses in ascending order (no block bytes touched)."""
        return iter(self._addresses)

    def lookup(self, address: bytes) -> list[bytes] | None:
        """Decode exactly one posting block out of the map (or None)."""
        located = self._blocks.get(address)
        if located is None:
            return None
        if self._mmap is None:
            raise IndexError_("packed store is closed")
        offset, count = located
        width = self._layout.ciphertext_bytes
        block = self._mmap[offset : offset + 8 + count * width]
        _check_block(block, count, width, address)
        return [
            block[8 + position * width : 8 + (position + 1) * width]
            for position in range(count)
        ]

    def items(self) -> Iterator[tuple[bytes, list[bytes]]]:
        """All lists in address order, each block decoded on demand."""
        for address in self._addresses:
            entries = self.lookup(address)
            assert entries is not None
            yield address, entries

    def size_bytes(self) -> int:
        """Total ciphertext bytes stored (addresses excluded)."""
        return self._total_entries * self._layout.ciphertext_bytes

    def average_list_size_bytes(self) -> float:
        """Mean per-keyword list size in bytes."""
        if not self._addresses:
            raise IndexError_("index is empty")
        return self.size_bytes() / len(self._addresses)

    def to_secure_index(self) -> SecureIndex:
        """Materialize the whole file as an in-memory dict index."""
        index = SecureIndex(
            self._layout, padded_length=self._padded_length
        )
        for address, entries in self.items():
            index._tree.insert(address, entries)
        return index

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Unmap and close the backing file (idempotent)."""
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
            self._file.close()

    def __enter__(self) -> "PackedIndexStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PackedStore:
    """A mutable, durable index store: ``mmap`` base + delta log.

    The full server-side ``SecureIndex`` surface over a packed base
    file.  Reads go to an in-memory overlay first (lists touched by
    updates since the last compaction), then to the lazy ``mmap``
    base.  Every ``add_list``/``replace_list`` — exactly the calls the
    update protocol issues — is appended to the **delta log** before
    the overlay is updated, so reopening the store replays the log and
    recovers every acknowledged mutation; :meth:`compact` folds base
    plus overlay into a fresh packed file (written beside, atomically
    swapped via ``os.replace``) and truncates the log.

    Delta-log layout::

        magic "RPKD" || u16 version || u16 reserved
        records: u32 record_length || u8 op (1=add, 2=replace)
                 || u16 address_length || address
                 || u32 entry_count || entries (fixed width)

    Mutations are serialized on an internal lock; the hosting
    :class:`~repro.cloud.server.CloudServer` additionally serializes
    whole requests, matching the dict path's concurrency contract.
    """

    def __init__(
        self,
        packed_path: str | Path,
        delta_path: str | Path | None = None,
    ):
        self._packed_path = Path(packed_path)
        self._delta_path = (
            Path(delta_path)
            if delta_path is not None
            else self._packed_path.with_name(
                self._packed_path.name + ".delta"
            )
        )
        self._base = PackedIndexStore(self._packed_path)
        self._overlay: dict[bytes, list[bytes]] = {}
        self._added: set[bytes] = set()
        self._pending_records = 0
        self._lock = threading.Lock()
        self._replay_delta()
        self._delta = self._delta_path.open("ab")

    # -- delta log ---------------------------------------------------------

    def _replay_delta(self) -> None:
        if not self._delta_path.exists():
            return
        raw = self._delta_path.read_bytes()
        if not raw:
            return
        if len(raw) < 8 or raw[:4] != DELTA_MAGIC:
            raise IndexError_(
                f"not a delta log (bad magic in {self._delta_path})"
            )
        version = int.from_bytes(raw[4:6], "big")
        if version != PACKED_VERSION:
            raise IndexError_(
                f"unsupported delta-log version {version}"
            )
        width = self._base.layout.ciphertext_bytes
        cursor = 8
        while cursor < len(raw):
            if cursor + 4 > len(raw):
                raise IndexError_("delta log is truncated (record length)")
            record_length = int.from_bytes(raw[cursor : cursor + 4], "big")
            record = raw[cursor + 4 : cursor + 4 + record_length]
            if len(record) != record_length or record_length < 7:
                raise IndexError_("delta log is truncated (record body)")
            cursor += 4 + record_length
            op = record[0]
            address_length = int.from_bytes(record[1:3], "big")
            address = record[3 : 3 + address_length]
            body = record[3 + address_length :]
            if len(address) != address_length or len(body) < 4:
                raise IndexError_("delta record is malformed")
            count = int.from_bytes(body[:4], "big")
            if len(body) != 4 + count * width:
                raise IndexError_("delta record entry bytes are torn")
            entries = [
                body[4 + position * width : 4 + (position + 1) * width]
                for position in range(count)
            ]
            if op == DELTA_ADD:
                self._added.add(address)
            elif op != DELTA_REPLACE:
                raise IndexError_(f"unknown delta op {op}")
            self._overlay[address] = entries
            self._pending_records += 1

    def _append_record(
        self, op: int, address: bytes, entries: list[bytes]
    ) -> None:
        if self._delta.tell() == 0:
            self._delta.write(
                DELTA_MAGIC + PACKED_VERSION.to_bytes(2, "big") + b"\x00\x00"
            )
        record = bytearray()
        record.append(op)
        record += len(address).to_bytes(2, "big")
        record += address
        record += len(entries).to_bytes(4, "big")
        for entry in entries:
            record += entry
        self._delta.write(encode_frame(bytes(record), MAX_BLOCK_BYTES))
        self._delta.flush()
        os.fsync(self._delta.fileno())
        self._pending_records += 1

    @property
    def pending_delta_records(self) -> int:
        """Logged mutations not yet folded by :meth:`compact`."""
        return self._pending_records

    # -- geometry ----------------------------------------------------------

    @property
    def packed_path(self) -> Path:
        """The base packed file."""
        return self._packed_path

    @property
    def delta_path(self) -> Path:
        """The append-only delta log."""
        return self._delta_path

    @property
    def layout(self) -> EntryLayout:
        """The entry geometry."""
        return self._base.layout

    @property
    def padded_length(self) -> int | None:
        """``nu`` when padding is enabled, else None."""
        return self._base.padded_length

    @property
    def num_lists(self) -> int:
        """Posting lists across base + overlay."""
        return self._base.num_lists + len(self._added)

    # -- SecureIndex surface ----------------------------------------------

    def addresses(self) -> Iterator[bytes]:
        """All addresses in ascending order (overlay merged in)."""
        if not self._added:
            return self._base.addresses()
        return iter(
            sorted(set(self._base.addresses()) | self._added)
        )

    def lookup(self, address: bytes) -> list[bytes] | None:
        """Overlay first, then the lazy ``mmap`` base."""
        overlaid = self._overlay.get(address)
        if overlaid is not None:
            return list(overlaid)
        return self._base.lookup(address)

    def __contains__(self, address: bytes) -> bool:
        return (
            address in self._overlay
            or self._base.lookup(address) is not None
        )

    def add_list(
        self, address: bytes, encrypted_entries: list[bytes]
    ) -> None:
        """Store a new posting list (logged, padded like the dict path)."""
        with self._lock:
            if address in self:
                raise IndexError_("duplicate index address")
            _check_entries(self.layout, encrypted_entries)
            entries = _pad_entries(
                list(encrypted_entries),
                self.padded_length,
                self.layout.ciphertext_bytes,
            )
            self._append_record(DELTA_ADD, address, entries)
            self._overlay[address] = entries
            self._added.add(address)

    def replace_list(
        self, address: bytes, encrypted_entries: list[bytes]
    ) -> None:
        """Replace an existing posting list (logged)."""
        with self._lock:
            if address not in self:
                raise IndexError_("cannot replace a missing address")
            _check_entries(self.layout, encrypted_entries)
            entries = list(encrypted_entries)
            self._append_record(DELTA_REPLACE, address, entries)
            self._overlay[address] = entries

    def items(self) -> Iterator[tuple[bytes, list[bytes]]]:
        """All lists in address order (overlay shadowing the base)."""
        for address in self.addresses():
            entries = self.lookup(address)
            assert entries is not None
            yield address, entries

    def size_bytes(self) -> int:
        """Total ciphertext bytes across base + overlay."""
        width = self.layout.ciphertext_bytes
        total = self._base.size_bytes()
        for address, entries in self._overlay.items():
            total += len(entries) * width
            if address not in self._added:
                base_entries = self._base.lookup(address)
                assert base_entries is not None
                total -= len(base_entries) * width
        return total

    def average_list_size_bytes(self) -> float:
        """Mean per-keyword list size in bytes."""
        if self.num_lists == 0:
            raise IndexError_("index is empty")
        return self.size_bytes() / self.num_lists

    def to_secure_index(self) -> SecureIndex:
        """Materialize base + overlay as an in-memory dict index."""
        index = SecureIndex(self.layout, padded_length=self.padded_length)
        for address, entries in self.items():
            index._tree.insert(address, list(entries))
        return index

    # -- compaction --------------------------------------------------------

    def compact(self) -> int:
        """Fold base + deltas into a fresh packed file; returns records folded.

        Writes the merged index to a sibling temporary file, swaps it
        over the base with ``os.replace`` (atomic on POSIX), truncates
        the delta log, and reopens the ``mmap`` — readers of *this*
        store see the same logical contents before and after.
        """
        with self._lock:
            folded = self._pending_records
            if folded == 0:
                return 0
            compact_path = self._packed_path.with_name(
                self._packed_path.name + ".compact"
            )
            with PackedIndexWriter(
                compact_path, self.layout, padded_length=self.padded_length
            ) as writer:
                for address, entries in self.items():
                    writer.write_list(address, entries)
            self._base.close()
            os.replace(compact_path, self._packed_path)
            self._delta.close()
            self._delta_path.unlink(missing_ok=True)
            self._delta = self._delta_path.open("ab")
            self._base = PackedIndexStore(self._packed_path)
            self._overlay = {}
            self._added = set()
            self._pending_records = 0
            return folded

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the map and the delta log (idempotent)."""
        self._base.close()
        if not self._delta.closed:
            self._delta.close()

    def __enter__(self) -> "PackedStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
