"""The data owner ``O`` (Fig. 1): Setup phase orchestration.

The owner holds the master key material, analyzes and indexes the
collection locally, encrypts files, builds the secure index, and
uploads both to the cloud.  Afterwards it can authorize users by
handing them the trapdoor-generation keys and the file-decryption key
(the paper delegates this distribution to off-the-shelf public-key or
broadcast encryption; we model the result — the credential bundle).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.storage import BlobStore
from repro.core.basic_scheme import BasicRankedSSE
from repro.core.rsse import EfficientRSSE
from repro.core.secure_index import SecureIndex
from repro.corpus.loader import Document
from repro.crypto.keys import SchemeKey
from repro.crypto.prf import generate_key
from repro.crypto.symmetric import SymmetricCipher
from repro.errors import ParameterError
from repro.ir.analyzer import Analyzer
from repro.ir.inverted_index import InvertedIndex


@dataclass(frozen=True)
class UserCredentials:
    """What an authorized user receives from the owner.

    Attributes
    ----------
    scheme_key:
        Key bundle for trapdoor generation.  For the efficient scheme
        this *excludes* ``z`` (users never decrypt scores); for the
        basic scheme it includes ``z`` (users rank client-side).
    file_key:
        The file-collection encryption key, required to read retrieved
        files in either scheme.
    """

    scheme_key: SchemeKey
    file_key: bytes


@dataclass(frozen=True)
class Outsourcing:
    """The owner's upload: index + encrypted collection.

    ``secure_index`` is typed as the in-memory reference index, but
    the loaders in :mod:`repro.cloud.persistence` may populate it with
    any object carrying the same server surface — packed deployments
    come back as a lazy :class:`~repro.cloud.store.PackedStore`.
    """

    secure_index: SecureIndex
    blob_store: BlobStore


class DataOwner:
    """Runs Setup for either scheme over a document collection.

    Parameters
    ----------
    scheme:
        A :class:`BasicRankedSSE` or :class:`EfficientRSSE` instance.
    analyzer:
        The text pipeline; the same instance (configuration) must be
        used by users when normalizing query keywords.
    """

    def __init__(
        self,
        scheme: BasicRankedSSE | EfficientRSSE,
        analyzer: Analyzer | None = None,
    ):
        self._scheme = scheme
        self._analyzer = analyzer if analyzer is not None else Analyzer()
        self._key = scheme.keygen()
        self._file_key = generate_key()
        self._plain_index = InvertedIndex()
        self._quantizer = None

    @property
    def analyzer(self) -> Analyzer:
        """The owner's analysis pipeline (shared with users)."""
        return self._analyzer

    @property
    def key(self) -> SchemeKey:
        """The owner's full key bundle (never leaves the owner)."""
        return self._key

    @property
    def plain_index(self) -> InvertedIndex:
        """The owner's local plaintext index."""
        return self._plain_index

    @property
    def quantizer(self):
        """The fitted score quantizer (efficient scheme, post-setup).

        Retained because incremental updates must quantize new scores
        with the original scale; None before :meth:`setup` or for the
        basic scheme.
        """
        return self._quantizer

    @property
    def file_key(self) -> bytes:
        """The file-collection encryption key (owner + authorized users)."""
        return self._file_key

    def setup(self, documents: list[Document]) -> Outsourcing:
        """Run the full Setup phase: index, encrypt, package for upload."""
        if not documents:
            raise ParameterError("cannot outsource an empty collection")
        for document in documents:
            self._plain_index.add_document(
                document.doc_id, self._analyzer.analyze(document.text)
            )
        if isinstance(self._scheme, EfficientRSSE):
            built = self._scheme.build_index(self._key, self._plain_index)
            secure_index = built.secure_index
            self._quantizer = built.quantizer
        else:
            secure_index = self._scheme.build_index(self._key, self._plain_index)
        blob_store = BlobStore()
        file_cipher = SymmetricCipher(self._file_key)
        for document in documents:
            blob_store.put(
                document.doc_id,
                file_cipher.encrypt(document.text.encode("utf-8")),
            )
        return Outsourcing(secure_index=secure_index, blob_store=blob_store)

    def authorize_user(self) -> UserCredentials:
        """Issue credentials for one authorized user.

        The efficient scheme's users do not receive ``z`` — server-side
        ranking means clients never touch scores.  Basic-scheme users
        need ``z`` to decrypt ``E_z(S)`` and rank locally.
        """
        if isinstance(self._scheme, EfficientRSSE):
            scheme_key = self._key.trapdoor_only()
        else:
            scheme_key = self._key
        return UserCredentials(scheme_key=scheme_key, file_key=self._file_key)
