"""On-disk persistence for deployments.

A real outsourcing is not an in-memory object: the owner uploads bytes
and the server stores bytes.  This module lays a deployment out on
disk so it can be built once and searched across process restarts (the
CLI uses it):

    <root>/
      manifest.json      scheme kind + parameters + counts
      index.bin          serialized SecureIndex
      blobs/<doc_id>     encrypted file payloads

Keys are *not* stored in the deployment directory (they belong to the
owner/users, not the server); :func:`save_key` / :func:`load_key`
handle them separately.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cloud.cluster import ShardedIndex
from repro.cloud.owner import Outsourcing, UserCredentials
from repro.cloud.storage import BlobStore
from repro.core.secure_index import SecureIndex
from repro.crypto.keys import SchemeKey
from repro.errors import ProtocolError

_MANIFEST = "manifest.json"
_INDEX = "index.bin"
_BLOBS = "blobs"
_SHARDS = "shards"


def _safe_blob_name(doc_id: str) -> str:
    """Filesystem-safe encoding of a document id."""
    return doc_id.encode("utf-8").hex()


def _blob_id_from_name(name: str) -> str:
    return bytes.fromhex(name).decode("utf-8")


def save_outsourcing(
    root: str | Path, outsourcing: Outsourcing, scheme_kind: str
) -> None:
    """Write a deployment directory (overwrites existing contents)."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    (root / _INDEX).write_bytes(outsourcing.secure_index.serialize())
    blob_dir = root / _BLOBS
    blob_dir.mkdir(exist_ok=True)
    for doc_id in outsourcing.blob_store.ids():
        (blob_dir / _safe_blob_name(doc_id)).write_bytes(
            outsourcing.blob_store.get(doc_id)
        )
    manifest = {
        "scheme": scheme_kind,
        "num_lists": outsourcing.secure_index.num_lists,
        "num_blobs": len(outsourcing.blob_store),
        "index_bytes": outsourcing.secure_index.size_bytes(),
    }
    (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))


def load_outsourcing(root: str | Path) -> tuple[Outsourcing, str]:
    """Load a deployment directory; returns (outsourcing, scheme kind)."""
    root = Path(root)
    manifest_path = root / _MANIFEST
    if not manifest_path.is_file():
        raise ProtocolError(f"no deployment manifest under {root}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"corrupt manifest: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ProtocolError("manifest is not a JSON object")
    if manifest.get("sharded"):
        raise ProtocolError(
            f"{root} holds a sharded deployment; load it with "
            "load_sharded_outsourcing()"
        )
    secure_index = SecureIndex.deserialize((root / _INDEX).read_bytes())
    blob_store = BlobStore()
    blob_dir = root / _BLOBS
    if blob_dir.is_dir():
        for blob_path in sorted(blob_dir.iterdir()):
            blob_store.put(
                _blob_id_from_name(blob_path.name), blob_path.read_bytes()
            )
    expected = manifest.get("num_blobs")
    if expected is not None and expected != len(blob_store):
        raise ProtocolError(
            f"manifest expects {expected} blobs, found {len(blob_store)}"
        )
    return (
        Outsourcing(secure_index=secure_index, blob_store=blob_store),
        str(manifest.get("scheme", "rsse")),
    )


def save_sharded_outsourcing(
    root: str | Path,
    sharded_index: ShardedIndex,
    blob_store: BlobStore,
    scheme_kind: str,
) -> None:
    """Write a sharded deployment directory.

    Layout mirrors :func:`save_outsourcing`, with the index split as
    the cluster serves it::

        <root>/
          manifest.json            (``"sharded": true`` + placement seed)
          shards/shard-<i>.bin     one serialized SecureIndex per shard
          blobs/<doc_id>           encrypted file payloads

    The placement seed lands in the manifest so a reload routes every
    address to the same shard; :meth:`ShardedIndex.from_shards`
    revalidates placement at load time.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    shard_dir = root / _SHARDS
    shard_dir.mkdir(exist_ok=True)
    for shard_id, shard in enumerate(sharded_index.shards):
        (shard_dir / f"shard-{shard_id}.bin").write_bytes(shard.serialize())
    blob_dir = root / _BLOBS
    blob_dir.mkdir(exist_ok=True)
    for doc_id in blob_store.ids():
        (blob_dir / _safe_blob_name(doc_id)).write_bytes(
            blob_store.get(doc_id)
        )
    manifest = {
        "scheme": scheme_kind,
        "sharded": True,
        "num_shards": sharded_index.num_shards,
        "shard_seed": sharded_index.shard_seed.hex(),
        "num_lists": sharded_index.num_lists,
        "num_blobs": len(blob_store),
        "index_bytes": sharded_index.size_bytes(),
    }
    (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))


def load_sharded_outsourcing(
    root: str | Path,
) -> tuple[ShardedIndex, BlobStore, str]:
    """Load a sharded deployment; returns (index, blobs, scheme kind)."""
    root = Path(root)
    manifest_path = root / _MANIFEST
    if not manifest_path.is_file():
        raise ProtocolError(f"no deployment manifest under {root}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"corrupt manifest: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ProtocolError("manifest is not a JSON object")
    if not manifest.get("sharded"):
        raise ProtocolError(
            f"{root} holds an unsharded deployment; load it with "
            "load_outsourcing()"
        )
    try:
        num_shards = int(manifest["num_shards"])
        seed = bytes.fromhex(manifest["shard_seed"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed sharded manifest: {exc}") from exc
    shard_dir = root / _SHARDS
    shards = []
    for shard_id in range(num_shards):
        shard_path = shard_dir / f"shard-{shard_id}.bin"
        if not shard_path.is_file():
            raise ProtocolError(f"missing shard file {shard_path}")
        shards.append(SecureIndex.deserialize(shard_path.read_bytes()))
    sharded_index = ShardedIndex.from_shards(shards, shard_seed=seed)
    blob_store = BlobStore()
    blob_dir = root / _BLOBS
    if blob_dir.is_dir():
        for blob_path in sorted(blob_dir.iterdir()):
            blob_store.put(
                _blob_id_from_name(blob_path.name), blob_path.read_bytes()
            )
    expected = manifest.get("num_blobs")
    if expected is not None and expected != len(blob_store):
        raise ProtocolError(
            f"manifest expects {expected} blobs, found {len(blob_store)}"
        )
    return sharded_index, blob_store, str(manifest.get("scheme", "rsse"))


def save_key(path: str | Path, key: SchemeKey) -> None:
    """Write a key bundle (owner- or user-side) to a file."""
    Path(path).write_bytes(key.serialize())


def load_key(path: str | Path) -> SchemeKey:
    """Read a key bundle from a file."""
    return SchemeKey.deserialize(Path(path).read_bytes())


def save_credentials(path: str | Path, credentials: UserCredentials) -> None:
    """Write a user credential bundle (trapdoor keys + file key)."""
    payload = {
        "scheme_key": credentials.scheme_key.serialize().hex(),
        "file_key": credentials.file_key.hex(),
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_credentials(path: str | Path) -> UserCredentials:
    """Read a user credential bundle."""
    try:
        payload = json.loads(Path(path).read_text())
        return UserCredentials(
            scheme_key=SchemeKey.deserialize(
                bytes.fromhex(payload["scheme_key"])
            ),
            file_key=bytes.fromhex(payload["file_key"]),
        )
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed credential file: {exc}") from exc
