"""On-disk persistence for deployments.

A real outsourcing is not an in-memory object: the owner uploads bytes
and the server stores bytes.  This module lays a deployment out on
disk so it can be built once and searched across process restarts (the
CLI uses it):

    <root>/
      manifest.json      scheme kind + parameters + counts
      index.bin          serialized SecureIndex       (store "json")
      index.rpk          packed posting-list file     (store "packed")
      index.rpk.delta    append-only mutation log     (store "packed")
      blobs/<doc_id>     encrypted file payloads

Two index stores share the directory layout.  ``"json"`` (the
deterministic reference) serializes the whole dict index and loads it
eagerly; ``"packed"`` writes the :mod:`repro.cloud.store` format and
loads it as a lazy ``mmap``-backed :class:`~repro.cloud.store.PackedStore`
whose resident memory tracks the queried working set, with updates
captured in the sibling delta log.  The manifest records which store a
deployment uses; loaders honour it by default and can force either
view of a packed deployment (``store="dict"`` re-materializes the
bytes in memory — the equivalence-checking path).

Keys are *not* stored in the deployment directory (they belong to the
owner/users, not the server); :func:`save_key` / :func:`load_key`
handle them separately.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cloud.cluster import ShardedIndex
from repro.cloud.owner import Outsourcing, UserCredentials
from repro.cloud.storage import BlobStore
from repro.cloud.store import PackedStore, load_packed_index, pack_index
from repro.core.secure_index import SecureIndex
from repro.crypto.keys import SchemeKey
from repro.errors import ProtocolError

_MANIFEST = "manifest.json"
_INDEX = "index.bin"
_PACKED = "index.rpk"
_BLOBS = "blobs"
_SHARDS = "shards"

#: Valid ``store=`` arguments to the save functions.
SAVE_STORES = ("json", "packed")

#: Valid ``store=`` arguments to the load functions (None = manifest).
LOAD_STORES = (None, "auto", "dict", "mmap")


def _check_save_store(store: str) -> None:
    if store not in SAVE_STORES:
        raise ProtocolError(
            f"unknown store {store!r} (expected one of {SAVE_STORES})"
        )


def _resolve_load_store(store: str | None, manifest: dict) -> str:
    """Map a ``store=`` request + manifest to ``"dict"`` or ``"mmap"``."""
    if store not in LOAD_STORES:
        raise ProtocolError(
            f"unknown store {store!r} (expected one of {LOAD_STORES})"
        )
    saved = str(manifest.get("store", "json"))
    if store is None or store == "auto":
        return "mmap" if saved == "packed" else "dict"
    if store == "mmap" and saved != "packed":
        raise ProtocolError(
            "deployment was saved with the json store; repack it "
            "(`repro pack <root>` or save with store='packed') before "
            "requesting the mmap view"
        )
    return store


def _safe_blob_name(doc_id: str) -> str:
    """Filesystem-safe encoding of a document id."""
    return doc_id.encode("utf-8").hex()


def _blob_id_from_name(name: str) -> str:
    return bytes.fromhex(name).decode("utf-8")


def save_outsourcing(
    root: str | Path,
    outsourcing: Outsourcing,
    scheme_kind: str,
    store: str = "json",
) -> None:
    """Write a deployment directory (overwrites existing contents).

    ``store="json"`` keeps the deterministic reference encoding;
    ``store="packed"`` writes the index in the
    :mod:`repro.cloud.store` packed format instead, so loading can
    ``mmap`` it lazily.
    """
    _check_save_store(store)
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    if store == "packed":
        pack_index(outsourcing.secure_index, root / _PACKED)
        (root / _INDEX).unlink(missing_ok=True)
    else:
        (root / _INDEX).write_bytes(outsourcing.secure_index.serialize())
        (root / _PACKED).unlink(missing_ok=True)
    blob_dir = root / _BLOBS
    blob_dir.mkdir(exist_ok=True)
    for doc_id in outsourcing.blob_store.ids():
        (blob_dir / _safe_blob_name(doc_id)).write_bytes(
            outsourcing.blob_store.get(doc_id)
        )
    manifest = {
        "scheme": scheme_kind,
        "store": store,
        "num_lists": outsourcing.secure_index.num_lists,
        "num_blobs": len(outsourcing.blob_store),
        "index_bytes": outsourcing.secure_index.size_bytes(),
    }
    (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))


def _load_manifest(root: Path) -> dict:
    manifest_path = root / _MANIFEST
    if not manifest_path.is_file():
        raise ProtocolError(f"no deployment manifest under {root}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"corrupt manifest: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ProtocolError("manifest is not a JSON object")
    return manifest


def _load_blobs(root: Path, manifest: dict) -> BlobStore:
    blob_store = BlobStore()
    blob_dir = root / _BLOBS
    if blob_dir.is_dir():
        for blob_path in sorted(blob_dir.iterdir()):
            blob_store.put(
                _blob_id_from_name(blob_path.name), blob_path.read_bytes()
            )
    expected = manifest.get("num_blobs")
    if expected is not None and expected != len(blob_store):
        raise ProtocolError(
            f"manifest expects {expected} blobs, found {len(blob_store)}"
        )
    return blob_store


def _load_index(root: Path, manifest: dict, resolved: str):
    """One deployment index under the requested view."""
    saved = str(manifest.get("store", "json"))
    if saved == "packed":
        if resolved == "mmap":
            return PackedStore(root / _PACKED)
        return load_packed_index(root / _PACKED)
    return SecureIndex.deserialize((root / _INDEX).read_bytes())


def load_outsourcing(
    root: str | Path, store: str | None = None
) -> tuple[Outsourcing, str]:
    """Load a deployment directory; returns (outsourcing, scheme kind).

    ``store=None`` (or ``"auto"``) honours the manifest: packed
    deployments come back as a lazy
    :class:`~repro.cloud.store.PackedStore`, json deployments as the
    in-memory :class:`SecureIndex`.  ``store="dict"`` forces eager
    materialization of either; ``store="mmap"`` requires a packed
    deployment.
    """
    root = Path(root)
    manifest = _load_manifest(root)
    if manifest.get("sharded"):
        raise ProtocolError(
            f"{root} holds a sharded deployment; load it with "
            "load_sharded_outsourcing()"
        )
    resolved = _resolve_load_store(store, manifest)
    secure_index = _load_index(root, manifest, resolved)
    blob_store = _load_blobs(root, manifest)
    return (
        Outsourcing(secure_index=secure_index, blob_store=blob_store),
        str(manifest.get("scheme", "rsse")),
    )


def save_sharded_outsourcing(
    root: str | Path,
    sharded_index: ShardedIndex,
    blob_store: BlobStore,
    scheme_kind: str,
    store: str = "json",
) -> None:
    """Write a sharded deployment directory.

    Layout mirrors :func:`save_outsourcing`, with the index split as
    the cluster serves it::

        <root>/
          manifest.json            (``"sharded": true`` + placement seed)
          shards/shard-<i>.bin     one serialized SecureIndex per shard
          shards/shard-<i>.rpk     packed shard file (store "packed")
          blobs/<doc_id>           encrypted file payloads

    The placement seed lands in the manifest so a reload routes every
    address to the same shard; :meth:`ShardedIndex.from_shards` (or
    :meth:`ShardedIndex.from_stores` for packed deployments)
    revalidates placement at load time.
    """
    _check_save_store(store)
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    shard_dir = root / _SHARDS
    shard_dir.mkdir(exist_ok=True)
    for shard_id, shard in enumerate(sharded_index.shards):
        bin_path = shard_dir / f"shard-{shard_id}.bin"
        rpk_path = shard_dir / f"shard-{shard_id}.rpk"
        if store == "packed":
            pack_index(shard, rpk_path)
            bin_path.unlink(missing_ok=True)
        else:
            bin_path.write_bytes(shard.serialize())
            rpk_path.unlink(missing_ok=True)
    blob_dir = root / _BLOBS
    blob_dir.mkdir(exist_ok=True)
    for doc_id in blob_store.ids():
        (blob_dir / _safe_blob_name(doc_id)).write_bytes(
            blob_store.get(doc_id)
        )
    manifest = {
        "scheme": scheme_kind,
        "store": store,
        "sharded": True,
        "num_shards": sharded_index.num_shards,
        "shard_seed": sharded_index.shard_seed.hex(),
        "num_lists": sharded_index.num_lists,
        "num_blobs": len(blob_store),
        "index_bytes": sharded_index.size_bytes(),
    }
    (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))


def load_sharded_outsourcing(
    root: str | Path, store: str | None = None
) -> tuple[ShardedIndex, BlobStore, str]:
    """Load a sharded deployment; returns (index, blobs, scheme kind).

    ``store`` selects the per-shard view exactly as in
    :func:`load_outsourcing`; packed shards load as lazy
    :class:`~repro.cloud.store.PackedStore` objects wrapped via
    :meth:`ShardedIndex.from_stores` (placement validated from
    addresses alone, no posting block decoded).
    """
    root = Path(root)
    manifest = _load_manifest(root)
    if not manifest.get("sharded"):
        raise ProtocolError(
            f"{root} holds an unsharded deployment; load it with "
            "load_outsourcing()"
        )
    resolved = _resolve_load_store(store, manifest)
    saved = str(manifest.get("store", "json"))
    try:
        num_shards = int(manifest["num_shards"])
        seed = bytes.fromhex(manifest["shard_seed"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed sharded manifest: {exc}") from exc
    shard_dir = root / _SHARDS
    shards: list = []
    for shard_id in range(num_shards):
        suffix = "rpk" if saved == "packed" else "bin"
        shard_path = shard_dir / f"shard-{shard_id}.{suffix}"
        if not shard_path.is_file():
            raise ProtocolError(f"missing shard file {shard_path}")
        if saved == "packed":
            if resolved == "mmap":
                shards.append(PackedStore(shard_path))
            else:
                shards.append(load_packed_index(shard_path))
        else:
            shards.append(SecureIndex.deserialize(shard_path.read_bytes()))
    sharded_index = ShardedIndex.from_stores(shards, shard_seed=seed)
    blob_store = _load_blobs(root, manifest)
    return sharded_index, blob_store, str(manifest.get("scheme", "rsse"))


def pack_deployment(root: str | Path) -> None:
    """Convert a json-store deployment directory to the packed store.

    Reads the serialized index (or per-shard indexes), writes the
    packed ``.rpk`` files beside them, removes the ``.bin`` encodings,
    and flips the manifest's ``"store"`` field — the CLI's
    ``repro pack`` command.  Packing an already-packed deployment is a
    no-op.
    """
    root = Path(root)
    manifest = _load_manifest(root)
    if str(manifest.get("store", "json")) == "packed":
        return
    if manifest.get("sharded"):
        shard_dir = root / _SHARDS
        num_shards = int(manifest["num_shards"])
        for shard_id in range(num_shards):
            bin_path = shard_dir / f"shard-{shard_id}.bin"
            if not bin_path.is_file():
                raise ProtocolError(f"missing shard file {bin_path}")
            shard = SecureIndex.deserialize(bin_path.read_bytes())
            pack_index(shard, shard_dir / f"shard-{shard_id}.rpk")
            bin_path.unlink()
    else:
        index_path = root / _INDEX
        if not index_path.is_file():
            raise ProtocolError(f"missing index file {index_path}")
        index = SecureIndex.deserialize(index_path.read_bytes())
        pack_index(index, root / _PACKED)
        index_path.unlink()
    manifest["store"] = "packed"
    (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))


def save_key(path: str | Path, key: SchemeKey) -> None:
    """Write a key bundle (owner- or user-side) to a file."""
    Path(path).write_bytes(key.serialize())


def load_key(path: str | Path) -> SchemeKey:
    """Read a key bundle from a file."""
    return SchemeKey.deserialize(Path(path).read_bytes())


def save_credentials(path: str | Path, credentials: UserCredentials) -> None:
    """Write a user credential bundle (trapdoor keys + file key)."""
    payload = {
        "scheme_key": credentials.scheme_key.serialize().hex(),
        "file_key": credentials.file_key.hex(),
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_credentials(path: str | Path) -> UserCredentials:
    """Read a user credential bundle."""
    try:
        payload = json.loads(Path(path).read_text())
        return UserCredentials(
            scheme_key=SchemeKey.deserialize(
                bytes.fromhex(payload["scheme_key"])
            ),
            file_key=bytes.fromhex(payload["file_key"]),
        )
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed credential file: {exc}") from exc
