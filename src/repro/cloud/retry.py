"""Retry, hedging, and circuit-breaking for the serving path.

Three robustness primitives, all deterministic so the fault suites can
assert exact schedules:

* :class:`RetryPolicy` — capped exponential backoff with
  *deterministic* jitter (a keyed BLAKE2b function of the call index
  and attempt number, not :mod:`random`), an optional per-call
  deadline over the channel's modeled latency, and an optional hedged
  second attempt for calls slower than a threshold.
* :class:`RetryingChannel` — wraps any channel and applies a policy to
  every call, retrying :class:`~repro.errors.TransportError` failures
  and responses that fail the wire-framing check.  Records a full
  per-call attempt trace, which is how tests pin "same fault seed ⇒
  identical retry schedule".
* :class:`CircuitBreaker` — consecutive-failure breaker with half-open
  probing, counted in calls rather than wall time so breaker behavior
  is reproducible.  The cluster front end keeps one per shard.

Retrying implies at-least-once delivery: a response corrupted in
flight means the server *did* execute the request before the retry
re-sends it.  Searches are read-only, and the update handler
(:meth:`repro.cloud.server.CloudServer._handle_update`) is idempotent
— deterministic entry encryption makes an exact-duplicate append
detectable — so re-execution is safe across the whole protocol.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.cloud.network import ChannelStats, Transport
from repro.cloud.protocol import peek_kind
from repro.errors import (
    CallTimeoutError,
    CorruptedResponseError,
    ParameterError,
    ProtocolError,
    RetryExhaustedError,
    TransportError,
)
from repro.obs.base import StatsBase
from repro.obs.trace import NOOP_TRACER


def response_is_well_formed(response: bytes) -> bool:
    """The default wire-framing check: a parseable, tagged message.

    Every protocol response is a JSON object carrying a ``kind`` tag;
    fault-injected corruption breaks exactly that framing.
    """
    try:
        return bool(peek_kind(response))
    except ProtocolError:
        return False


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total tries per call (first attempt included).
    base_backoff_s / backoff_multiplier / max_backoff_s:
        Backoff before retry ``n`` (1-based) is
        ``min(max_backoff_s, base_backoff_s * multiplier**(n - 1))``,
        then shrunk by jitter.
    jitter_fraction:
        Each backoff is scaled by ``1 - jitter_fraction * u`` with
        ``u in [0, 1)`` drawn from a keyed BLAKE2b stream over
        ``(jitter_seed, call index, attempt)`` — decorrelated across
        callers but exactly reproducible.
    jitter_seed:
        Seed for the jitter stream.
    deadline_s:
        Per-call deadline over the channel's *modeled* latency: a
        response whose injected delay exceeds it counts as a timeout
        failure (and is retried).
    hedge_after_s:
        When set, a response slower than this (but within deadline)
        triggers one hedged duplicate attempt; the faster of the two
        responses wins.  The paper-style tail-latency mitigation.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.01
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 0.25
    jitter_fraction: float = 0.1
    jitter_seed: int = 0
    deadline_s: float | None = None
    hedge_after_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ParameterError("backoff durations must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ParameterError(
                f"backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ParameterError(
                f"jitter_fraction must be in [0, 1), got "
                f"{self.jitter_fraction}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ParameterError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.hedge_after_s is not None:
            if self.hedge_after_s <= 0:
                raise ParameterError(
                    f"hedge_after_s must be positive, got "
                    f"{self.hedge_after_s}"
                )
            if (
                self.deadline_s is not None
                and self.hedge_after_s >= self.deadline_s
            ):
                raise ParameterError("hedge_after_s must be below deadline_s")

    def backoff_s(self, call_index: int, retry_number: int) -> float:
        """Backoff before retry ``retry_number`` (1-based) of one call."""
        if retry_number < 1:
            raise ParameterError(
                f"retry_number must be >= 1, got {retry_number}"
            )
        base = min(
            self.max_backoff_s,
            self.base_backoff_s
            * self.backoff_multiplier ** (retry_number - 1),
        )
        digest = hashlib.blake2b(
            struct.pack(">qqq", self.jitter_seed, call_index, retry_number),
            digest_size=8,
        ).digest()
        unit = int.from_bytes(digest, "big") / 2.0**64
        return base * (1.0 - self.jitter_fraction * unit)


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of one call, as the retry layer saw it."""

    attempt: int
    outcome: str  # "ok" | "hedged-ok" | an error class name
    backoff_s: float
    modeled_delay_s: float = 0.0


@dataclass(frozen=True)
class CallTrace:
    """The full attempt history of one :meth:`RetryingChannel.call`."""

    call_index: int
    attempts: tuple[AttemptRecord, ...]

    @property
    def succeeded(self) -> bool:
        """Whether any attempt produced an accepted response."""
        return any(
            record.outcome in ("ok", "hedged-ok") for record in self.attempts
        )


@dataclass
class RetryStats(StatsBase):
    """Aggregate counters across a :class:`RetryingChannel`'s calls.

    ``snapshot()``/``reset()``/``merged()`` come from
    :class:`~repro.obs.base.StatsBase` (shared with ``ChannelStats``
    and ``FaultStats``), so retry counters aggregate across shards
    with the same untorn-sampling semantics.
    """

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    corrupt_responses: int = 0
    hedged_calls: int = 0
    exhausted: int = 0


class RetryingChannel:
    """A channel wrapper that applies a :class:`RetryPolicy` per call.

    Presents the same ``call()`` surface as
    :class:`~repro.cloud.network.Channel`, so users, owners, and the
    cluster fan-out compose with it transparently.  Only
    :class:`~repro.errors.TransportError` failures are retried; a
    :class:`~repro.errors.ProtocolError` (malformed or unauthorized
    request) propagates immediately — retrying cannot fix it.

    Parameters
    ----------
    inner:
        The wrapped channel (possibly a
        :class:`~repro.cloud.faults.FaultyChannel`).
    policy:
        The retry policy.
    sleep:
        Clock used for backoff waits (injectable for tests; defaults
        to :func:`time.sleep`).
    validate:
        Response acceptance check; defaults to the protocol framing
        check :func:`response_is_well_formed`.
    """

    def __init__(
        self,
        inner: Transport,
        policy: RetryPolicy,
        sleep: Callable[[float], None] = time.sleep,
        validate: Callable[[bytes], bool] = response_is_well_formed,
        obs=None,
    ):
        self._inner = inner
        self._policy = policy
        self._sleep = sleep
        self._validate = validate
        self._retry_stats = RetryStats()
        self._trace: list[CallTrace] = []
        self._calls = 0
        self._lock = threading.Lock()
        # Observability (repro.obs.Obs or None): attempt spans nest
        # under whatever span the calling thread has open (the
        # cluster's shard-dispatch span), and the headline retry
        # counters mirror into the metrics registry.
        self._obs = obs
        self._tracer = obs.tracer if obs is not None else NOOP_TRACER

    @property
    def inner(self) -> Transport:
        """The wrapped channel."""
        return self._inner

    @property
    def policy(self) -> RetryPolicy:
        """The applied retry policy."""
        return self._policy

    @property
    def stats(self) -> ChannelStats:
        """The wrapped channel's traffic counters (passthrough)."""
        return self._inner.stats

    @property
    def retry_stats(self) -> RetryStats:
        """Aggregate retry counters."""
        return self._retry_stats

    @property
    def trace(self) -> tuple[CallTrace, ...]:
        """Per-call attempt traces, in call order."""
        with self._lock:
            return tuple(self._trace)

    def _modeled_delay(self) -> float:
        return getattr(self._inner, "last_injected_delay_s", 0.0)

    def _attempt(self, request: bytes) -> tuple[bytes, float, bool]:
        """One attempt: returns ``(response, delay, hedged)``.

        Raises a :class:`~repro.errors.TransportError` subclass when
        the attempt fails (injected fault, modeled timeout, or a
        response that fails validation).
        """
        response = self._inner.call(request)
        delay = self._modeled_delay()
        policy = self._policy
        hedged = False
        if policy.hedge_after_s is not None and delay > policy.hedge_after_s:
            hedged = True
            try:
                other = self._inner.call(request)
                other_delay = self._modeled_delay()
            except TransportError:
                other = None
                other_delay = delay
            if (
                other is not None
                and other_delay < delay
                and self._validate(other)
            ):
                response, delay = other, other_delay
        if policy.deadline_s is not None and delay > policy.deadline_s:
            with self._lock:
                self._retry_stats.timeouts += 1
            raise CallTimeoutError(
                f"modeled response latency {delay:.4f}s exceeded the "
                f"{policy.deadline_s:.4f}s deadline"
            )
        if not self._validate(response):
            with self._lock:
                self._retry_stats.corrupt_responses += 1
            raise CorruptedResponseError(
                "response failed the wire-framing check"
            )
        return response, delay, hedged

    def call(self, request: bytes) -> bytes:
        """Send ``request``, retrying under the policy until accepted."""
        with self._lock:
            call_index = self._calls
            self._calls += 1
            self._retry_stats.calls += 1
        policy = self._policy
        attempts: list[AttemptRecord] = []
        last_error: TransportError | None = None
        for attempt in range(1, policy.max_attempts + 1):
            backoff = 0.0
            if attempt > 1:
                backoff = policy.backoff_s(call_index, attempt - 1)
                if backoff > 0:
                    self._sleep(backoff)
                with self._lock:
                    self._retry_stats.retries += 1
            with self._lock:
                self._retry_stats.attempts += 1
            if self._obs is not None:
                self._obs.metrics.counter(
                    "repro_retry_attempts_total"
                ).inc()
            with self._tracer.span(
                "retry.attempt", attempt=attempt
            ) as span:
                try:
                    response, delay, hedged = self._attempt(request)
                except TransportError as exc:
                    last_error = exc
                    span.set(
                        outcome=type(exc).__name__, backoff_s=backoff
                    )
                    attempts.append(
                        AttemptRecord(
                            attempt=attempt,
                            outcome=type(exc).__name__,
                            backoff_s=backoff,
                        )
                    )
                    continue
                span.set(
                    outcome="hedged-ok" if hedged else "ok",
                    backoff_s=backoff,
                    modeled_delay_s=delay,
                )
            if hedged:
                with self._lock:
                    self._retry_stats.hedged_calls += 1
                if self._obs is not None:
                    self._obs.metrics.counter(
                        "repro_retry_hedged_total"
                    ).inc()
            attempts.append(
                AttemptRecord(
                    attempt=attempt,
                    outcome="hedged-ok" if hedged else "ok",
                    backoff_s=backoff,
                    modeled_delay_s=delay,
                )
            )
            self._record(call_index, attempts)
            return response
        with self._lock:
            self._retry_stats.exhausted += 1
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_retry_exhausted_total"
            ).inc()
        self._record(call_index, attempts)
        raise RetryExhaustedError(
            f"all {policy.max_attempts} attempts failed "
            f"(last: {type(last_error).__name__})"
        ) from last_error

    def _record(self, call_index: int, attempts: list[AttemptRecord]) -> None:
        with self._lock:
            self._trace.append(
                CallTrace(call_index=call_index, attempts=tuple(attempts))
            )


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker tuning.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that open the circuit.
    probe_interval:
        While open, every ``probe_interval``-th suppressed call is let
        through as a half-open probe; its outcome closes or re-opens
        the circuit.
    """

    failure_threshold: int = 3
    probe_interval: int = 4

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ParameterError(
                f"failure_threshold must be >= 1, got "
                f"{self.failure_threshold}"
            )
        if self.probe_interval < 1:
            raise ParameterError(
                f"probe_interval must be >= 1, got {self.probe_interval}"
            )


#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of breaker states for Prometheus scrapes
#: (``repro_net_breaker_state{worker=...}``); shared by the in-process
#: cluster and the networked front end so dashboards watch one series
#: name across both deployment shapes.
BREAKER_STATE_VALUES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


@dataclass(frozen=True)
class BreakerSnapshot:
    """An immutable view of one breaker's health."""

    state: str
    consecutive_failures: int
    times_opened: int
    probes: int
    suppressed_calls: int


class CircuitBreaker:
    """A consecutive-failure breaker with call-counted half-open probes.

    Deliberately clockless: opening is triggered by
    ``failure_threshold`` consecutive failures, and recovery probing
    is paced by *suppressed call count* rather than elapsed time, so
    every transition is a deterministic function of the observed
    success/failure sequence.

    Usage (the cluster does this under its per-shard lock)::

        if not breaker.allow():
            raise ShardDownError(...)
        try:
            response = channel.call(request)
        except TransportError:
            breaker.record_failure()
            raise
        breaker.record_success()
    """

    def __init__(self, config: BreakerConfig | None = None):
        self._config = config if config is not None else BreakerConfig()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._times_opened = 0
        self._probes = 0
        self._suppressed = 0
        self._suppressed_since_open = 0
        self._lock = threading.Lock()

    @property
    def config(self) -> BreakerConfig:
        """The breaker's tuning."""
        return self._config

    @property
    def state(self) -> str:
        """``closed``, ``open``, or ``half-open``."""
        with self._lock:
            return self._state

    def snapshot(self) -> BreakerSnapshot:
        """An immutable view of the breaker's counters."""
        with self._lock:
            return BreakerSnapshot(
                state=self._state,
                consecutive_failures=self._consecutive_failures,
                times_opened=self._times_opened,
                probes=self._probes,
                suppressed_calls=self._suppressed,
            )

    def allow(self) -> bool:
        """Whether the next call may proceed (may start a probe)."""
        with self._lock:
            if self._state == CLOSED or self._state == HALF_OPEN:
                return True
            self._suppressed += 1
            self._suppressed_since_open += 1
            if self._suppressed_since_open % self._config.probe_interval == 0:
                self._state = HALF_OPEN
                self._probes += 1
                return True
            return False

    def record_success(self) -> None:
        """A call succeeded: close the circuit and clear the streak."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._suppressed_since_open = 0

    def record_failure(self) -> None:
        """A call failed: extend the streak, possibly (re)open."""
        with self._lock:
            self._consecutive_failures += 1
            failed_probe = self._state == HALF_OPEN
            if (
                failed_probe
                or self._consecutive_failures >= self._config.failure_threshold
            ):
                if self._state != OPEN:
                    self._times_opened += 1
                self._state = OPEN
                self._suppressed_since_open = 0
