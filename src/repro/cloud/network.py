"""Simulated network channel with bandwidth and round-trip accounting.

The paper's efficiency case for RSSE is stated in communication terms:
the basic scheme either ships every matching file (one round, huge
bandwidth) or pays two round trips per search.  This channel counts
both quantities exactly and can convert them into estimated wall time
under a configurable latency/bandwidth model, which is how
``benchmarks/bench_basic_vs_rsse.py`` reports the trade-off.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ParameterError


@dataclass
class ChannelStats:
    """Mutable traffic counters for one channel."""

    round_trips: int = 0
    bytes_to_server: int = 0
    bytes_to_user: int = 0
    requests: list[int] = field(default_factory=list)
    responses: list[int] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in both directions."""
        return self.bytes_to_server + self.bytes_to_user

    def reset(self) -> None:
        """Zero all counters (e.g. between benchmark phases)."""
        self.round_trips = 0
        self.bytes_to_server = 0
        self.bytes_to_user = 0
        self.requests.clear()
        self.responses.clear()

    @classmethod
    def merged(cls, stats: Iterable["ChannelStats"]) -> "ChannelStats":
        """Aggregate several channels' counters into a fresh object.

        The cluster front end serves each shard over its own channel;
        this is how its per-shard traffic rolls up into one figure.
        """
        total = cls()
        for item in stats:
            total.round_trips += item.round_trips
            total.bytes_to_server += item.bytes_to_server
            total.bytes_to_user += item.bytes_to_user
            total.requests.extend(item.requests)
            total.responses.extend(item.responses)
        return total


@dataclass(frozen=True)
class LinkModel:
    """A simple latency/bandwidth model for time estimates.

    Attributes
    ----------
    rtt_seconds:
        Round-trip latency per request/response exchange.
    bandwidth_bytes_per_second:
        Symmetric link throughput.
    """

    rtt_seconds: float = 0.05
    bandwidth_bytes_per_second: float = 12_500_000.0  # 100 Mbit/s

    def __post_init__(self) -> None:
        if self.rtt_seconds < 0:
            raise ParameterError(
                f"rtt_seconds must be >= 0, got {self.rtt_seconds}"
            )
        if not self.bandwidth_bytes_per_second > 0:
            raise ParameterError(
                "bandwidth_bytes_per_second must be positive, got "
                f"{self.bandwidth_bytes_per_second}"
            )

    def estimate_seconds(self, stats: ChannelStats) -> float:
        """Estimated transfer time for the recorded traffic."""
        return (
            stats.round_trips * self.rtt_seconds
            + stats.total_bytes / self.bandwidth_bytes_per_second
        )


class Channel:
    """A request/response channel from user to server.

    The server side registers a handler (bytes in, bytes out); each
    :meth:`call` is one round trip and is fully accounted.  Counter
    updates are lock-protected, so one channel may carry requests from
    several user threads (the cluster server does exactly that).

    Parameters
    ----------
    handler:
        The server-side request handler.
    link_model:
        Optional latency/bandwidth model.  With ``simulate_latency``
        set, each call *sleeps* for the modeled transfer time instead
        of merely estimating it afterwards — turning the simulated
        network into a wall-clock-faithful one, which is what the
        cluster scaling benchmark measures against.
    simulate_latency:
        Actually pay ``link_model``'s estimated time per call.
    """

    def __init__(
        self,
        handler: Callable[[bytes], bytes],
        link_model: LinkModel | None = None,
        simulate_latency: bool = False,
    ):
        if simulate_latency and link_model is None:
            raise ParameterError(
                "simulate_latency requires a link_model to price calls"
            )
        self._handler = handler
        self._stats = ChannelStats()
        self._link_model = link_model
        self._simulate_latency = simulate_latency
        self._lock = threading.Lock()

    @property
    def stats(self) -> ChannelStats:
        """Traffic counters since construction or last reset."""
        return self._stats

    def call(self, request: bytes) -> bytes:
        """Send ``request``, return the server's response (one RTT)."""
        with self._lock:
            self._stats.round_trips += 1
            self._stats.bytes_to_server += len(request)
            self._stats.requests.append(len(request))
        response = self._handler(request)
        with self._lock:
            self._stats.bytes_to_user += len(response)
            self._stats.responses.append(len(response))
        if self._simulate_latency and self._link_model is not None:
            time.sleep(
                self._link_model.rtt_seconds
                + (len(request) + len(response))
                / self._link_model.bandwidth_bytes_per_second
            )
        return response
