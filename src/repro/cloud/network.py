"""Simulated network channel with bandwidth and round-trip accounting.

The paper's efficiency case for RSSE is stated in communication terms:
the basic scheme either ships every matching file (one round, huge
bandwidth) or pays two round trips per search.  This channel counts
both quantities exactly and can convert them into estimated wall time
under a configurable latency/bandwidth model, which is how
``benchmarks/bench_basic_vs_rsse.py`` reports the trade-off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

from repro.errors import ParameterError
from repro.obs.base import StatsBase


@dataclass(frozen=True)
class ChannelSnapshot:
    """An immutable, internally consistent copy of one channel's counters.

    Produced by :meth:`ChannelStats.snapshot` under the stats lock, so a
    benchmark sampling a live multi-threaded cluster never observes a
    torn read (e.g. a round trip counted whose response bytes are not
    yet recorded).
    """

    round_trips: int
    bytes_to_server: int
    bytes_to_user: int
    failed_calls: int
    requests: tuple[int, ...]
    responses: tuple[int, ...]

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in both directions."""
        return self.bytes_to_server + self.bytes_to_user

    def snapshot(self) -> "ChannelSnapshot":
        """A snapshot is already immutable; returns itself."""
        return self


@dataclass
class ChannelStats(StatsBase):
    """Mutable traffic counters for one channel.

    All mutation goes through the ``record_*`` methods, which serialize
    on the stats lock; ``snapshot()``, ``reset()``, and ``merged()``
    come from :class:`~repro.obs.base.StatsBase` and take the same
    lock, so a sampled copy is never torn even while other threads are
    recording (``merged`` additionally snapshots each input first, so
    rolling per-shard channels up into one cluster figure sums
    internally consistent per-channel views).
    """

    round_trips: int = 0
    bytes_to_server: int = 0
    bytes_to_user: int = 0
    failed_calls: int = 0
    requests: list[int] = field(default_factory=list)
    responses: list[int] = field(default_factory=list)

    _snapshot_factory = ChannelSnapshot

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in both directions."""
        return self.bytes_to_server + self.bytes_to_user

    def record_request(self, num_bytes: int) -> None:
        """Count one attempted round trip carrying ``num_bytes`` out."""
        with self.lock:
            self.round_trips += 1
            self.bytes_to_server += num_bytes
            self.requests.append(num_bytes)

    def record_response(self, num_bytes: int) -> None:
        """Count a successful response of ``num_bytes``."""
        with self.lock:
            self.bytes_to_user += num_bytes
            self.responses.append(num_bytes)

    def record_failure(self) -> None:
        """Count a call whose handler raised (no response returned)."""
        with self.lock:
            self.failed_calls += 1

    def publish(self, metrics, **labels: object) -> None:
        """Mirror these counters into a metrics registry.

        ``metrics`` is duck-typed as
        :class:`~repro.obs.metrics.MetricsRegistry` (kept nominal-free
        so this module stays import-light).  Values land as gauges set
        from one internally consistent snapshot — the stats object
        stays authoritative; the registry copy exists so channel
        traffic shows up in Prometheus scrapes next to the serving
        metrics, labeled per shard by the caller
        (``channel="2"``).
        """
        snap = self.snapshot()
        metrics.gauge("repro_channel_round_trips", **labels).set(
            snap.round_trips
        )
        metrics.gauge("repro_channel_bytes_to_server", **labels).set(
            snap.bytes_to_server
        )
        metrics.gauge("repro_channel_bytes_to_user", **labels).set(
            snap.bytes_to_user
        )
        metrics.gauge("repro_channel_failed_calls", **labels).set(
            snap.failed_calls
        )


@dataclass(frozen=True)
class LinkModel:
    """A simple latency/bandwidth model for time estimates.

    Attributes
    ----------
    rtt_seconds:
        Round-trip latency per request/response exchange.
    bandwidth_bytes_per_second:
        Symmetric link throughput.
    """

    rtt_seconds: float = 0.05
    bandwidth_bytes_per_second: float = 12_500_000.0  # 100 Mbit/s

    def __post_init__(self) -> None:
        if self.rtt_seconds < 0:
            raise ParameterError(
                f"rtt_seconds must be >= 0, got {self.rtt_seconds}"
            )
        if not self.bandwidth_bytes_per_second > 0:
            raise ParameterError(
                "bandwidth_bytes_per_second must be positive, got "
                f"{self.bandwidth_bytes_per_second}"
            )

    def estimate_seconds(self, stats: ChannelStats) -> float:
        """Estimated transfer time for the recorded traffic."""
        return (
            stats.round_trips * self.rtt_seconds
            + stats.total_bytes / self.bandwidth_bytes_per_second
        )


@runtime_checkable
class Transport(Protocol):
    """What the client stack requires of a request/response channel.

    :class:`~repro.cloud.user.DataUser`,
    :class:`~repro.cloud.updates.RemoteIndexMaintainer`, and
    :class:`~repro.cloud.retry.RetryingChannel` only ever send one
    request and read one response, plus consult traffic counters —
    so anything with this shape slots in: the in-process
    :class:`Channel`, a retrying wrapper around one, or the real
    socket :class:`~repro.cloud.netserve.NetworkChannel`.
    """

    @property
    def stats(self) -> ChannelStats:
        """Traffic counters for this transport."""
        ...

    def call(self, request: bytes) -> bytes:
        """Send ``request``, return the response (one round trip)."""
        ...


class Channel:
    """A request/response channel from user to server.

    The server side registers a handler (bytes in, bytes out); each
    :meth:`call` is one round trip and is fully accounted.  Counter
    updates are lock-protected, so one channel may carry requests from
    several user threads (the cluster server does exactly that).

    Parameters
    ----------
    handler:
        The server-side request handler.
    link_model:
        Optional latency/bandwidth model.  With ``simulate_latency``
        set, each call *sleeps* for the modeled transfer time instead
        of merely estimating it afterwards — turning the simulated
        network into a wall-clock-faithful one, which is what the
        cluster scaling benchmark measures against.
    simulate_latency:
        Actually pay ``link_model``'s estimated time per call.
    codec:
        Optional label naming the wire codec the channel is expected
        to carry (``"json"`` / ``"binary"``).  Purely descriptive —
        the channel moves bytes either way; benchmarks and dashboards
        use it to attribute per-codec traffic without sniffing
        payloads.
    """

    def __init__(
        self,
        handler: Callable[[bytes], bytes],
        link_model: LinkModel | None = None,
        simulate_latency: bool = False,
        codec: str | None = None,
    ):
        if simulate_latency and link_model is None:
            raise ParameterError(
                "simulate_latency requires a link_model to price calls"
            )
        self._handler = handler
        self._stats = ChannelStats()
        self._link_model = link_model
        self._simulate_latency = simulate_latency
        self._codec = codec

    @property
    def stats(self) -> ChannelStats:
        """Traffic counters since construction or last reset."""
        return self._stats

    @property
    def codec(self) -> str | None:
        """The declared wire-codec label (None when unspecified)."""
        return self._codec

    def call(self, request: bytes) -> bytes:
        """Send ``request``, return the server's response (one RTT).

        Response accounting happens only after the handler returns:
        a call whose handler raises counts as a ``failed_calls`` tick
        (and its request bytes), never as response traffic — so
        fault-injected failures do not inflate ``bytes_to_user``.
        """
        self._stats.record_request(len(request))
        try:
            response = self._handler(request)
        except Exception:
            self._stats.record_failure()
            raise
        self._stats.record_response(len(response))
        if self._simulate_latency and self._link_model is not None:
            time.sleep(
                self._link_model.rtt_seconds
                + (len(request) + len(response))
                / self._link_model.bandwidth_bytes_per_second
            )
        return response
