"""Attribute-based access control for credential distribution.

The paper's second future-work direction (Section VIII): "integrate
advanced crypto techniques, such as attribute-based encryption to
enable fine-grained access control in our multi-user settings."

True ciphertext-policy ABE needs bilinear pairings; per the
reproduction's substitution rule (DESIGN.md), this module delivers the
same *functionality* with symmetric primitives and a trusted issuer
(the data owner, who already issues all keys in this system):

* the owner derives one symmetric key per **attribute** from a master
  secret;
* a credential bundle is encrypted under a **policy tree** — AND / OR /
  k-of-n THRESHOLD gates over attribute leaves — by secret-sharing a
  session key down the tree (AND = n-of-n, OR = 1-of-n) and wrapping
  each leaf's share under its attribute key;
* a user holding a set of attribute keys decrypts iff its attributes
  *satisfy* the policy — the standard ABE access semantics.

Relative to real CP-ABE the trust model differs (the owner can decrypt
everything — which it trivially can here anyway, being the data
source), and collusion resistance is inherited from the fact that
attribute keys are identical across users (ABE's per-user key
randomization is unnecessary when the issuer is the encryptor).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field

from repro.crypto.shamir import (
    PRIME,
    Share,
    random_secret,
    reconstruct_int,
    split_int,
)
from repro.crypto.symmetric import SymmetricCipher
from repro.errors import CryptoError, ParameterError

#: Field elements travel as fixed-width byte strings of this length.
_FIELD_BYTES = 66


def _attribute_key(master: bytes, attribute: str) -> bytes:
    return hmac.new(
        master, b"abac|attr|" + attribute.encode("utf-8"), hashlib.sha256
    ).digest()


# -- policy trees --------------------------------------------------------


@dataclass(frozen=True)
class Attribute:
    """A leaf: satisfied when the user holds this attribute."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("attribute name must be non-empty")

    def satisfied_by(self, attributes: set[str]) -> bool:
        return self.name in attributes


@dataclass(frozen=True)
class Threshold:
    """An internal gate: satisfied when >= k children are satisfied.

    ``AND`` and ``OR`` are the n-of-n and 1-of-n specializations; use
    the :func:`and_of` / :func:`or_of` helpers for readability.
    """

    k: int
    children: tuple["PolicyNode", ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.children:
            raise ParameterError("threshold gate needs children")
        if not 1 <= self.k <= len(self.children):
            raise ParameterError(
                f"threshold k={self.k} invalid for "
                f"{len(self.children)} children"
            )

    def satisfied_by(self, attributes: set[str]) -> bool:
        satisfied = sum(
            1 for child in self.children if child.satisfied_by(attributes)
        )
        return satisfied >= self.k


PolicyNode = Attribute | Threshold


def and_of(*children: PolicyNode) -> Threshold:
    """All children required."""
    return Threshold(k=len(children), children=tuple(children))


def or_of(*children: PolicyNode) -> Threshold:
    """Any child suffices."""
    return Threshold(k=1, children=tuple(children))


def k_of(k: int, *children: PolicyNode) -> Threshold:
    """At least ``k`` children required."""
    return Threshold(k=k, children=tuple(children))


# -- ciphertexts ------------------------------------------------------------


@dataclass(frozen=True)
class _LeafCiphertext:
    attribute: str
    wrapped_share: bytes  # Share y-value encrypted under the attribute key
    x: int


@dataclass(frozen=True)
class _GateCiphertext:
    k: int
    children: tuple["NodeCiphertext", ...]
    x: int


NodeCiphertext = _LeafCiphertext | _GateCiphertext


@dataclass(frozen=True)
class PolicyCiphertext:
    """A payload encrypted under a policy tree."""

    root: NodeCiphertext
    payload: bytes  # encrypted under the session key


class AttributeAuthority:
    """The owner-side issuer of attribute keys and policy ciphertexts."""

    def __init__(self, master_key: bytes):
        if not master_key:
            raise ParameterError("master key must be non-empty")
        self._master = bytes(master_key)

    # -- key issuance -----------------------------------------------------

    def issue_attribute_keys(self, attributes: set[str]) -> dict[str, bytes]:
        """Hand a user the keys for its attribute set."""
        if not attributes:
            raise ParameterError("attribute set must be non-empty")
        return {
            attribute: _attribute_key(self._master, attribute)
            for attribute in attributes
        }

    # -- encryption -------------------------------------------------------------

    def encrypt(self, payload: bytes, policy: PolicyNode) -> PolicyCiphertext:
        """Encrypt ``payload`` so that ``policy``-satisfying users decrypt.

        The session key (a field element) is secret-shared down the
        policy tree: each gate splits its secret k-of-n among its
        children; each leaf wraps its secret under the attribute key.
        """
        session_key = random_secret()
        root = self._share_node(
            policy, int.from_bytes(session_key, "big"), x=1
        )
        sealed = SymmetricCipher(session_key).encrypt(payload)
        return PolicyCiphertext(root=root, payload=sealed)

    def _share_node(
        self, node: PolicyNode, secret: int, x: int
    ) -> NodeCiphertext:
        if isinstance(node, Attribute):
            key = _attribute_key(self._master, node.name)
            return _LeafCiphertext(
                attribute=node.name,
                wrapped_share=SymmetricCipher(key).encrypt(
                    secret.to_bytes(_FIELD_BYTES, "big")
                ),
                x=x,
            )
        shares = split_int(secret, node.k, len(node.children))
        children = tuple(
            self._share_node(child, share.y, share.x)
            for child, share in zip(node.children, shares)
        )
        return _GateCiphertext(k=node.k, children=children, x=x)


class PolicyDecryptor:
    """User-side decryption with an attribute-key set."""

    def __init__(self, attribute_keys: dict[str, bytes]):
        if not attribute_keys:
            raise ParameterError("attribute key set must be non-empty")
        self._keys = dict(attribute_keys)

    @property
    def attributes(self) -> set[str]:
        """Attributes this user holds."""
        return set(self._keys)

    def decrypt(self, ciphertext: PolicyCiphertext) -> bytes:
        """Recover the payload; raises :class:`CryptoError` otherwise."""
        session_value = self._recover_node(ciphertext.root)
        if session_value is None or session_value >= 1 << 256:
            # The genuine session key fits in 32 bytes; anything else
            # means the policy was not satisfied (or shares were
            # inconsistent) — and the authenticated payload decryption
            # below would reject a wrong key regardless.
            raise CryptoError(
                "attribute set does not satisfy the ciphertext policy"
            )
        session_key = session_value.to_bytes(32, "big")
        return SymmetricCipher(session_key).decrypt(ciphertext.payload)

    def _recover_node(self, node: NodeCiphertext) -> int | None:
        if isinstance(node, _LeafCiphertext):
            key = self._keys.get(node.attribute)
            if key is None:
                return None
            try:
                raw = SymmetricCipher(key).decrypt(node.wrapped_share)
            except CryptoError:
                return None
            value = int.from_bytes(raw, "big")
            return value if value < PRIME else None
        recovered: list[Share] = []
        for child in node.children:
            secret = self._recover_node(child)
            if secret is not None:
                recovered.append(Share(x=child.x, y=secret))
            if len(recovered) >= node.k:
                break
        if len(recovered) < node.k:
            return None
        try:
            # Internal secrets are arbitrary field elements (a parent
            # gate's share); only the root is additionally bounded, and
            # decrypt() enforces that.
            return reconstruct_int(recovered, node.k)
        except CryptoError:
            return None
