"""Encrypted blob storage at the cloud server.

Stores the encrypted file collection ``C`` keyed by file identifier.
The server can enumerate ids and sizes (it hosts the data) but blob
contents are ciphertext under the owner's file key.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ProtocolError


class BlobStore:
    """A flat store of encrypted file blobs."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def __len__(self) -> int:
        return len(self._blobs)

    def __contains__(self, file_id: str) -> bool:
        return file_id in self._blobs

    def put(self, file_id: str, blob: bytes) -> None:
        """Store a blob; overwriting an id is an error (ids are unique)."""
        if file_id in self._blobs:
            raise ProtocolError(f"blob {file_id!r} already stored")
        self._blobs[file_id] = bytes(blob)

    def get(self, file_id: str) -> bytes:
        """Fetch a blob; unknown ids are a protocol error."""
        try:
            return self._blobs[file_id]
        except KeyError:
            raise ProtocolError(f"no blob stored for {file_id!r}") from None

    def get_optional(self, file_id: str) -> bytes | None:
        """Fetch a blob, or None when absent.

        The tolerant lookup the search path uses under concurrent
        updates: a file whose index entries were read just before its
        blob was removed is simply dropped from the response (which is
        exactly the post-removal answer), instead of failing the whole
        search.
        """
        return self._blobs.get(file_id)

    def delete(self, file_id: str) -> None:
        """Remove a blob (file-removal dynamics)."""
        if file_id not in self._blobs:
            raise ProtocolError(f"no blob stored for {file_id!r}")
        del self._blobs[file_id]

    def ids(self) -> Iterator[str]:
        """Iterate stored file ids (server-visible metadata)."""
        return iter(self._blobs)

    def total_bytes(self) -> int:
        """Total stored ciphertext bytes."""
        return sum(len(blob) for blob in self._blobs.values())
