"""The data user ``U`` (Fig. 1): Retrieval-phase client.

Implements all three retrieval protocols over the accounted channel:

* :meth:`DataUser.search_ranked_topk` — the efficient scheme's
  one-round top-k (trapdoor out, ranked encrypted files back);
* :meth:`DataUser.search_all_and_rank` — the basic one-round protocol
  (everything back, client decrypts scores and ranks);
* :meth:`DataUser.search_two_round_topk` — the basic two-round top-k
  (entries first, then fetch exactly the chosen k files).

Every method returns decrypted documents in final rank order together
with the ranking, so callers can verify correctness against plaintext
search.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.cloud.cache import LruCache
from repro.cloud.network import Transport
from repro.cloud.owner import UserCredentials
from repro.cloud.protocol import (
    CODEC_JSON,
    MODE_CONJUNCTIVE,
    MULTI_MODES,
    FileRequest,
    MultiSearchRequest,
    MultiSearchResponse,
    RankedFilesResponse,
    SearchRequest,
    SearchResponse,
    require_codec,
)
from repro.cloud.retry import RetryingChannel, RetryPolicy
from repro.core.basic_scheme import BasicRankedSSE
from repro.core.rsse import EfficientRSSE
from repro.core.results import RankedFile, as_ranking
from repro.crypto.symmetric import SymmetricCipher
from repro.errors import ParameterError
from repro.ir.analyzer import Analyzer
from repro.ir.topk import (
    intersect_sums,
    rank_all,
    rank_pairs,
    top_k,
    union_sums,
)


@dataclass(frozen=True)
class RetrievedFile:
    """A decrypted search hit in rank order."""

    rank: int
    file_id: str
    text: str


class DataUser:
    """An authorized user holding credentials from the owner.

    With a ``retry_policy``, every protocol round trip goes through a
    :class:`~repro.cloud.retry.RetryingChannel`: transient transport
    faults (drops, corrupted responses, a briefly crashed shard) are
    absorbed by capped-backoff retries, and searches — which are
    read-only on the server — stay safe to re-send.

    ``codec`` selects the wire encoding for every request this user
    sends (:data:`~repro.cloud.protocol.CODEC_JSON`, the
    bandwidth-accounting reference, or
    :data:`~repro.cloud.protocol.CODEC_BINARY`, the length-prefixed
    fast framing); the server mirrors the request codec in its
    responses, so no other party needs configuring.

    ``trapdoor_cache_size`` bounds a per-user memo of serialized
    trapdoors keyed by normalized term (``None`` disables it).
    Trapdoor generation is a deterministic PRF of the key and term, so
    the memo changes no bytes on the wire — it only skips the
    recomputation, and it is what makes a hot keyword's request frame
    byte-stable, which the server-side result cache keys on.
    """

    #: Default per-user trapdoor memo size (distinct normalized terms).
    DEFAULT_TRAPDOOR_CACHE_SIZE = 512

    def __init__(
        self,
        scheme: BasicRankedSSE | EfficientRSSE,
        credentials: UserCredentials,
        channel: Transport,
        analyzer: Analyzer | None = None,
        retry_policy: RetryPolicy | None = None,
        codec: str = CODEC_JSON,
        trapdoor_cache_size: int | None = DEFAULT_TRAPDOOR_CACHE_SIZE,
    ):
        self._scheme = scheme
        self._credentials = credentials
        self._channel: Transport = (
            RetryingChannel(channel, retry_policy)
            if retry_policy is not None
            else channel
        )
        self._analyzer = analyzer if analyzer is not None else Analyzer()
        self._file_cipher = SymmetricCipher(credentials.file_key)
        self._codec = require_codec(codec)
        self._trapdoor_memo: LruCache | None = (
            LruCache(capacity=trapdoor_cache_size)
            if trapdoor_cache_size is not None
            else None
        )

    def _trapdoor_for_term(self, term: str) -> bytes:
        if self._trapdoor_memo is not None:
            cached = self._trapdoor_memo.get(term)
            if cached is not None:
                return cached
        serialized = self._scheme.trapdoor(
            self._credentials.scheme_key, term
        ).serialize()
        if self._trapdoor_memo is not None:
            self._trapdoor_memo.put(term, serialized)
        return serialized

    def _trapdoor_bytes(self, keyword: str) -> bytes:
        return self._trapdoor_for_term(self._analyzer.analyze_query(keyword))

    def _decrypt_files(
        self, files: tuple[tuple[str, bytes], ...]
    ) -> list[RetrievedFile]:
        return [
            RetrievedFile(
                rank=position,
                file_id=file_id,
                text=self._file_cipher.decrypt(blob).decode("utf-8"),
            )
            for position, (file_id, blob) in enumerate(files, start=1)
        ]

    # -- efficient scheme: one-round server-ranked retrieval ---------------

    def search_ranked_topk(self, keyword: str, k: int) -> list[RetrievedFile]:
        """One-round top-k: the paper's headline retrieval protocol."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        if not isinstance(self._scheme, EfficientRSSE):
            raise ParameterError(
                "server-side ranking requires the efficient scheme; use "
                "search_all_and_rank or search_two_round_topk instead"
            )
        request = SearchRequest(
            trapdoor_bytes=self._trapdoor_bytes(keyword), top_k=k
        )
        response = SearchResponse.from_bytes(
            self._channel.call(request.to_bytes(self._codec))
        )
        return self._decrypt_files(response.files)

    # -- efficient scheme: one-round multi-keyword retrieval ---------------

    def _multi_trapdoors(self, keywords: list[str]) -> tuple[bytes, ...]:
        """Batch trapdoor generation: normalize, de-duplicate, serialize.

        The duplicate check runs on *normalized* terms — "Cloud" and
        "cloud" are the same keyword, and sending its trapdoor twice
        would double-count its OPM contribution in every sum.
        """
        if not keywords:
            raise ParameterError("keywords must be non-empty")
        terms = [
            self._analyzer.analyze_query(keyword) for keyword in keywords
        ]
        if len(set(terms)) != len(terms):
            raise ParameterError(
                "duplicate query keywords are not allowed "
                "(after normalization)"
            )
        return tuple(self._trapdoor_for_term(term) for term in terms)

    def _require_multi(self, k: int, mode: str) -> None:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        if mode not in MULTI_MODES:
            raise ParameterError(
                f"unknown multi-search mode {mode!r}; "
                f"expected one of {MULTI_MODES}"
            )
        if not isinstance(self._scheme, EfficientRSSE):
            raise ParameterError(
                "multi-keyword server-side ranking requires the "
                "efficient scheme"
            )

    def search_multi_topk(
        self,
        keywords: list[str],
        k: int,
        mode: str = MODE_CONJUNCTIVE,
    ) -> list[RetrievedFile]:
        """One-round multi-keyword top-k: all trapdoors in one call.

        The server aggregates per-term OPM scores (conjunctive
        intersection or disjunctive union) and returns the top-k files
        in one round trip — a k-term query costs ~one single-keyword
        query instead of k (see ``benchmarks/bench_multi_keyword.py``).
        """
        self._require_multi(k, mode)
        request = MultiSearchRequest(
            trapdoors=self._multi_trapdoors(keywords), mode=mode, top_k=k
        )
        response = MultiSearchResponse.from_bytes(
            self._channel.call(request.to_bytes(self._codec))
        )
        return self._decrypt_files(response.files)

    def search_multi_topk_legacy(
        self,
        keywords: list[str],
        k: int,
        mode: str = MODE_CONJUNCTIVE,
    ) -> list[RetrievedFile]:
        """The pre-aggregation shape: k round trips, client-side merge.

        One full (unbounded) single-keyword search per term, then
        intersect-and-sum on the client.  Kept as the latency and
        bandwidth baseline the one-round path is measured against,
        and as the equivalence oracle — both paths use the canonical
        tie-break, so their rankings must agree file for file.
        """
        self._require_multi(k, mode)
        per_term: list[dict[str, int]] = []
        blobs: dict[str, bytes] = {}
        for trapdoor_bytes in self._multi_trapdoors(keywords):
            request = SearchRequest(trapdoor_bytes=trapdoor_bytes)
            response = SearchResponse.from_bytes(
                self._channel.call(request.to_bytes(self._codec))
            )
            per_term.append(
                {
                    file_id: int.from_bytes(score_field, "big")
                    for file_id, score_field in response.matches
                }
            )
            blobs.update(response.files)
        if mode == MODE_CONJUNCTIVE:
            pairs = intersect_sums(per_term)
        else:
            pairs = union_sums(per_term)
        ranked = rank_pairs(pairs, k)
        files = tuple(
            (file_id, blobs[file_id])
            for file_id, _ in ranked
            if file_id in blobs
        )
        return self._decrypt_files(files)

    # -- basic scheme: one-round, client ranks everything ---------------------

    def search_all_and_rank(self, keyword: str) -> list[RetrievedFile]:
        """Basic one-round protocol: all files back, rank client-side."""
        if not isinstance(self._scheme, BasicRankedSSE):
            raise ParameterError(
                "client-side ranking is the basic scheme's protocol"
            )
        request = SearchRequest(trapdoor_bytes=self._trapdoor_bytes(keyword))
        response = SearchResponse.from_bytes(
            self._channel.call(request.to_bytes(self._codec))
        )
        scores = {
            file_id: self._decode_score(score_field)
            for file_id, score_field in response.matches
        }
        blobs = dict(response.files)
        ordered = rank_all(list(scores), key=lambda file_id: scores[file_id])
        return [
            RetrievedFile(
                rank=position,
                file_id=file_id,
                text=self._file_cipher.decrypt(blobs[file_id]).decode("utf-8"),
            )
            for position, file_id in enumerate(ordered, start=1)
        ]

    # -- basic scheme: two rounds, entries then chosen files -------------------

    def search_two_round_topk(
        self, keyword: str, k: int
    ) -> list[RetrievedFile]:
        """Basic two-round top-k (the bandwidth-saving variant).

        Round 1 fetches entries only; the client decrypts scores,
        selects the top-k ids, and round 2 fetches exactly those files.
        Costs an extra RTT and tells the server which files outrank the
        rest.
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        if not isinstance(self._scheme, BasicRankedSSE):
            raise ParameterError(
                "the two-round protocol belongs to the basic scheme"
            )
        request = SearchRequest(
            trapdoor_bytes=self._trapdoor_bytes(keyword), entries_only=True
        )
        response = SearchResponse.from_bytes(
            self._channel.call(request.to_bytes(self._codec))
        )
        scores = {
            file_id: self._decode_score(score_field)
            for file_id, score_field in response.matches
        }
        chosen = top_k(list(scores), k, key=lambda file_id: scores[file_id])
        fetch = FileRequest(file_ids=tuple(chosen))
        files_response = RankedFilesResponse.from_bytes(
            self._channel.call(fetch.to_bytes(self._codec))
        )
        return self._decrypt_files(files_response.files)

    # -- score handling (basic scheme only) -------------------------------------

    def _decode_score(self, score_field: bytes) -> float:
        key_z = self._credentials.scheme_key.require_z()
        cipher = SymmetricCipher(key_z)
        (score,) = struct.unpack(">d", cipher.decrypt(score_field))
        return score

    def ranking_of(self, retrieved: list[RetrievedFile]) -> list[RankedFile]:
        """Project retrieved files onto a :class:`RankedFile` list."""
        return as_ranking(
            [(item.file_id, float(-item.rank)) for item in retrieved]
        )
