"""Bounded, thread-safe LRU cache for decrypted posting lists.

The server's search cache (:class:`repro.cloud.server.CloudServer`,
:class:`repro.cloud.cluster.ClusterServer`) memoizes the decrypted
posting list per queried address — information the protocol already
leaks through the search pattern, so caching it adds no leakage.  A
production server cannot hold an unbounded dict of decrypted lists, so
this cache bounds residency with least-recently-used eviction.

All operations take an internal lock, making the cache safe under the
concurrent search traffic :class:`~repro.cloud.cluster.ClusterServer`
generates.  The hit counter is monotone: it survives :meth:`clear` and
evictions (it counts lifetime hits, not current contents).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from repro.errors import ParameterError

#: Default number of decrypted posting lists a server keeps resident.
DEFAULT_CACHE_CAPACITY = 256


class LruCache:
    """A bounded map with least-recently-used eviction.

    Parameters
    ----------
    capacity:
        Maximum number of entries resident at once; inserting into a
        full cache evicts the least recently *used* entry (both
        :meth:`get` hits and :meth:`put` refresh recency).
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY):
        if capacity < 1:
            raise ParameterError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum resident entries."""
        return self._capacity

    @property
    def hits(self) -> int:
        """Lifetime :meth:`get` hits (monotone non-decreasing)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lifetime :meth:`get` misses (monotone non-decreasing)."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Lifetime capacity evictions (monotone non-decreasing)."""
        return self._evictions

    @property
    def hit_ratio(self) -> float:
        """Lifetime hits / lookups (0.0 before the first lookup)."""
        lookups = self._hits + self._misses
        return self._hits / lookups if lookups else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Presence test without touching recency or counters."""
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU one if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = value

    def pop(self, key: Hashable) -> Any:
        """Remove one entry (None if absent); no counter changes."""
        with self._lock:
            return self._entries.pop(key, None)

    def clear(self) -> None:
        """Drop all entries; lifetime counters are preserved."""
        with self._lock:
            self._entries.clear()

    def keys(self) -> list[Hashable]:
        """Snapshot of resident keys, least recently used first."""
        with self._lock:
            return list(self._entries)
