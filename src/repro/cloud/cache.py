"""Bounded, thread-safe LRU caches for the serving stack.

The server's search cache (:class:`repro.cloud.server.CloudServer`,
:class:`repro.cloud.cluster.ClusterServer`) memoizes the decrypted
posting list per queried address — information the protocol already
leaks through the search pattern, so caching it adds no leakage.  A
production server cannot hold an unbounded dict of decrypted lists, so
this cache bounds residency with least-recently-used eviction.

Two capacity modes exist:

* **entries mode** (the default): at most ``capacity`` entries are
  resident; this is the historical behaviour and what the posting-list
  cache uses.
* **bytes mode** (``capacity_bytes``): residency is bounded by the sum
  of ``size_of(value)`` over resident entries.  Encoded response frames
  vary from a few hundred bytes to near the frame limit, so counting
  entries would undercount large responses by orders of magnitude; the
  hot-query result cache therefore budgets bytes.

:class:`ResultCache` layers epoch-based invalidation on top of a
bytes-mode :class:`LruCache`: every entry is stamped with the epoch of
each shard whose state it depends on, and mutations bump the shard's
epoch, making dependent entries unservable immediately (they are also
swept eagerly so the byte budget is not held by dead frames).

All operations take an internal lock, making the caches safe under the
concurrent search traffic :class:`~repro.cloud.cluster.ClusterServer`
generates.  The hit counter is monotone: it survives :meth:`clear` and
evictions (it counts lifetime hits, not current contents).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable

from repro.errors import ParameterError

#: Default number of decrypted posting lists a server keeps resident.
DEFAULT_CACHE_CAPACITY = 256

#: Default byte budget for the hot-query result cache (``repro serve
#: --result-cache``).  Sized for a few thousand typical top-k response
#: frames; far below ``MAX_FRAME_BYTES`` so a single giant response
#: cannot monopolize the front end's memory.
DEFAULT_RESULT_CACHE_BYTES = 8 << 20

_KEY_DIGEST_SIZE = 16


def _default_size_of(value: Any) -> int:
    return len(value)


class LruCache:
    """A bounded map with least-recently-used eviction.

    Parameters
    ----------
    capacity:
        Maximum number of entries resident at once; inserting into a
        full cache evicts the least recently *used* entry (both
        :meth:`get` hits and :meth:`put` refresh recency).  May be
        ``None`` when ``capacity_bytes`` alone should bound residency.
    capacity_bytes:
        Maximum total ``size_of(value)`` over resident entries; ``None``
        (the default) disables byte accounting.  A value larger than the
        whole budget is refused outright (never cached) rather than
        evicting everything else.
    size_of:
        Sizer for byte accounting; defaults to :func:`len` on the stored
        value.  Only consulted when ``capacity_bytes`` is set.
    """

    def __init__(
        self,
        capacity: int | None = DEFAULT_CACHE_CAPACITY,
        capacity_bytes: int | None = None,
        size_of: Callable[[Any], int] | None = None,
    ):
        if capacity is None and capacity_bytes is None:
            raise ParameterError("cache needs capacity and/or capacity_bytes")
        if capacity is not None and capacity < 1:
            raise ParameterError(f"cache capacity must be >= 1, got {capacity}")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ParameterError(
                f"cache capacity_bytes must be >= 1, got {capacity_bytes}"
            )
        self._capacity = capacity
        self._capacity_bytes = capacity_bytes
        self._size_of = size_of if size_of is not None else _default_size_of
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._sizes: dict[Hashable, int] = {}
        self._resident_bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._oversize_rejections = 0

    @property
    def capacity(self) -> int | None:
        """Maximum resident entries (None when only bytes-bounded)."""
        return self._capacity

    @property
    def capacity_bytes(self) -> int | None:
        """Maximum resident bytes (None when only entries-bounded)."""
        return self._capacity_bytes

    @property
    def resident_bytes(self) -> int:
        """Current total of ``size_of(value)`` over resident entries.

        Always 0 when byte accounting is disabled.
        """
        with self._lock:
            return self._resident_bytes

    @property
    def hits(self) -> int:
        """Lifetime :meth:`get` hits (monotone non-decreasing)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lifetime :meth:`get` misses (monotone non-decreasing)."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Lifetime capacity evictions (monotone non-decreasing)."""
        return self._evictions

    @property
    def oversize_rejections(self) -> int:
        """Lifetime :meth:`put` refusals of values over the byte budget."""
        return self._oversize_rejections

    @property
    def hit_ratio(self) -> float:
        """Lifetime hits / lookups (0.0 before the first lookup)."""
        lookups = self._hits + self._misses
        return self._hits / lookups if lookups else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Presence test without touching recency or counters."""
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return default

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value without touching recency or counters."""
        with self._lock:
            return self._entries.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting LRU entries if over budget.

        In bytes mode a value larger than the whole ``capacity_bytes``
        budget is refused; if the key was resident its stale entry is
        dropped (the cache must never keep a value :meth:`put` meant to
        replace).
        """
        with self._lock:
            size = 0
            if self._capacity_bytes is not None:
                size = self._size_of(value)
                if size > self._capacity_bytes:
                    self._drop(key)
                    self._oversize_rejections += 1
                    return
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                if self._capacity_bytes is not None:
                    self._resident_bytes += size - self._sizes[key]
                    self._sizes[key] = size
                    self._evict_over_byte_budget()
                return
            if self._capacity is not None and len(self._entries) >= self._capacity:
                self._evict_lru()
            self._entries[key] = value
            if self._capacity_bytes is not None:
                self._sizes[key] = size
                self._resident_bytes += size
                self._evict_over_byte_budget()

    def _evict_over_byte_budget(self) -> None:
        assert self._capacity_bytes is not None
        while self._resident_bytes > self._capacity_bytes and len(self._entries) > 1:
            self._evict_lru()

    def _evict_lru(self) -> None:
        key, _ = self._entries.popitem(last=False)
        self._resident_bytes -= self._sizes.pop(key, 0)
        self._evictions += 1

    def _drop(self, key: Hashable) -> Any:
        value = self._entries.pop(key, None)
        self._resident_bytes -= self._sizes.pop(key, 0)
        return value

    def pop(self, key: Hashable) -> Any:
        """Remove one entry (None if absent); no counter changes."""
        with self._lock:
            return self._drop(key)

    def clear(self) -> None:
        """Drop all entries; lifetime counters are preserved."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._resident_bytes = 0

    def keys(self) -> list[Hashable]:
        """Snapshot of resident keys, least recently used first."""
        with self._lock:
            return list(self._entries)


@dataclass(frozen=True)
class CachedResult:
    """One memoized response frame with its dependency stamps.

    ``stamps`` records, per shard the response depends on, the shard's
    epoch *when the request was admitted* — an entry is servable only
    while every stamped epoch is still current.  ``payload`` carries
    opaque replay data (the leakage observations the original execution
    produced) so a cache hit can keep the leakage log exact.
    """

    frame: bytes
    stamps: tuple[tuple[int, int], ...]
    payload: Any = None


class ResultCache:
    """Byte-budgeted cache of encoded response frames with epoch invalidation.

    Keys are ``(codec, request-frame digest)`` — see :meth:`key_for` —
    so two byte-identical request frames in the same codec share one
    entry, and the cached value is the byte-exact response frame the
    uncached path would have produced.

    Invalidation is epoch-based: :meth:`bump` advances a shard's epoch
    (or every epoch, for broadcast mutations) which immediately makes
    entries stamped with the old epoch unservable; they are also swept
    eagerly so dead frames do not occupy the byte budget.  Stamps are
    taken *before* the underlying request is dispatched (:meth:`stamp`),
    so a mutation racing with an in-flight fill lands the filled entry
    dead on arrival instead of serving a stale response.
    """

    def __init__(self, capacity_bytes: int, num_shards: int):
        if num_shards < 1:
            raise ParameterError(f"num_shards must be >= 1, got {num_shards}")
        self._cache = LruCache(
            capacity=None,
            capacity_bytes=capacity_bytes,
            size_of=lambda entry: len(entry.frame),
        )
        self._epochs = [0] * num_shards
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._coalesced = 0
        self._invalidations = 0

    @staticmethod
    def key_for(codec: str, request_bytes: bytes) -> tuple[str, bytes]:
        """Cache key for one request frame: ``(codec, frame digest)``."""
        digest = hashlib.blake2b(request_bytes, digest_size=_KEY_DIGEST_SIZE)
        return (codec, digest.digest())

    @property
    def hits(self) -> int:
        """Lifetime servable hits (monotone non-decreasing)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lifetime misses, including epoch-stale entries (monotone)."""
        return self._misses

    @property
    def coalesced(self) -> int:
        """Lifetime requests that piggybacked on an in-flight fill."""
        return self._coalesced

    @property
    def invalidations(self) -> int:
        """Lifetime :meth:`bump` calls (monotone non-decreasing)."""
        return self._invalidations

    @property
    def resident_bytes(self) -> int:
        """Current total of cached response-frame bytes."""
        return self._cache.resident_bytes

    def __len__(self) -> int:
        return len(self._cache)

    def stamp(self, shards: Iterable[int]) -> tuple[tuple[int, int], ...]:
        """Snapshot ``(shard, epoch)`` pairs for the shards a fill covers."""
        with self._lock:
            return tuple((shard, self._epochs[shard]) for shard in sorted(set(shards)))

    def get(self, key: tuple[str, bytes]) -> CachedResult | None:
        """Return a servable entry or None; stale entries are dropped."""
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None and self._fresh(entry):
                self._hits += 1
                return entry
            if entry is not None:
                self._cache.pop(key)
            self._misses += 1
            return None

    def put(
        self,
        key: tuple[str, bytes],
        stamps: tuple[tuple[int, int], ...],
        frame: bytes,
        payload: Any = None,
    ) -> None:
        """Store one filled response under stamps taken at admission."""
        with self._lock:
            self._cache.put(key, CachedResult(frame=frame, stamps=stamps, payload=payload))

    def bump(self, shard: int | None) -> None:
        """Advance one shard's epoch (all shards when ``shard`` is None).

        Entries stamped with an outdated epoch are swept immediately.
        """
        with self._lock:
            if shard is None:
                for index in range(len(self._epochs)):
                    self._epochs[index] += 1
            else:
                self._epochs[shard] += 1
            self._invalidations += 1
            for key in self._cache.keys():
                entry = self._cache.peek(key)
                if entry is not None and not self._fresh(entry):
                    self._cache.pop(key)

    def note_coalesced(self) -> None:
        """Count one request that awaited an in-flight identical fill."""
        with self._lock:
            self._coalesced += 1

    def _fresh(self, entry: CachedResult) -> bool:
        return all(self._epochs[shard] == epoch for shard, epoch in entry.stamps)

    def stats(self) -> dict[str, int]:
        """Counter snapshot for health endpoints and benchmarks."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "coalesced": self._coalesced,
                "invalidations": self._invalidations,
                "entries": len(self._cache),
                "resident_bytes": self._cache.resident_bytes,
            }
