"""Deterministic fault injection for the simulated serving network.

The paper's efficiency argument (one round trip, small responses) only
holds in production if a search actually *completes* when links drop
packets or a shard stalls.  This module turns the perfect
:class:`~repro.cloud.network.Channel` into an imperfect one on demand:
a :class:`FaultPlan` describes, as a pure function of a seed, which
calls are dropped, delayed, corrupted, or rejected by a crashed
target, and :class:`FaultyChannel` applies that plan on top of any
channel.

Everything is deterministic.  Per-call decisions are drawn from a
keyed BLAKE2b stream over ``(seed, target, call index)`` — never from
``random`` or ``hash()`` — so the same plan produces byte-identical
fault schedules across runs, threads started in the same order, and
any ``PYTHONHASHSEED``.  That determinism is what lets the test suite
assert *recovery* (a retried search converges to the fault-free
response) rather than merely "it usually works".

Fault model
-----------
* **drop** — the request is lost before reaching the server; the
  caller sees :class:`~repro.errors.CallDroppedError` and the server
  never observes the call (safe to re-send).
* **delay** — the call completes but is tagged with an injected
  latency, which the retry layer compares against its per-call
  deadline and hedging threshold (optionally also slept for real,
  for wall-clock benchmarks).
* **corrupt** — the server handled the request, but the response
  bytes are garbled in flight (the framing check in the retry layer
  catches this; note the server-side effect of an update *did*
  happen, which is why the update handler is idempotent).
* **crash window** — a half-open interval of call indexes during
  which the target rejects everything with
  :class:`~repro.errors.ShardDownError`, then recovers.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.cloud.network import Channel, ChannelStats
from repro.errors import CallDroppedError, ParameterError, ShardDownError
from repro.obs.base import StatsBase

#: Prefix prepended to corrupted responses; makes the bytes fail any
#: JSON framing check while keeping the corruption deterministic.
CORRUPTION_PREFIX = b"\x00\xffGARBLED\x00"


def _rate(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must be in [0, 1], got {value}")
    return float(value)


@dataclass(frozen=True)
class FaultDecision:
    """What happens to one call: at most one fault, by precedence.

    Precedence is crash > drop > corrupt > delay: a call inside a
    crash window never reaches the server regardless of the random
    stream, a dropped call cannot also be corrupted, and so on.
    """

    kind: str  # "ok" | "crash" | "drop" | "corrupt" | "delay"
    delay_s: float = 0.0


class FaultSchedule:
    """The per-target decision stream of a :class:`FaultPlan`.

    A pure function ``call index -> FaultDecision``; two schedules
    built from the same ``(plan, target)`` agree on every index.
    """

    def __init__(self, plan: "FaultPlan", target: int):
        self._plan = plan
        self._target = int(target)
        self._key = hashlib.blake2b(
            struct.pack(">qq", plan.seed, self._target),
            digest_size=32,
        ).digest()
        self._windows = plan.crash_windows.get(self._target, ())

    @property
    def plan(self) -> "FaultPlan":
        """The plan this schedule was derived from."""
        return self._plan

    @property
    def target(self) -> int:
        """The target (shard) id this schedule applies to."""
        return self._target

    def in_crash_window(self, call_index: int) -> bool:
        """True when ``call_index`` falls inside a crash window."""
        return any(start <= call_index < end for start, end in self._windows)

    def decision(self, call_index: int) -> FaultDecision:
        """The (deterministic) fate of call number ``call_index``."""
        if self.in_crash_window(call_index):
            return FaultDecision(kind="crash")
        digest = hashlib.blake2b(
            struct.pack(">q", call_index),
            key=self._key,
            digest_size=24,
        ).digest()
        draws = [
            int.from_bytes(digest[i : i + 8], "big") / 2.0**64
            for i in (0, 8, 16)
        ]
        if draws[0] < self._plan.drop_rate:
            return FaultDecision(kind="drop")
        if draws[1] < self._plan.corrupt_rate:
            return FaultDecision(kind="corrupt")
        if draws[2] < self._plan.delay_rate:
            return FaultDecision(kind="delay", delay_s=self._plan.delay_s)
        return FaultDecision(kind="ok")


@dataclass(frozen=True)
class FaultPlan:
    """A seedable, deterministic description of network faults.

    Parameters
    ----------
    seed:
        Drives every per-call decision; equal seeds yield identical
        fault schedules (and therefore identical retry schedules and
        byte-identical degraded results).
    drop_rate / corrupt_rate / delay_rate:
        Per-call probabilities in ``[0, 1]``, applied in precedence
        order (a dropped call is not also corrupted or delayed).
    delay_s:
        Injected latency for delay-faulted calls.
    crash_windows:
        ``target id -> ((start, end), ...)`` half-open intervals of
        *that target's* call indexes during which it rejects all
        calls.  Retried attempts consume indexes too, which is how a
        crashed shard's window eventually passes under probing.
    sleep_delays:
        Actually sleep injected delays (wall-clock benchmarks); off
        by default so tests run at full speed on modeled time.
    """

    seed: int = 0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.0
    crash_windows: Mapping[int, tuple[tuple[int, int], ...]] = field(
        default_factory=dict
    )
    sleep_delays: bool = False

    def __post_init__(self) -> None:
        _rate("drop_rate", self.drop_rate)
        _rate("corrupt_rate", self.corrupt_rate)
        _rate("delay_rate", self.delay_rate)
        if self.delay_s < 0:
            raise ParameterError(f"delay_s must be >= 0, got {self.delay_s}")
        normalized: dict[int, tuple[tuple[int, int], ...]] = {}
        for target, windows in dict(self.crash_windows).items():
            checked = []
            for window in windows:
                start, end = window
                if start < 0 or end <= start:
                    raise ParameterError(
                        f"crash window must satisfy 0 <= start < end, "
                        f"got {window}"
                    )
                checked.append((int(start), int(end)))
            normalized[int(target)] = tuple(checked)
        object.__setattr__(self, "crash_windows", normalized)

    def schedule_for(self, target: int) -> FaultSchedule:
        """The decision stream for one target (shard) id."""
        return FaultSchedule(self, target)


@dataclass
class FaultStats(StatsBase):
    """What a :class:`FaultyChannel` actually injected.

    ``snapshot()``/``reset()``/``merged()`` come from
    :class:`~repro.obs.base.StatsBase` — the same semantics as every
    other stats bundle, so per-shard fault counters roll up with
    ``FaultStats.merged(...)`` exactly like channel traffic does.
    """

    calls: int = 0
    drops: int = 0
    corruptions: int = 0
    delays: int = 0
    crash_rejections: int = 0
    total_delay_s: float = 0.0

    @property
    def faults(self) -> int:
        """Total faulted calls of any kind."""
        return self.drops + self.corruptions + self.crash_rejections


def corrupt_response(response: bytes) -> bytes:
    """Deterministically garble a response so framing checks fail."""
    return CORRUPTION_PREFIX + response


class FaultyChannel:
    """A :class:`~repro.cloud.network.Channel` wrapper injecting faults.

    Presents the same ``call()`` surface, so it slots between any
    client and its channel (the cluster wraps each shard's channel in
    one when given a fault plan).  Each call consumes the next index
    of the wrapped target's :class:`FaultSchedule`; the internal
    counter is lock-protected, so one faulty channel may carry calls
    from several threads while keeping the decision stream
    well-defined.

    Parameters
    ----------
    inner:
        The channel (or any object with ``call(bytes) -> bytes``) to
        wrap.
    schedule:
        The per-target decision stream, from
        :meth:`FaultPlan.schedule_for`.
    sleep:
        Clock used when the plan says ``sleep_delays`` (injectable
        for tests; defaults to :func:`time.sleep`).
    """

    def __init__(
        self,
        inner: Channel,
        schedule: FaultSchedule,
        sleep: Callable[[float], None] = time.sleep,
        obs=None,
    ):
        self._inner = inner
        self._schedule = schedule
        self._sleep = sleep
        self._fault_stats = FaultStats()
        self._calls = 0
        self._lock = threading.Lock()
        # Observability (repro.obs.Obs or None): injected faults count
        # into the metrics registry and annotate the calling thread's
        # current span (the retry attempt), so a trace shows *why* an
        # attempt failed, not just that it did.
        self._obs = obs
        #: Injected latency of the most recent call on this channel;
        #: the retry layer reads it to enforce deadlines and trigger
        #: hedging.  Meaningful under the cluster's per-shard
        #: serialization (one in-flight call per shard).
        self.last_injected_delay_s = 0.0

    @property
    def inner(self) -> Channel:
        """The wrapped channel."""
        return self._inner

    @property
    def stats(self) -> ChannelStats:
        """The wrapped channel's traffic counters (passthrough)."""
        return self._inner.stats

    @property
    def fault_stats(self) -> FaultStats:
        """Counters of injected faults on this channel."""
        return self._fault_stats

    @property
    def calls_made(self) -> int:
        """Call indexes consumed so far (next call uses this index)."""
        with self._lock:
            return self._calls

    def _observe_fault(self, kind: str) -> None:
        if self._obs is None:
            return
        self._obs.metrics.counter(
            "repro_faults_injected_total",
            kind=kind,
            target=self._schedule.target,
        ).inc()
        self._obs.tracer.annotate(fault=kind)

    def call(self, request: bytes) -> bytes:
        """Send ``request`` through the fault plan, then the channel."""
        with self._lock:
            index = self._calls
            self._calls += 1
            self._fault_stats.calls += 1
        decision = self._schedule.decision(index)
        if decision.kind == "crash":
            with self._lock:
                self._fault_stats.crash_rejections += 1
                self.last_injected_delay_s = 0.0
            self._observe_fault("crash")
            raise ShardDownError(
                f"target {self._schedule.target} is crashed "
                f"(call {index} in crash window)"
            )
        if decision.kind == "drop":
            with self._lock:
                self._fault_stats.drops += 1
                self.last_injected_delay_s = 0.0
            self._observe_fault("drop")
            raise CallDroppedError(
                f"call {index} to target {self._schedule.target} dropped"
            )
        response = self._inner.call(request)
        with self._lock:
            self.last_injected_delay_s = decision.delay_s
            if decision.kind == "delay":
                self._fault_stats.delays += 1
                self._fault_stats.total_delay_s += decision.delay_s
        if decision.kind == "delay":
            self._observe_fault("delay")
            if self._schedule.plan.sleep_delays:
                self._sleep(decision.delay_s)
        if decision.kind == "corrupt":
            with self._lock:
                self._fault_stats.corruptions += 1
            self._observe_fault("corrupt")
            return corrupt_response(response)
        return response
