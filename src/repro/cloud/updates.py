"""The index-update protocol: score dynamics over the wire.

:mod:`repro.core.dynamics` exercises the OPM's update-friendliness on
an in-memory index.  In a deployment, the owner and the server are
separated by a network; this module carries the updates across it:

* typed update messages (append/replace a posting list, put/remove a
  file blob), authenticated by an **update token** shared between
  owner and server at provisioning — search trapdoors must not grant
  write access;
* server-side handling that applies updates and invalidates the
  affected search-cache lines;
* :class:`RemoteIndexMaintainer`, the owner-side driver that turns
  "insert/remove this document" into the minimal message sequence —
  still **zero remapped entries** for insertions, now end to end.
"""

from __future__ import annotations

import hmac
import json
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.cloud.network import Transport
from repro.cloud.owner import DataOwner
from repro.cloud.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    FrameReader,
    detect_codec,
    pack_frames,
    require_codec,
)
from repro.cloud.retry import RetryingChannel, RetryPolicy
from repro.core.dynamics import UpdateReport, build_entry, build_list_entries
from repro.core.rsse import EfficientRSSE
from repro.corpus.loader import Document
from repro.crypto.opm import OneToManyOpm
from repro.crypto.stats import MappingStats
from repro.crypto.symmetric import SymmetricCipher
from repro.errors import ParameterError, ProtocolError, TransportError
from repro.obs.trace import NOOP_TRACER

#: Update-list application modes.
UPDATE_MODES = ("append", "replace")


def _encode(kind: str, payload: dict) -> bytes:
    return json.dumps({"kind": kind, **payload}, sort_keys=True).encode(
        "utf-8"
    )


def _decode(data: bytes, expected_kind: str) -> dict:
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed update message: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("update message is not a JSON object")
    if payload.get("kind") != expected_kind:
        raise ProtocolError(
            f"expected {expected_kind!r}, got {payload.get('kind')!r}"
        )
    return payload


@dataclass(frozen=True)
class UpdateListRequest:
    """Owner -> server: modify one posting list."""

    token: bytes
    address: bytes
    entries: tuple[bytes, ...]
    mode: str

    def __post_init__(self) -> None:
        if self.mode not in UPDATE_MODES:
            raise ParameterError(
                f"mode must be one of {UPDATE_MODES}, got {self.mode!r}"
            )

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            fields = [
                self.token,
                self.address,
                len(self.entries).to_bytes(4, "big"),
                *self.entries,
                self.mode.encode("utf-8"),
            ]
            return pack_frames("update-list", fields)
        return _encode(
            "update-list",
            {
                "token": self.token.hex(),
                "address": self.address.hex(),
                "entries": [entry.hex() for entry in self.entries],
                "mode": self.mode,
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "UpdateListRequest":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "update-list")
            token = reader.take()
            address = reader.take()
            count = reader.take_count()
            entries = tuple(reader.take() for _ in range(count))
            mode = reader.take_str()
            reader.expect_end()
            try:
                return cls(
                    token=token,
                    address=address,
                    entries=entries,
                    mode=mode,
                )
            except ParameterError as exc:
                raise ProtocolError(
                    f"malformed update-list fields: {exc}"
                ) from exc
        payload = _decode(data, "update-list")
        try:
            return cls(
                token=bytes.fromhex(payload["token"]),
                address=bytes.fromhex(payload["address"]),
                entries=tuple(
                    bytes.fromhex(entry) for entry in payload["entries"]
                ),
                mode=payload["mode"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed update-list fields: {exc}") from exc


@dataclass(frozen=True)
class PutBlobRequest:
    """Owner -> server: store an encrypted file."""

    token: bytes
    file_id: str
    blob: bytes

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames(
                "put-blob",
                [self.token, self.file_id.encode("utf-8"), self.blob],
            )
        return _encode(
            "put-blob",
            {
                "token": self.token.hex(),
                "file_id": self.file_id,
                "blob": self.blob.hex(),
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "PutBlobRequest":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "put-blob")
            token = reader.take()
            file_id = reader.take_str()
            blob = reader.take()
            reader.expect_end()
            return cls(token=token, file_id=file_id, blob=blob)
        payload = _decode(data, "put-blob")
        try:
            return cls(
                token=bytes.fromhex(payload["token"]),
                file_id=payload["file_id"],
                blob=bytes.fromhex(payload["blob"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed put-blob fields: {exc}") from exc


@dataclass(frozen=True)
class RemoveBlobRequest:
    """Owner -> server: delete an encrypted file."""

    token: bytes
    file_id: str

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames(
                "remove-blob",
                [self.token, self.file_id.encode("utf-8")],
            )
        return _encode(
            "remove-blob",
            {"token": self.token.hex(), "file_id": self.file_id},
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RemoveBlobRequest":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "remove-blob")
            token = reader.take()
            file_id = reader.take_str()
            reader.expect_end()
            return cls(token=token, file_id=file_id)
        payload = _decode(data, "remove-blob")
        try:
            return cls(
                token=bytes.fromhex(payload["token"]),
                file_id=payload["file_id"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed remove-blob fields: {exc}"
            ) from exc


@dataclass(frozen=True)
class AckResponse:
    """Server -> owner: update applied."""

    ok: bool
    detail: str = ""

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames(
                "ack",
                [
                    b"\x01" if self.ok else b"\x00",
                    self.detail.encode("utf-8"),
                ],
            )
        return _encode("ack", {"ok": self.ok, "detail": self.detail})

    @classmethod
    def from_bytes(cls, data: bytes) -> "AckResponse":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "ack")
            ok = reader.take() == b"\x01"
            detail = reader.take_str()
            reader.expect_end()
            return cls(ok=ok, detail=detail)
        payload = _decode(data, "ack")
        return cls(
            ok=bool(payload.get("ok")),
            detail=str(payload.get("detail", "")),
        )


def check_token(expected: bytes | None, presented: bytes) -> None:
    """Constant-time update-token verification."""
    if expected is None:
        raise ProtocolError("this server does not accept updates")
    if not hmac.compare_digest(expected, presented):
        raise ProtocolError("invalid update token")


class RemoteIndexMaintainer:
    """Owner-side driver for over-the-wire index updates.

    Parameters
    ----------
    owner:
        The :class:`DataOwner` whose collection was already outsourced
        (must use the efficient scheme; setup must have run, so the
        quantizer scale is fixed).
    channel:
        Transport to the update-accepting server (the in-process
        channel or a :class:`~repro.cloud.netserve.NetworkChannel`).
    update_token:
        The write-authorization secret shared with the server.
    retry_policy:
        Optional :class:`~repro.cloud.retry.RetryPolicy`; when given,
        the channel is wrapped in a
        :class:`~repro.cloud.retry.RetryingChannel` so transient
        transport faults are absorbed before any queueing happens.
        Safe because the server applies updates idempotently.
    queue_on_failure:
        When True, an update that still fails after retries is queued
        locally (and acked as ``"queued"``) instead of raising; call
        :meth:`flush_pending` once the shard recovers to replay the
        queue in order.  New mutations are refused while the queue is
        non-empty, so replay order can never violate per-address
        ordering.
    obs:
        Optional :class:`repro.obs.Obs` bundle: document mutations run
        under ``owner.insert_document`` / ``owner.remove_document``
        root spans with one ``owner.update_term`` child per touched
        posting list, update counters land in the metrics registry,
        and :meth:`publish_opm_stats` mirrors the cumulative OPM work
        counters as gauges.
    codec:
        Wire codec for every update message
        (:data:`~repro.cloud.protocol.CODEC_JSON`, the default, or
        :data:`~repro.cloud.protocol.CODEC_BINARY`).  The server
        mirrors the request codec in its acks, so either works against
        any server.
    """

    def __init__(
        self,
        owner: DataOwner,
        channel: Transport,
        update_token: bytes,
        retry_policy: RetryPolicy | None = None,
        queue_on_failure: bool = False,
        obs=None,
        codec: str = CODEC_JSON,
    ):
        if not isinstance(owner._scheme, EfficientRSSE):
            raise ParameterError(
                "remote updates require the efficient scheme"
            )
        if owner.quantizer is None:
            raise ParameterError(
                "owner has not run setup yet (no quantizer scale)"
            )
        if not update_token:
            raise ParameterError("update token must be non-empty")
        self._owner = owner
        self._scheme: EfficientRSSE = owner._scheme
        self._channel: Transport = (
            RetryingChannel(channel, retry_policy, obs=obs)
            if retry_policy is not None
            else channel
        )
        self._obs = obs
        self._tracer = obs.tracer if obs is not None else NOOP_TRACER
        self._token = bytes(update_token)
        self._codec = require_codec(codec)
        self._file_cipher = SymmetricCipher(owner.file_key)
        self._queue_on_failure = queue_on_failure
        self._pending: deque[bytes] = deque()
        self._pending_lock = threading.Lock()
        # Term -> OPM, reused across updates of the same keyword so its
        # split tree survives between calls.  OPM instances are not
        # thread-safe, so entries are created sequentially *before* a
        # dispatch fans out and each worker then touches only its own
        # term's instance (terms are distinct within a dispatch).
        self._opm_cache: dict[str, OneToManyOpm] = {}

    @property
    def pending_updates(self) -> int:
        """Updates queued behind an unreachable shard."""
        with self._pending_lock:
            return len(self._pending)

    def flush_pending(self) -> int:
        """Replay queued updates in order; returns how many landed.

        Stops (re-raising the transport failure) at the first update
        that still cannot be delivered, leaving it and everything
        behind it queued — replay is FIFO, so per-address ordering is
        preserved across recovery.
        """
        replayed = 0
        while True:
            with self._pending_lock:
                if not self._pending:
                    return replayed
                request_bytes = self._pending[0]
            ack = AckResponse.from_bytes(self._channel.call(request_bytes))
            if not ack.ok:
                raise ProtocolError(
                    f"server rejected queued update: {ack.detail}"
                )
            with self._pending_lock:
                self._pending.popleft()
            replayed += 1
            if self._obs is not None:
                self._obs.metrics.counter(
                    "repro_owner_flush_replayed_total"
                ).inc()

    def _require_no_pending(self) -> None:
        if self.pending_updates:
            raise ProtocolError(
                "updates are queued behind an unreachable shard; call "
                "flush_pending() before issuing new mutations"
            )

    def _observe_mutation(self, kind: str, lists_touched: int) -> None:
        """Count one document mutation + refresh the OPM work gauges."""
        if self._obs is None:
            return
        self._obs.metrics.counter(
            "repro_owner_updates_total", kind=kind
        ).inc()
        self._obs.metrics.counter(
            "repro_owner_lists_touched_total", kind=kind
        ).inc(lists_touched)
        self.publish_opm_stats()

    def publish_opm_stats(self) -> None:
        """Mirror cumulative OPM work counters into the registry.

        Gauges, not counters: each per-term OPM's
        :class:`~repro.crypto.stats.MappingStats` is itself cumulative,
        so the merged view is republished wholesale after every
        mutation (last write wins).
        """
        if self._obs is None or not self._opm_cache:
            return
        merged = MappingStats.merged(
            opm.stats for opm in self._opm_cache.values()
        )
        merged.publish_to(self._obs.metrics, layer="owner")

    def _opms_for(self, terms) -> dict[str, OneToManyOpm]:
        """Materialize the per-term OPMs for a dispatch, sequentially."""
        for term in terms:
            if term not in self._opm_cache:
                self._opm_cache[term] = self._scheme.opm_for_term(
                    self._owner.key, term
                )
        return self._opm_cache

    def _call(self, request_bytes: bytes) -> AckResponse:
        try:
            ack = AckResponse.from_bytes(self._channel.call(request_bytes))
        except TransportError:
            if not self._queue_on_failure:
                raise
            with self._pending_lock:
                self._pending.append(request_bytes)
            if self._obs is not None:
                self._obs.metrics.counter(
                    "repro_owner_queued_total"
                ).inc()
            return AckResponse(ok=True, detail="queued")
        if not ack.ok:
            raise ProtocolError(f"server rejected update: {ack.detail}")
        return ack

    def _dispatch_terms(self, terms, build_request, workers: int) -> None:
        """Send one update message per term, optionally concurrently.

        Per-term messages touch distinct posting lists (distinct
        addresses), so they commute; against a sharded server they land
        on their owning shards in parallel.  Message *construction*
        (trapdoor + entry encryption) happens inside the workers too —
        it reads only immutable key material and the already-mutated
        plaintext index.
        """
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        # The root mutation span is captured here and passed explicitly
        # because pool workers run in threads where thread-local
        # parenting cannot see it.
        parent = self._tracer.current()

        def send(position_term):
            position, term = position_term
            with self._tracer.span(
                "owner.update_term", parent=parent, term_index=position
            ):
                return self._call(build_request(term))

        if workers == 1 or len(terms) <= 1:
            for item in enumerate(terms):
                send(item)
            return
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for ack in pool.map(send, enumerate(terms)):
                assert ack.ok

    def insert_document(
        self, document: Document, workers: int = 1
    ) -> UpdateReport:
        """Insert a document: blob upload + per-keyword appends.

        The blob is uploaded *before* any index entries so a concurrent
        search never matches a file whose payload is missing; the
        per-keyword appends then dispatch on ``workers`` threads.
        (With ``queue_on_failure`` a queued blob weakens that to "a
        search may match a file whose blob is pending" — the search
        path already tolerates a missing blob by dropping the file
        from the response.)
        """
        self._require_no_pending()
        owner = self._owner
        index = owner.plain_index
        with self._tracer.span("owner.insert_document") as span:
            index.add_document(
                document.doc_id, owner.analyzer.analyze(document.text)
            )
            terms = sorted(
                term
                for term in index.vocabulary
                if index.term_frequency(term, document.doc_id) > 0
            )
            span.set(terms=len(terms))
            self._call(
                PutBlobRequest(
                    token=self._token,
                    file_id=document.doc_id,
                    blob=self._file_cipher.encrypt(
                        document.text.encode("utf-8")
                    ),
                ).to_bytes(self._codec)
            )

            opms = self._opms_for(terms)

            def append_request(term: str) -> bytes:
                trapdoor = self._scheme.trapdoor(owner.key, term)
                entry = build_entry(
                    self._scheme, owner.key, index, owner.quantizer,
                    term, document.doc_id, opm=opms[term],
                )
                return UpdateListRequest(
                    token=self._token,
                    address=trapdoor.address,
                    entries=(entry,),
                    mode="append",
                ).to_bytes(self._codec)

            self._dispatch_terms(terms, append_request, workers)
        self._observe_mutation("insert", len(terms))
        return UpdateReport(
            lists_touched=len(terms),
            entries_written=len(terms),
            entries_remapped=0,
        )

    def remove_document(self, doc_id: str, workers: int = 1) -> UpdateReport:
        """Remove a document: per-keyword list rewrites + blob delete.

        The owner recomputes each affected list from its plaintext
        index (minus the removed file) and replaces it wholesale; other
        files' entries are regenerated deterministically, so their OPM
        values are unchanged (no remapping in the paper's sense).  All
        list rewrites complete (on ``workers`` threads) before the blob
        is deleted, so a concurrent search that still matches the file
        can still fetch it.
        """
        self._require_no_pending()
        owner = self._owner
        index = owner.plain_index
        terms = sorted(
            term
            for term in index.vocabulary
            if index.term_frequency(term, doc_id) > 0
        )
        if not terms:
            raise ParameterError(f"document {doc_id!r} is not indexed")
        with self._tracer.span(
            "owner.remove_document", terms=len(terms)
        ):
            index.remove_document(doc_id)

            opms = self._opms_for(terms)

            def replace_request(term: str) -> bytes:
                trapdoor = self._scheme.trapdoor(owner.key, term)
                replacement = tuple(
                    build_list_entries(
                        self._scheme, owner.key, index, owner.quantizer,
                        term,
                        (p.file_id for p in index.posting_list(term)),
                        opm=opms[term],
                    )
                )
                return UpdateListRequest(
                    token=self._token,
                    address=trapdoor.address,
                    entries=replacement,
                    mode="replace",
                ).to_bytes(self._codec)

            self._dispatch_terms(terms, replace_request, workers)
            self._call(
                RemoveBlobRequest(
                    token=self._token, file_id=doc_id
                ).to_bytes(self._codec)
            )
        self._observe_mutation("remove", len(terms))
        return UpdateReport(
            lists_touched=len(terms),
            entries_written=0,
            entries_remapped=0,
            entries_removed=len(terms),
        )
