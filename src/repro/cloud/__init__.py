"""Cloud-hosting simulation: the three entities of the paper's Fig. 1.

* :class:`~repro.cloud.owner.DataOwner` — Setup phase;
* :class:`~repro.cloud.server.CloudServer` — honest-but-curious host;
* :class:`~repro.cloud.user.DataUser` — Retrieval phase;
* :class:`~repro.cloud.network.Channel` — accounted transport.
"""

from repro.cloud.abac import (
    Attribute,
    AttributeAuthority,
    PolicyCiphertext,
    PolicyDecryptor,
    Threshold,
    and_of,
    k_of,
    or_of,
)
from repro.cloud.authorization import (
    AuthorizationManager,
    AuthorizationTicket,
)
from repro.cloud.broadcast import (
    BroadcastCiphertext,
    BroadcastEncryption,
    UserKeySet,
)
from repro.cloud.network import Channel, ChannelStats, LinkModel
from repro.cloud.owner import DataOwner, Outsourcing, UserCredentials
from repro.cloud.protocol import (
    FileRequest,
    RankedFilesResponse,
    SearchRequest,
    SearchResponse,
)
from repro.cloud.server import CloudServer, SearchObservation, ServerLog
from repro.cloud.storage import BlobStore
from repro.cloud.updates import (
    AckResponse,
    PutBlobRequest,
    RemoteIndexMaintainer,
    RemoveBlobRequest,
    UpdateListRequest,
)
from repro.cloud.user import DataUser, RetrievedFile

__all__ = [
    "AckResponse",
    "Attribute",
    "AttributeAuthority",
    "AuthorizationManager",
    "AuthorizationTicket",
    "BlobStore",
    "BroadcastCiphertext",
    "BroadcastEncryption",
    "Channel",
    "ChannelStats",
    "CloudServer",
    "DataOwner",
    "DataUser",
    "FileRequest",
    "LinkModel",
    "Outsourcing",
    "PolicyCiphertext",
    "PolicyDecryptor",
    "PutBlobRequest",
    "RankedFilesResponse",
    "RemoteIndexMaintainer",
    "RemoveBlobRequest",
    "RetrievedFile",
    "SearchObservation",
    "SearchRequest",
    "SearchResponse",
    "ServerLog",
    "Threshold",
    "UpdateListRequest",
    "UserCredentials",
    "UserKeySet",
    "and_of",
    "k_of",
    "or_of",
]
