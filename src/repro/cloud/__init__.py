"""Cloud-hosting simulation: the three entities of the paper's Fig. 1.

* :class:`~repro.cloud.owner.DataOwner` — Setup phase;
* :class:`~repro.cloud.server.CloudServer` — honest-but-curious host;
* :class:`~repro.cloud.user.DataUser` — Retrieval phase;
* :class:`~repro.cloud.network.Channel` — accounted transport;
* :class:`~repro.cloud.cluster.ClusterServer` — sharded concurrent
  front end over per-shard :class:`~repro.cloud.server.CloudServer`
  workers;
* :class:`~repro.cloud.netserve.NetServer` /
  :class:`~repro.cloud.netserve.NetworkChannel` — the same cluster
  over real TCP sockets with one worker *process* per shard.
"""

from repro.cloud.abac import (
    Attribute,
    AttributeAuthority,
    PolicyCiphertext,
    PolicyDecryptor,
    Threshold,
    and_of,
    k_of,
    or_of,
)
from repro.cloud.authorization import (
    AuthorizationManager,
    AuthorizationTicket,
)
from repro.cloud.broadcast import (
    BroadcastCiphertext,
    BroadcastEncryption,
    UserKeySet,
)
from repro.cloud.cache import DEFAULT_CACHE_CAPACITY, LruCache
from repro.cloud.cluster import (
    DEFAULT_NUM_SHARDS,
    DEFAULT_SHARD_SEED,
    ClusterServer,
    PartialResult,
    ShardedIndex,
    shard_for_address,
)
from repro.cloud.faults import (
    FaultPlan,
    FaultSchedule,
    FaultStats,
    FaultyChannel,
)
from repro.cloud.netserve import NetServer, NetworkChannel
from repro.cloud.network import (
    Channel,
    ChannelSnapshot,
    ChannelStats,
    LinkModel,
    Transport,
)
from repro.cloud.retry import (
    BreakerConfig,
    BreakerSnapshot,
    CircuitBreaker,
    RetryingChannel,
    RetryPolicy,
)
from repro.cloud.owner import DataOwner, Outsourcing, UserCredentials
from repro.cloud.protocol import (
    ErrorResponse,
    FileRequest,
    RankedFilesResponse,
    SearchRequest,
    SearchResponse,
)
from repro.cloud.server import CloudServer, SearchObservation, ServerLog
from repro.cloud.storage import BlobStore
from repro.cloud.store import (
    PackedIndexStore,
    PackedIndexWriter,
    PackedStore,
    SpillingPackWriter,
    load_packed_index,
    pack_index,
)
from repro.cloud.updates import (
    AckResponse,
    PutBlobRequest,
    RemoteIndexMaintainer,
    RemoveBlobRequest,
    UpdateListRequest,
)
from repro.cloud.user import DataUser, RetrievedFile

__all__ = [
    "AckResponse",
    "Attribute",
    "AttributeAuthority",
    "AuthorizationManager",
    "AuthorizationTicket",
    "BlobStore",
    "BreakerConfig",
    "BreakerSnapshot",
    "BroadcastCiphertext",
    "BroadcastEncryption",
    "Channel",
    "ChannelSnapshot",
    "ChannelStats",
    "CircuitBreaker",
    "CloudServer",
    "ClusterServer",
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_NUM_SHARDS",
    "DEFAULT_SHARD_SEED",
    "DataOwner",
    "DataUser",
    "ErrorResponse",
    "FaultPlan",
    "FaultSchedule",
    "FaultStats",
    "FaultyChannel",
    "FileRequest",
    "LinkModel",
    "LruCache",
    "NetServer",
    "NetworkChannel",
    "Outsourcing",
    "PackedIndexStore",
    "PackedIndexWriter",
    "PackedStore",
    "PartialResult",
    "PolicyCiphertext",
    "PolicyDecryptor",
    "PutBlobRequest",
    "RankedFilesResponse",
    "RemoteIndexMaintainer",
    "RemoveBlobRequest",
    "RetrievedFile",
    "RetryPolicy",
    "RetryingChannel",
    "SearchObservation",
    "SearchRequest",
    "SearchResponse",
    "ServerLog",
    "ShardedIndex",
    "SpillingPackWriter",
    "Threshold",
    "Transport",
    "UpdateListRequest",
    "UserCredentials",
    "UserKeySet",
    "and_of",
    "k_of",
    "load_packed_index",
    "or_of",
    "pack_index",
    "shard_for_address",
]
