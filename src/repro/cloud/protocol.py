"""Wire protocol between user and cloud server.

Typed messages with explicit byte encodings, so the simulated network
(:mod:`repro.cloud.network`) can account bandwidth exactly — the
paper's Section III-C argument against the basic scheme is a bandwidth
and round-trip argument, and ``benchmarks/bench_basic_vs_rsse.py``
measures it on these encodings.

Encoding is deliberately simple (JSON with hex for binary fields);
sizes are dominated by payloads (entries, files), which JSON overhead
does not distort materially.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ProtocolError


def _encode(kind: str, payload: dict) -> bytes:
    return json.dumps({"kind": kind, **payload}, sort_keys=True).encode("utf-8")


def _decode(data: bytes, expected_kind: str) -> dict:
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed message: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("message is not a JSON object")
    if payload.get("kind") != expected_kind:
        raise ProtocolError(
            f"expected {expected_kind!r} message, got {payload.get('kind')!r}"
        )
    return payload


def peek_kind(request_bytes: bytes) -> str:
    """Read a message's ``kind`` tag without full parsing.

    Servers (:class:`~repro.cloud.server.CloudServer`, the cluster
    front end) use this to dispatch before choosing which typed
    ``from_bytes`` to run.
    """
    try:
        payload = json.loads(request_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed request: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request is not a JSON object")
    return payload.get("kind", "")


@dataclass(frozen=True)
class SearchRequest:
    """A search: the trapdoor, optionally with a top-k bound.

    ``top_k=None`` asks for all matches (basic one-round flavour);
    ``entries_only=True`` asks for the entry list without file payloads
    (first round of the basic two-round protocol).
    """

    trapdoor_bytes: bytes
    top_k: int | None = None
    entries_only: bool = False

    def to_bytes(self) -> bytes:
        return _encode(
            "search",
            {
                "trapdoor": self.trapdoor_bytes.hex(),
                "top_k": self.top_k,
                "entries_only": self.entries_only,
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "SearchRequest":
        payload = _decode(data, "search")
        return cls(
            trapdoor_bytes=bytes.fromhex(payload["trapdoor"]),
            top_k=payload["top_k"],
            entries_only=payload["entries_only"],
        )


@dataclass(frozen=True)
class SearchResponse:
    """Server -> user: matched entries, optionally with file payloads.

    ``matches`` carries ``(file_id, score_field)`` pairs — the score
    field is ``E_z(S)`` (basic scheme) or the OPM value bytes
    (efficient scheme).  ``files`` carries encrypted blobs when the
    request asked for them, in the order the server ranked them (index
    order when the server cannot rank).
    """

    matches: tuple[tuple[str, bytes], ...] = field(default_factory=tuple)
    files: tuple[tuple[str, bytes], ...] = field(default_factory=tuple)

    def to_bytes(self) -> bytes:
        return _encode(
            "search-response",
            {
                "matches": [
                    [file_id, score_field.hex()]
                    for file_id, score_field in self.matches
                ],
                "files": [
                    [file_id, blob.hex()] for file_id, blob in self.files
                ],
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "SearchResponse":
        payload = _decode(data, "search-response")
        return cls(
            matches=tuple(
                (file_id, bytes.fromhex(score_hex))
                for file_id, score_hex in payload["matches"]
            ),
            files=tuple(
                (file_id, bytes.fromhex(blob_hex))
                for file_id, blob_hex in payload["files"]
            ),
        )


@dataclass(frozen=True)
class FileRequest:
    """User -> server: fetch these files (second round, basic scheme)."""

    file_ids: tuple[str, ...]

    def to_bytes(self) -> bytes:
        return _encode("fetch", {"file_ids": list(self.file_ids)})

    @classmethod
    def from_bytes(cls, data: bytes) -> "FileRequest":
        payload = _decode(data, "fetch")
        return cls(file_ids=tuple(payload["file_ids"]))


@dataclass(frozen=True)
class RankedFilesResponse:
    """Server -> user: encrypted files in rank order."""

    files: tuple[tuple[str, bytes], ...] = field(default_factory=tuple)

    def to_bytes(self) -> bytes:
        return _encode(
            "files",
            {
                "files": [
                    [file_id, blob.hex()] for file_id, blob in self.files
                ]
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RankedFilesResponse":
        payload = _decode(data, "files")
        return cls(
            files=tuple(
                (file_id, bytes.fromhex(blob_hex))
                for file_id, blob_hex in payload["files"]
            )
        )
