"""Wire protocol between user and cloud server.

Typed messages with explicit byte encodings, so the simulated network
(:mod:`repro.cloud.network`) can account bandwidth exactly — the
paper's Section III-C argument against the basic scheme is a bandwidth
and round-trip argument, and ``benchmarks/bench_basic_vs_rsse.py``
measures it on these encodings.

Two codecs share every message type:

* **json** (:data:`CODEC_JSON`, the default) — JSON with hex for
  binary fields.  Deliberately simple and human-inspectable; the
  bandwidth-accounting reference for the paper's figures (hex doubles
  every blob, which the figures note).
* **binary** (:data:`CODEC_BINARY`) — a length-prefixed framing: one
  kind-tag byte followed by ``u32``-length-prefixed raw-byte fields.
  No hex inflation, and :func:`peek_kind` reads exactly one byte, so
  servers dispatch without parsing payloads.

``to_bytes(codec=...)`` selects the encoding; ``from_bytes`` and
:func:`peek_kind` auto-detect it (binary tags occupy the high-bit
byte range, JSON messages start with ``{``), so a server transparently
serves clients speaking either codec and mirrors the request's codec
in its response.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ProtocolError

#: The hex-over-JSON codec (default; bandwidth-accounting reference).
CODEC_JSON = "json"

#: The length-prefixed binary codec (no hex, one-byte kind peek).
CODEC_BINARY = "binary"

#: Every supported codec name.
CODECS = (CODEC_JSON, CODEC_BINARY)

#: Binary kind tags, one byte each.  High-bit values cannot collide
#: with the ``{`` (0x7b) a JSON message starts with, so codec
#: detection needs only the first byte.
BINARY_TAGS = {
    "search": 0xA1,
    "search-response": 0xA2,
    "fetch": 0xA3,
    "files": 0xA4,
    "multi-search": 0xA5,
    "multi-search-response": 0xA6,
    "update-list": 0xB1,
    "put-blob": 0xB2,
    "remove-blob": 0xB3,
    "ack": 0xB4,
    "error": 0xBF,
    "traced": 0xC1,
    "obs-snapshot": 0xC2,
    "obs-snapshot-response": 0xC3,
    "admin": 0xC4,
    "admin-response": 0xC5,
    "observed": 0xC6,
    "observed-response": 0xC7,
}

_KIND_FOR_TAG = {tag: kind for kind, tag in BINARY_TAGS.items()}

#: Multi-keyword aggregation: a file must match every term.
MODE_CONJUNCTIVE = "conjunctive"

#: Multi-keyword aggregation: a file may match any subset of terms.
MODE_DISJUNCTIVE = "disjunctive"

#: Every supported multi-keyword mode.
MULTI_MODES = (MODE_CONJUNCTIVE, MODE_DISJUNCTIVE)

#: Width of the aggregated OPM-sum score field in a final
#: multi-search response.  Single-term OPM fields are at most 6 bytes
#: (``range_size`` ~ 2^46), so even a 64-term sum fits in 8.
MULTI_SCORE_BYTES = 8

#: Width of the per-shard partial score field: the 8-byte running sum
#: followed by a 4-byte count of how many of the shard's terms the
#: file matched (the coordinator's conjunctive completeness check).
PARTIAL_SCORE_BYTES = MULTI_SCORE_BYTES + 4


def pack_multi_score(total: int) -> bytes:
    """Encode an aggregated OPM sum as a fixed-width score field."""
    if total < 0:
        raise ProtocolError(f"negative aggregate score {total}")
    try:
        return total.to_bytes(MULTI_SCORE_BYTES, "big")
    except OverflowError:
        raise ProtocolError(
            f"aggregate score {total} exceeds "
            f"{MULTI_SCORE_BYTES} bytes"
        ) from None


def unpack_multi_score(score_field: bytes) -> int:
    """Decode a final multi-search score field back to its OPM sum."""
    if len(score_field) != MULTI_SCORE_BYTES:
        raise ProtocolError(
            f"malformed multi-search score field of "
            f"{len(score_field)} bytes"
        )
    return int.from_bytes(score_field, "big")


def pack_partial_score(total: int, terms_matched: int) -> bytes:
    """Encode one shard's partial aggregate: sum || matched-term count."""
    if terms_matched < 1:
        raise ProtocolError(
            f"terms_matched must be >= 1, got {terms_matched}"
        )
    return pack_multi_score(total) + terms_matched.to_bytes(4, "big")


def unpack_partial_score(score_field: bytes) -> tuple[int, int]:
    """Decode a partial score field to ``(sum, terms_matched)``."""
    if len(score_field) != PARTIAL_SCORE_BYTES:
        raise ProtocolError(
            f"malformed partial score field of "
            f"{len(score_field)} bytes"
        )
    return (
        int.from_bytes(score_field[:MULTI_SCORE_BYTES], "big"),
        int.from_bytes(score_field[MULTI_SCORE_BYTES:], "big"),
    )


def require_codec(codec: str) -> str:
    """Validate a codec name (returns it for chaining)."""
    if codec not in CODECS:
        raise ProtocolError(
            f"unknown codec {codec!r}; expected one of {CODECS}"
        )
    return codec


def detect_codec(data: bytes) -> str:
    """Which codec encoded this message (from its first byte)."""
    if not data:
        raise ProtocolError("empty message")
    first = data[0]
    if first in _KIND_FOR_TAG:
        return CODEC_BINARY
    if first == 0x7B:  # '{'
        return CODEC_JSON
    raise ProtocolError(
        f"unrecognized message leading byte 0x{first:02x}"
    )


# -- stream framing (messages over a byte stream) --------------------------

#: Default upper bound on one framed message.  Large enough for any
#: realistic search response (matches + encrypted files); small enough
#: that a corrupted or hostile length prefix cannot make a server
#: buffer gigabytes before noticing.
MAX_FRAME_BYTES = 16 * 1024 * 1024


def encode_frame(
    payload: bytes, max_frame_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Frame one codec message for a byte stream: ``u32 length || payload``.

    TCP gives a byte stream, not message boundaries; every message the
    network layer (:mod:`repro.cloud.netserve`) moves is wrapped in
    this length prefix so the receiver can reassemble it regardless of
    how the kernel chunked it.  The payload itself is any
    ``to_bytes()`` encoding (either codec) — the prefix is codec-blind.
    """
    if not payload:
        raise ProtocolError("cannot frame an empty payload")
    if len(payload) > max_frame_bytes:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the frame limit "
            f"of {max_frame_bytes}"
        )
    return len(payload).to_bytes(4, "big") + payload


class StreamDecoder:
    """Incremental reassembly of length-prefixed frames from a stream.

    Feed arbitrary chunks (a 1-byte dribble, several coalesced frames,
    a read that ends mid-header — whatever the socket hands back) and
    collect complete message payloads as they materialize.  The
    length prefix is validated the moment its 4 bytes are available:
    a zero or oversized length raises :class:`~repro.errors.ProtocolError`
    *before* any body byte is read or buffered, so a hostile prefix
    cannot make the receiver allocate or wait for a body that will
    never legitimately arrive.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        if max_frame_bytes < 1:
            raise ProtocolError(
                f"max_frame_bytes must be >= 1, got {max_frame_bytes}"
            )
        self._max = max_frame_bytes
        self._buffer = bytearray()
        self._needed: int | None = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    @property
    def at_boundary(self) -> bool:
        """True when no partial frame is buffered (a clean cut point)."""
        return self._needed is None and not self._buffer

    def feed(self, chunk: bytes) -> list[bytes]:
        """Absorb ``chunk``; return every payload it completed, in order."""
        self._buffer.extend(chunk)
        frames: list[bytes] = []
        while True:
            if self._needed is None:
                if len(self._buffer) < 4:
                    break
                length = int.from_bytes(self._buffer[:4], "big")
                if length == 0:
                    raise ProtocolError("zero-length frame")
                if length > self._max:
                    raise ProtocolError(
                        f"frame length {length} exceeds the limit of "
                        f"{self._max}"
                    )
                del self._buffer[:4]
                self._needed = length
            if len(self._buffer) < self._needed:
                break
            frames.append(bytes(self._buffer[: self._needed]))
            del self._buffer[: self._needed]
            self._needed = None
        return frames


# -- json codec helpers ----------------------------------------------------


def _encode(kind: str, payload: dict) -> bytes:
    return json.dumps(
        {"kind": kind, **payload}, sort_keys=True
    ).encode("utf-8")


def _decode(data: bytes, expected_kind: str) -> dict:
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed message: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("message is not a JSON object")
    if payload.get("kind") != expected_kind:
        raise ProtocolError(
            f"expected {expected_kind!r} message, "
            f"got {payload.get('kind')!r}"
        )
    return payload


# -- binary codec helpers --------------------------------------------------


def pack_frames(kind: str, fields: list[bytes]) -> bytes:
    """Binary-encode: kind tag byte + u32-length-prefixed fields."""
    parts = [bytes([BINARY_TAGS[kind]])]
    for data in fields:
        parts.append(len(data).to_bytes(4, "big"))
        parts.append(data)
    return b"".join(parts)


class FrameReader:
    """Sequential reader for the binary framing.

    Checks the kind tag up front, then hands back one field per
    :meth:`take`; :meth:`expect_end` asserts the message was fully
    consumed (trailing garbage is a protocol violation, not padding).
    """

    def __init__(self, data: bytes, expected_kind: str):
        if not data:
            raise ProtocolError("empty binary message")
        kind = _KIND_FOR_TAG.get(data[0])
        if kind is None:
            raise ProtocolError(
                f"unknown binary kind tag 0x{data[0]:02x}"
            )
        if kind != expected_kind:
            raise ProtocolError(
                f"expected {expected_kind!r} message, got {kind!r}"
            )
        self._data = data
        self._offset = 1

    def take(self) -> bytes:
        """Read the next length-prefixed field."""
        end = self._offset + 4
        if end > len(self._data):
            raise ProtocolError("truncated binary message (length)")
        length = int.from_bytes(self._data[self._offset:end], "big")
        self._offset = end + length
        if self._offset > len(self._data):
            raise ProtocolError("truncated binary message (field)")
        return self._data[end:self._offset]

    def take_str(self) -> str:
        """Read the next field as UTF-8 text."""
        try:
            return self.take().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(
                f"malformed text field: {exc}"
            ) from exc

    def take_count(self) -> int:
        """Read the next field as a u32 item count."""
        data = self.take()
        if len(data) != 4:
            raise ProtocolError("malformed count field")
        return int.from_bytes(data, "big")

    def expect_end(self) -> None:
        """Fail if unconsumed bytes remain."""
        if self._offset != len(self._data):
            raise ProtocolError("trailing bytes after binary message")


def _pack_count(count: int) -> bytes:
    return count.to_bytes(4, "big")


def _pack_pairs(pairs: tuple[tuple[str, bytes], ...]) -> list[bytes]:
    """Flatten ``(file_id, blob)`` pairs into count + field frames."""
    fields = [_pack_count(len(pairs))]
    for file_id, blob in pairs:
        fields.append(file_id.encode("utf-8"))
        fields.append(blob)
    return fields


def _take_pairs(reader: FrameReader) -> tuple[tuple[str, bytes], ...]:
    count = reader.take_count()
    return tuple(
        (reader.take_str(), reader.take()) for _ in range(count)
    )


def peek_kind(request_bytes: bytes) -> str:
    """Read a message's ``kind`` tag without full payload parsing.

    Servers (:class:`~repro.cloud.server.CloudServer`, the cluster
    front end) use this to dispatch before choosing which typed
    ``from_bytes`` to run.  For the binary codec this is a single
    byte-table lookup; the JSON codec still pays a full parse (one
    reason the binary codec wins the cold-query benchmark).
    """
    if detect_codec(request_bytes) == CODEC_BINARY:
        return _KIND_FOR_TAG[request_bytes[0]]
    try:
        payload = json.loads(request_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed request: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request is not a JSON object")
    kind = payload.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError("JSON message lacks a string 'kind' tag")
    return kind


@dataclass(frozen=True)
class SearchRequest:
    """A search: the trapdoor, optionally with a top-k bound.

    ``top_k=None`` asks for all matches (basic one-round flavour);
    ``entries_only=True`` asks for the entry list without file payloads
    (first round of the basic two-round protocol).
    """

    trapdoor_bytes: bytes
    top_k: int | None = None
    entries_only: bool = False

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames(
                "search",
                [
                    self.trapdoor_bytes,
                    b""
                    if self.top_k is None
                    else _pack_count(self.top_k),
                    b"\x01" if self.entries_only else b"\x00",
                ],
            )
        return _encode(
            "search",
            {
                "trapdoor": self.trapdoor_bytes.hex(),
                "top_k": self.top_k,
                "entries_only": self.entries_only,
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "SearchRequest":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "search")
            trapdoor_bytes = reader.take()
            top_k_field = reader.take()
            if top_k_field and len(top_k_field) != 4:
                raise ProtocolError("malformed top_k field")
            entries_only = reader.take() == b"\x01"
            reader.expect_end()
            return cls(
                trapdoor_bytes=trapdoor_bytes,
                top_k=(
                    int.from_bytes(top_k_field, "big")
                    if top_k_field
                    else None
                ),
                entries_only=entries_only,
            )
        payload = _decode(data, "search")
        return cls(
            trapdoor_bytes=bytes.fromhex(payload["trapdoor"]),
            top_k=payload["top_k"],
            entries_only=payload["entries_only"],
        )


@dataclass(frozen=True)
class SearchResponse:
    """Server -> user: matched entries, optionally with file payloads.

    ``matches`` carries ``(file_id, score_field)`` pairs — the score
    field is ``E_z(S)`` (basic scheme) or the OPM value bytes
    (efficient scheme).  ``files`` carries encrypted blobs when the
    request asked for them, in the order the server ranked them (index
    order when the server cannot rank).
    """

    matches: tuple[tuple[str, bytes], ...] = field(default_factory=tuple)
    files: tuple[tuple[str, bytes], ...] = field(default_factory=tuple)

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames(
                "search-response",
                _pack_pairs(self.matches) + _pack_pairs(self.files),
            )
        return _encode(
            "search-response",
            {
                "matches": [
                    [file_id, score_field.hex()]
                    for file_id, score_field in self.matches
                ],
                "files": [
                    [file_id, blob.hex()] for file_id, blob in self.files
                ],
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "SearchResponse":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "search-response")
            matches = _take_pairs(reader)
            files = _take_pairs(reader)
            reader.expect_end()
            return cls(matches=matches, files=files)
        payload = _decode(data, "search-response")
        return cls(
            matches=tuple(
                (file_id, bytes.fromhex(score_hex))
                for file_id, score_hex in payload["matches"]
            ),
            files=tuple(
                (file_id, bytes.fromhex(blob_hex))
                for file_id, blob_hex in payload["files"]
            ),
        )


@dataclass(frozen=True)
class MultiSearchRequest:
    """A one-round multi-keyword search: k trapdoors, one response.

    ``mode`` selects conjunctive (files must match every term) or
    disjunctive (any term) aggregation of the per-term OPM scores.
    ``top_k=None`` asks for the full aggregated ranking.
    ``partial=True`` is the shard-internal flavour: the server returns
    its complete local aggregates (sum || matched-term count fields,
    no file payloads) for a coordinator to merge — tie-breaks at the
    coordinator then match a single server's exactly.
    """

    trapdoors: tuple[bytes, ...]
    mode: str = MODE_CONJUNCTIVE
    top_k: int | None = None
    partial: bool = False

    def __post_init__(self) -> None:
        if not self.trapdoors:
            raise ProtocolError(
                "multi-search requires at least one trapdoor"
            )
        if self.mode not in MULTI_MODES:
            raise ProtocolError(
                f"unknown multi-search mode {self.mode!r}; "
                f"expected one of {MULTI_MODES}"
            )
        if self.top_k is not None and self.top_k < 1:
            raise ProtocolError(
                f"top_k must be >= 1 or None, got {self.top_k}"
            )

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            fields = [_pack_count(len(self.trapdoors))]
            fields += list(self.trapdoors)
            fields += [
                self.mode.encode("utf-8"),
                b"" if self.top_k is None else _pack_count(self.top_k),
                b"\x01" if self.partial else b"\x00",
            ]
            return pack_frames("multi-search", fields)
        return _encode(
            "multi-search",
            {
                "trapdoors": [t.hex() for t in self.trapdoors],
                "mode": self.mode,
                "top_k": self.top_k,
                "partial": self.partial,
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "MultiSearchRequest":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "multi-search")
            count = reader.take_count()
            trapdoors = tuple(reader.take() for _ in range(count))
            mode = reader.take_str()
            top_k_field = reader.take()
            if top_k_field and len(top_k_field) != 4:
                raise ProtocolError("malformed top_k field")
            partial = reader.take() == b"\x01"
            reader.expect_end()
            return cls(
                trapdoors=trapdoors,
                mode=mode,
                top_k=(
                    int.from_bytes(top_k_field, "big")
                    if top_k_field
                    else None
                ),
                partial=partial,
            )
        payload = _decode(data, "multi-search")
        return cls(
            trapdoors=tuple(
                bytes.fromhex(t) for t in payload["trapdoors"]
            ),
            mode=payload["mode"],
            top_k=payload["top_k"],
            partial=bool(payload["partial"]),
        )


@dataclass(frozen=True)
class MultiSearchResponse:
    """Server -> user: the aggregated multi-keyword ranking.

    ``matches`` carries ``(file_id, score_field)`` pairs in final
    rank order (descending OPM sum, ascending file id on ties); the
    score field is the 8-byte aggregated sum (:func:`pack_multi_score`)
    or, for ``partial=True`` requests, the 12-byte
    sum-plus-matched-count field (:func:`pack_partial_score`) in
    ascending file-id order.  ``files`` carries the encrypted blobs in
    rank order (always empty for partial responses).
    """

    matches: tuple[tuple[str, bytes], ...] = field(default_factory=tuple)
    files: tuple[tuple[str, bytes], ...] = field(default_factory=tuple)

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames(
                "multi-search-response",
                _pack_pairs(self.matches) + _pack_pairs(self.files),
            )
        return _encode(
            "multi-search-response",
            {
                "matches": [
                    [file_id, score_field.hex()]
                    for file_id, score_field in self.matches
                ],
                "files": [
                    [file_id, blob.hex()] for file_id, blob in self.files
                ],
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "MultiSearchResponse":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "multi-search-response")
            matches = _take_pairs(reader)
            files = _take_pairs(reader)
            reader.expect_end()
            return cls(matches=matches, files=files)
        payload = _decode(data, "multi-search-response")
        return cls(
            matches=tuple(
                (file_id, bytes.fromhex(score_hex))
                for file_id, score_hex in payload["matches"]
            ),
            files=tuple(
                (file_id, bytes.fromhex(blob_hex))
                for file_id, blob_hex in payload["files"]
            ),
        )


@dataclass(frozen=True)
class FileRequest:
    """User -> server: fetch these files (second round, basic scheme)."""

    file_ids: tuple[str, ...]

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            fields = [_pack_count(len(self.file_ids))]
            fields += [
                file_id.encode("utf-8") for file_id in self.file_ids
            ]
            return pack_frames("fetch", fields)
        return _encode("fetch", {"file_ids": list(self.file_ids)})

    @classmethod
    def from_bytes(cls, data: bytes) -> "FileRequest":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "fetch")
            count = reader.take_count()
            file_ids = tuple(reader.take_str() for _ in range(count))
            reader.expect_end()
            return cls(file_ids=file_ids)
        payload = _decode(data, "fetch")
        return cls(file_ids=tuple(payload["file_ids"]))


@dataclass(frozen=True)
class RankedFilesResponse:
    """Server -> user: encrypted files in rank order."""

    files: tuple[tuple[str, bytes], ...] = field(default_factory=tuple)

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames("files", _pack_pairs(self.files))
        return _encode(
            "files",
            {
                "files": [
                    [file_id, blob.hex()] for file_id, blob in self.files
                ]
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RankedFilesResponse":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "files")
            files = _take_pairs(reader)
            reader.expect_end()
            return cls(files=files)
        payload = _decode(data, "files")
        return cls(
            files=tuple(
                (file_id, bytes.fromhex(blob_hex))
                for file_id, blob_hex in payload["files"]
            )
        )


@dataclass(frozen=True)
class ErrorResponse:
    """Server -> user: a request failed; here is why.

    The in-process :class:`~repro.cloud.network.Channel` propagates
    exceptions natively, but over a real socket a failure must travel
    as bytes.  ``code`` names the exception class
    (:mod:`repro.errors` names round-trip back to the original type on
    the client), ``detail`` is the human-readable message, and
    ``shard`` identifies which shard failed when the server knows —
    the cluster client needs it to fill
    :class:`~repro.cloud.cluster.PartialResult.missing_shards`.
    """

    code: str
    detail: str = ""
    shard: int | None = None

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames(
                "error",
                [
                    self.code.encode("utf-8"),
                    self.detail.encode("utf-8"),
                    b""
                    if self.shard is None
                    else _pack_count(self.shard),
                ],
            )
        return _encode(
            "error",
            {
                "code": self.code,
                "detail": self.detail,
                "shard": self.shard,
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ErrorResponse":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "error")
            code = reader.take_str()
            detail = reader.take_str()
            shard_field = reader.take()
            if shard_field and len(shard_field) != 4:
                raise ProtocolError("malformed shard field")
            reader.expect_end()
            return cls(
                code=code,
                detail=detail,
                shard=(
                    int.from_bytes(shard_field, "big")
                    if shard_field
                    else None
                ),
            )
        payload = _decode(data, "error")
        return cls(
            code=payload["code"],
            detail=payload["detail"],
            shard=payload["shard"],
        )


# -- distributed observability messages ------------------------------------

#: Width of a trace/span id on the wire (matches the tracer's plain
#: counters; 2^64 ids outlast any deployment).
TRACE_ID_BYTES = 8

#: Admin endpoint sections a front end serves.
ADMIN_SECTIONS = ("prometheus", "jsonl", "health")


def _pack_id(value: int) -> bytes:
    if value < 0 or value >= 1 << (8 * TRACE_ID_BYTES):
        raise ProtocolError(f"trace/span id {value} out of range")
    return value.to_bytes(TRACE_ID_BYTES, "big")


def _take_id(reader: FrameReader) -> int:
    data = reader.take()
    if len(data) != TRACE_ID_BYTES:
        raise ProtocolError("malformed trace/span id field")
    return int.from_bytes(data, "big")


@dataclass(frozen=True)
class TracedRequest:
    """A request wrapped with its caller's trace context.

    The front end wraps worker-bound frames in this envelope when
    tracing is on, so the worker's ``server.handle`` span can take the
    front end's ``net.request`` span as an explicit remote parent —
    one stitched span tree per query across the process boundary.
    ``payload`` is any ordinary request in either codec; responses
    travel back *unwrapped* (the reply pipe already correlates them).
    Servers unwrap the envelope even with tracing off, so enabling obs
    never changes response bytes.
    """

    trace_id: int
    span_id: int
    payload: bytes

    def __post_init__(self) -> None:
        if not self.payload:
            raise ProtocolError("traced envelope requires a payload")

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames(
                "traced",
                [
                    _pack_id(self.trace_id),
                    _pack_id(self.span_id),
                    self.payload,
                ],
            )
        return _encode(
            "traced",
            {
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "payload": self.payload.hex(),
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "TracedRequest":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "traced")
            trace_id = _take_id(reader)
            span_id = _take_id(reader)
            payload = reader.take()
            reader.expect_end()
            return cls(
                trace_id=trace_id, span_id=span_id, payload=payload
            )
        payload = _decode(data, "traced")
        return cls(
            trace_id=int(payload["trace_id"]),
            span_id=int(payload["span_id"]),
            payload=bytes.fromhex(payload["payload"]),
        )


@dataclass(frozen=True)
class ObservedRequest:
    """Front end -> worker: serve this and report what you observed.

    When the front end's result cache is on it must know, per response
    it may later replay, which leakage observations the execution
    produced — a cache hit answers without worker IPC, yet the leakage
    log's search/access-pattern counts must stay exact.  This envelope
    asks the worker to capture the :class:`~repro.analysis.leakage.ServerLog`
    delta its dispatch appended and ship it back alongside the response
    (:class:`ObservedResponse`).  ``payload`` is any ordinary request in
    either codec; when tracing is also on the traced envelope wraps
    *this* one (traced is always outermost).
    """

    payload: bytes

    def __post_init__(self) -> None:
        if not self.payload:
            raise ProtocolError("observed envelope requires a payload")

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames("observed", [self.payload])
        return _encode("observed", {"payload": self.payload.hex()})

    @classmethod
    def from_bytes(cls, data: bytes) -> "ObservedRequest":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "observed")
            payload = reader.take()
            reader.expect_end()
            return cls(payload=payload)
        payload = _decode(data, "observed")
        return cls(payload=bytes.fromhex(payload["payload"]))


@dataclass(frozen=True)
class ObservedResponse:
    """Worker -> front end: the response plus its leakage observations.

    ``payload`` is the byte-exact response the unwrapped request would
    have produced (the front end strips this envelope before caching or
    replying, so clients never see it).  ``observations`` carries one
    ``(address, matched_file_ids, returned_file_ids)`` tuple per
    :class:`~repro.analysis.leakage.SearchObservation` the execution
    appended — enough to replay the search- and access-pattern record
    on every cache hit (score fields are never replayed; the leakage
    log does not keep them).
    """

    payload: bytes
    observations: tuple[tuple[bytes, tuple[str, ...], tuple[str, ...]], ...] = field(
        default_factory=tuple
    )

    def __post_init__(self) -> None:
        if not self.payload:
            raise ProtocolError("observed-response envelope requires a payload")

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            fields = [self.payload, _pack_count(len(self.observations))]
            for address, matched, returned in self.observations:
                fields.append(address)
                fields.append(_pack_count(len(matched)))
                fields.extend(file_id.encode("utf-8") for file_id in matched)
                fields.append(_pack_count(len(returned)))
                fields.extend(file_id.encode("utf-8") for file_id in returned)
            return pack_frames("observed-response", fields)
        return _encode(
            "observed-response",
            {
                "payload": self.payload.hex(),
                "observations": [
                    [address.hex(), list(matched), list(returned)]
                    for address, matched, returned in self.observations
                ],
            },
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ObservedResponse":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "observed-response")
            payload = reader.take()
            count = reader.take_count()
            observations = []
            for _ in range(count):
                address = reader.take()
                matched = tuple(
                    reader.take_str() for _ in range(reader.take_count())
                )
                returned = tuple(
                    reader.take_str() for _ in range(reader.take_count())
                )
                observations.append((address, matched, returned))
            reader.expect_end()
            return cls(payload=payload, observations=tuple(observations))
        decoded = _decode(data, "observed-response")
        return cls(
            payload=bytes.fromhex(decoded["payload"]),
            observations=tuple(
                (bytes.fromhex(address_hex), tuple(matched), tuple(returned))
                for address_hex, matched, returned in decoded["observations"]
            ),
        )


@dataclass(frozen=True)
class ObsSnapshotRequest:
    """Front end -> worker: ship me your telemetry.

    The control-channel message behind cluster-wide scrapes: each
    worker answers with its full JSONL artifact (spans, metrics
    snapshot, leakage events, slow queries).  Handled outside the
    worker's request span/counters so a scrape observes state without
    perturbing it.
    """

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames("obs-snapshot", [])
        return _encode("obs-snapshot", {})

    @classmethod
    def from_bytes(cls, data: bytes) -> "ObsSnapshotRequest":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "obs-snapshot")
            reader.expect_end()
            return cls()
        _decode(data, "obs-snapshot")
        return cls()


@dataclass(frozen=True)
class ObsSnapshotResponse:
    """Worker -> front end: one JSONL telemetry artifact, as bytes.

    ``artifact`` is UTF-8 ``repro.obs.export`` JSONL (empty artifact
    when the worker runs without obs); the front end labels it with
    the worker's shard id and merges it into the cluster view.
    """

    artifact: bytes

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames("obs-snapshot-response", [self.artifact])
        return _encode(
            "obs-snapshot-response", {"artifact": self.artifact.hex()}
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ObsSnapshotResponse":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "obs-snapshot-response")
            artifact = reader.take()
            reader.expect_end()
            return cls(artifact=artifact)
        payload = _decode(data, "obs-snapshot-response")
        return cls(artifact=bytes.fromhex(payload["artifact"]))


@dataclass(frozen=True)
class AdminRequest:
    """Client -> front end: serve one admin section.

    Sections (:data:`ADMIN_SECTIONS`): ``prometheus`` (merged
    cluster metrics in exposition format), ``jsonl`` (the merged
    cluster telemetry artifact), ``health`` (JSON shard/breaker
    status plus recent slow queries — what ``repro top`` renders).
    Admin requests bypass admission control and request accounting so
    an operator can scrape an overloaded server, and so two
    back-to-back scrapes are byte-identical.
    """

    section: str

    def __post_init__(self) -> None:
        if self.section not in ADMIN_SECTIONS:
            raise ProtocolError(
                f"unknown admin section {self.section!r}; "
                f"expected one of {ADMIN_SECTIONS}"
            )

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames("admin", [self.section.encode("utf-8")])
        return _encode("admin", {"section": self.section})

    @classmethod
    def from_bytes(cls, data: bytes) -> "AdminRequest":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "admin")
            section = reader.take_str()
            reader.expect_end()
            return cls(section=section)
        payload = _decode(data, "admin")
        return cls(section=str(payload["section"]))


@dataclass(frozen=True)
class AdminResponse:
    """Front end -> client: one admin section's rendering, as bytes."""

    payload: bytes

    def to_bytes(self, codec: str = CODEC_JSON) -> bytes:
        if require_codec(codec) == CODEC_BINARY:
            return pack_frames("admin-response", [self.payload])
        return _encode("admin-response", {"payload": self.payload.hex()})

    @classmethod
    def from_bytes(cls, data: bytes) -> "AdminResponse":
        if detect_codec(data) == CODEC_BINARY:
            reader = FrameReader(data, "admin-response")
            payload = reader.take()
            reader.expect_end()
            return cls(payload=payload)
        payload = _decode(data, "admin-response")
        return cls(payload=bytes.fromhex(payload["payload"]))
