"""Command-line interface: ``python -m repro <command>``.

A deployment workflow on disk, mirroring the paper's entities:

* ``gen-corpus``  — write a synthetic RFC-style corpus (or bring your
  own directory of ``.txt`` files);
* ``setup``       — data owner: index, encrypt, and package a corpus
  into a deployment directory, saving user credentials separately;
* ``search``      — user + server: load the deployment, run a ranked
  top-k search, print the results;
* ``stats``       — collection statistics and the Section IV-C range
  recommendation for a corpus.

Example session::

    python -m repro gen-corpus --docs 200 --out /tmp/corpus
    python -m repro setup --corpus /tmp/corpus --out /tmp/cloud \
        --credentials /tmp/user.cred
    python -m repro search --deployment /tmp/cloud \
        --credentials /tmp/user.cred --keyword network -k 5
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.cloud import Channel, CloudServer, DataOwner, DataUser
from repro.cloud.persistence import (
    load_credentials,
    load_outsourcing,
    save_credentials,
    save_outsourcing,
)
from repro.core import BasicRankedSSE, EfficientRSSE, minimal_range_bits
from repro.corpus import generate_corpus, load_directory
from repro.errors import ReproError
from repro.ir import Analyzer, InvertedIndex, ScoreQuantizer
from repro.ir.stats import collection_stats, duplicate_stats


def _cmd_gen_corpus(args: argparse.Namespace) -> int:
    documents = generate_corpus(args.docs, seed=args.seed)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for document in documents:
        (out / f"{document.doc_id}.txt").write_text(document.text)
    print(f"wrote {len(documents)} documents to {out}")
    return 0


def _load_corpus(path: str):
    return load_directory(path, pattern="*.txt")


def _scheme_for(kind: str):
    if kind == "rsse":
        return EfficientRSSE()
    if kind == "basic":
        return BasicRankedSSE()
    raise ReproError(f"unknown scheme kind {kind!r}")


def _cmd_setup(args: argparse.Namespace) -> int:
    documents = _load_corpus(args.corpus)
    scheme = _scheme_for(args.scheme)
    owner = DataOwner(scheme)
    started = time.perf_counter()
    outsourcing = owner.setup(documents)
    elapsed = time.perf_counter() - started
    save_outsourcing(args.out, outsourcing, args.scheme, store=args.store)
    save_credentials(args.credentials, owner.authorize_user())
    print(
        f"indexed {len(documents)} documents in {elapsed:.1f}s: "
        f"{outsourcing.secure_index.num_lists} posting lists, "
        f"{outsourcing.secure_index.size_bytes() // 1024} KB index, "
        f"{outsourcing.blob_store.total_bytes() // 1024} KB encrypted files"
    )
    print(f"deployment: {args.out}")
    print(f"user credentials: {args.credentials}")
    return 0


def _run_search(
    user: DataUser, kind: str, args: argparse.Namespace
) -> list:
    """Dispatch one query: single keyword or one-round multi-keyword."""
    keywords = args.keyword
    if len(keywords) == 1:
        if kind == "rsse":
            return user.search_ranked_topk(keywords[0], args.top_k)
        return user.search_two_round_topk(keywords[0], args.top_k)
    if kind != "rsse":
        raise ReproError(
            "multi-keyword search requires the efficient scheme (rsse)"
        )
    return user.search_multi_topk(keywords, args.top_k, mode=args.mode)


def _query_label(args: argparse.Namespace) -> str:
    if len(args.keyword) == 1:
        return repr(args.keyword[0])
    joiner = " AND " if args.mode == "conjunctive" else " OR "
    return joiner.join(repr(keyword) for keyword in args.keyword)


def _print_hits(hits: list) -> None:
    for hit in hits:
        first_line = next(
            (line.strip() for line in hit.text.splitlines() if line.strip()),
            "",
        )
        print(f"  #{hit.rank:<3} {hit.file_id:<12} {first_line[:60]}")


def _cmd_search(args: argparse.Namespace) -> int:
    outsourcing, kind = load_outsourcing(args.deployment, store=args.store)
    scheme = _scheme_for(kind)
    credentials = load_credentials(args.credentials)
    server = CloudServer(
        outsourcing.secure_index,
        outsourcing.blob_store,
        can_rank=kind == "rsse",
    )
    channel = Channel(server.handle)
    user = DataUser(scheme, credentials, channel, Analyzer())
    label = _query_label(args)
    started = time.perf_counter()
    hits = _run_search(user, kind, args)
    elapsed = time.perf_counter() - started
    if not hits:
        print(f"no files match {label}")
        return 1
    print(
        f"top-{len(hits)} for {label} "
        f"({channel.stats.round_trips} round trip(s), "
        f"{channel.stats.total_bytes // 1024} KB, {elapsed * 1000:.0f} ms):"
    )
    _print_hits(hits)
    return 0


def _load_deployment(root: str, store: str | None = None):
    """Load a deployment directory, sharded or not.

    Returns ``(index, blob_store, scheme kind)`` where ``index`` is a
    :class:`~repro.core.secure_index.SecureIndex`, a lazy packed
    store, or a pre-partitioned
    :class:`~repro.cloud.cluster.ShardedIndex`.  ``store`` picks the
    view (``dict`` / ``mmap``); the default honours the manifest.
    """
    import json

    from repro.cloud.persistence import load_sharded_outsourcing

    try:
        manifest = json.loads(
            (Path(root) / "manifest.json").read_text(encoding="utf-8")
        )
    except (OSError, ValueError) as exc:
        raise ReproError(
            f"{root} is not a deployment directory: {exc}"
        ) from exc
    if manifest.get("sharded"):
        return load_sharded_outsourcing(root, store=store)
    outsourcing, kind = load_outsourcing(root, store=store)
    return outsourcing.secure_index, outsourcing.blob_store, kind


def _cmd_pack(args: argparse.Namespace) -> int:
    """Convert a json-store deployment to the packed mmap store."""
    from repro.cloud.persistence import pack_deployment

    pack_deployment(args.deployment)
    print(f"packed deployment: {args.deployment}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a deployment directory over TCP until interrupted."""
    from repro.cloud import NetServer
    from repro.obs import Obs

    index, blobs, kind = _load_deployment(args.deployment, store=args.store)
    server = NetServer(
        index,
        blobs,
        can_rank=kind == "rsse",
        host=args.host,
        port=args.port,
        num_shards=args.shards,
        cache_searches=not args.no_cache,
        result_cache_bytes=(
            args.result_cache_bytes if args.result_cache else None
        ),
        obs=Obs.enabled() if args.obs else None,
    )
    server.start()
    try:
        print(
            f"serving {args.deployment} ({kind}) on "
            f"{server.host}:{server.port} with {server.num_shards} "
            f"shard worker process(es); Ctrl-C to stop",
            flush=True,
        )
        if args.obs:
            print(
                "observability on: `repro top` for the live view, "
                "`repro query` admin sections prometheus/jsonl/health "
                "for scrapes",
                flush=True,
            )
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    """Ranked top-k search against a running ``repro serve``."""
    from repro.cloud import NetworkChannel

    scheme = _scheme_for(args.scheme)
    credentials = load_credentials(args.credentials)
    with NetworkChannel(
        args.host, args.port, timeout_s=args.timeout, codec=args.codec
    ) as channel:
        user = DataUser(
            scheme, credentials, channel, Analyzer(), codec=args.codec
        )
        label = _query_label(args)
        started = time.perf_counter()
        hits = _run_search(user, args.scheme, args)
        elapsed = time.perf_counter() - started
        stats = channel.stats
        if not hits:
            print(f"no files match {label}")
            return 1
        print(
            f"top-{len(hits)} for {label} via "
            f"{args.host}:{args.port} ({stats.round_trips} round "
            f"trip(s), {stats.total_bytes // 1024} KB, "
            f"{elapsed * 1000:.0f} ms):"
        )
        _print_hits(hits)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    documents = _load_corpus(args.corpus)
    analyzer = Analyzer()
    index = InvertedIndex()
    for document in documents:
        index.add_document(document.doc_id, analyzer.analyze(document.text))
    stats = collection_stats(index)
    print(f"files:                {stats.num_files}")
    print(f"distinct keywords:    {stats.vocabulary_size}")
    print(f"total postings:       {stats.total_postings}")
    print(f"max posting length:   {stats.max_posting_length}")
    print(f"avg posting length:   {stats.average_posting_length:.1f}")
    print(f"avg file length:      {stats.average_file_length:.1f} terms")

    from repro.ir.scoring import single_keyword_score

    scores = [
        single_keyword_score(
            posting.term_frequency, index.file_length(posting.file_id)
        )
        for _, postings in index.items()
        for posting in postings
    ]
    quantizer = ScoreQuantizer.fit(scores, levels=args.levels)
    duplicates = duplicate_stats(index, quantizer)
    print(f"score levels M:       {args.levels}")
    print(f"max duplicates:       {duplicates.max_duplicates}")
    print(f"max/lambda ratio:     {duplicates.ratio:.3f}")
    bits = minimal_range_bits(duplicates.ratio, args.levels)
    print(f"recommended |R|:      2^{bits}  (Section IV-C, eq. 4)")
    return 0


def _cmd_obs_demo(args: argparse.Namespace) -> int:
    """Run a small traced cluster workload; write the JSONL artifact.

    The workload is fully seeded: a synthetic corpus, a sharded
    cluster under a deterministic fault plan (drops plus one crash
    window, so the trace always contains retry-attempt spans), and a
    fixed query sequence.  With ``--deterministic`` the tracer runs on
    a fake clock, making the artifact byte-identical across runs —
    what the CI obs-smoke step diffs and schema-checks.
    """
    from repro.cloud.cluster import ClusterServer
    from repro.cloud.faults import FaultPlan
    from repro.cloud.protocol import SearchRequest
    from repro.cloud.retry import RetryPolicy
    from repro.obs import FakeClock, Obs

    vocabulary, scheme, key, built, blobs = _demo_deployment(
        args.seed, args.docs
    )
    obs = Obs.enabled(
        clock=FakeClock() if args.deterministic else None
    )
    plan = FaultPlan(
        seed=args.seed,
        drop_rate=0.3,
        crash_windows={1: ((0, 4),)},
    )
    policy = RetryPolicy(
        max_attempts=8, base_backoff_s=0.0, jitter_seed=args.seed
    )
    with ClusterServer(
        built.secure_index,
        blobs,
        can_rank=True,
        num_shards=2,
        max_workers=1,
        fault_plan=plan,
        retry_policy=policy,
        retry_sleep=lambda _s: None,
        obs=obs,
    ) as cluster:
        for keyword in vocabulary[: args.queries]:
            request = SearchRequest(
                trapdoor_bytes=scheme.trapdoor(key, keyword).serialize(),
                top_k=3,
            ).to_bytes()
            result = cluster.handle_resilient(request)
            if not result.complete:
                print(
                    f"query {keyword!r} degraded: shards "
                    f"{list(result.missing_shards)} missing"
                )
    artifact = obs.export_jsonl()
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(artifact)
    print(f"wrote {len(artifact.splitlines())} records to {out}")
    print(obs.report())
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    """Render a previously exported JSONL trace artifact."""
    from repro.obs.export import load_jsonl, render_report

    dump = load_jsonl(Path(args.trace).read_text())
    print(render_report(dump))
    return 0


def _demo_deployment(seed: int, docs: int):
    """Seeded scheme/key/index/blobs shared by the obs demo commands.

    The key is pinned to the seed (not ``keygen()``): leakage digests
    hash the trapdoor addresses, so a random key would break the
    byte-level determinism the CI smoke jobs diff.
    """
    import hashlib
    import random

    from repro.cloud.storage import BlobStore
    from repro.core import TEST_PARAMETERS
    from repro.crypto.keys import SchemeKey
    from repro.ir.inverted_index import InvertedIndex

    vocabulary = [f"term{i:02d}" for i in range(16)]
    scheme = EfficientRSSE(TEST_PARAMETERS)
    seed_tag = f"obs-demo-{seed}".encode()
    key = SchemeKey(
        x=hashlib.blake2b(seed_tag + b"|x", digest_size=16).digest(),
        y=hashlib.blake2b(seed_tag + b"|y", digest_size=16).digest(),
        z=hashlib.blake2b(seed_tag + b"|z", digest_size=16).digest(),
        domain_size=TEST_PARAMETERS.score_levels,
        range_size=TEST_PARAMETERS.range_size,
    )
    index = InvertedIndex()
    rng = random.Random(seed)
    for doc in range(docs):
        index.add_document(
            f"doc{doc}", [rng.choice(vocabulary) for _ in range(30)]
        )
    built = scheme.build_index(key, index)
    blobs = BlobStore()
    for doc in range(docs):
        blobs.put(f"doc{doc}", b"cipher-" + str(doc).encode())
    return vocabulary, scheme, key, built, blobs


def _render_top(health: dict) -> str:
    """``repro top``-style text rendering of one admin health frame."""
    lines = [
        f"repro top — {health['num_shards']} shard(s), "
        f"{health['connections']:.0f} connection(s), "
        f"{health['inflight']} in flight, "
        f"{health['overload_rejections']:.0f} shed"
    ]
    lines.append(
        f"  {'shard':>5}  {'alive':<5}  {'breaker':<9}  {'fails':>5}  "
        f"{'opened':>6}  {'probes':>6}  {'suppressed':>10}"
    )
    for shard in sorted(health["workers"], key=int):
        worker = health["workers"][shard]
        breaker = worker["breaker"]
        lines.append(
            f"  {shard:>5}  {'yes' if worker['alive'] else 'NO':<5}  "
            f"{breaker['state']:<9}  "
            f"{breaker['consecutive_failures']:>5}  "
            f"{breaker['times_opened']:>6}  {breaker['probes']:>6}  "
            f"{breaker['suppressed_calls']:>10}"
        )
    result_cache = health.get("result_cache", {})
    if result_cache.get("enabled"):
        lines.append(
            f"  result cache: {result_cache['hits']} hit(s), "
            f"{result_cache['misses']} miss(es), "
            f"{result_cache['coalesced']} coalesced, "
            f"{result_cache['invalidations']} invalidation(s), "
            f"{result_cache['entries']} entries / "
            f"{result_cache['resident_bytes'] / 1024:.1f} KiB resident"
        )
    slow = health.get("slow_queries", [])
    if slow:
        lines.append("  slow queries (most recent last):")
        for entry in slow:
            phases = " ".join(
                f"{name}={seconds * 1000:.1f}ms"
                for name, seconds in entry["phases"]
            )
            worker = entry.get("worker", "")
            tags = f" worker={worker}" if worker else ""
            tags += " (sampled)" if entry.get("sampled") else ""
            lines.append(
                f"    trace {entry['trace_id']} {entry['kind']} "
                f"{entry['total_s'] * 1000:.1f}ms{tags} [{phases}]"
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live shard/breaker/slow-query view of a running ``repro serve``.

    Polls the admin ``health`` section — served out of band, so the
    view works even while the server sheds load.  ``--once`` prints a
    single frame and exits (what CI captures); the default refreshes
    in place until interrupted.
    """
    import json

    from repro.cloud import NetworkChannel

    with NetworkChannel(
        args.host, args.port, timeout_s=args.timeout
    ) as channel:
        while True:
            health = json.loads(channel.admin("health"))
            frame = _render_top(health)
            if args.once:
                print(frame)
                return 0
            # ANSI clear-screen + home, then the frame: a poor
            # man's ``top`` without a curses dependency.
            print(f"\x1b[2J\x1b[H{frame}", flush=True)
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0


def _cmd_obs_net_demo(args: argparse.Namespace) -> int:
    """Run a deterministic loopback NetServer workload; dump telemetry.

    The distributed twin of ``repro obs demo``: a seeded deployment is
    served by real worker processes with observability on (fake clocks
    everywhere), a fixed query sequence runs over a real socket in the
    binary codec, and the admin endpoint is scraped twice.  Writes
    ``scrape.txt``/``scrape2.txt`` (byte-identical by construction),
    ``cluster.jsonl`` (the merged cluster artifact: one stitched span
    tree per query), and ``top.txt`` (the rendered health frame) into
    ``--out-dir`` — exactly what the CI obs-net-smoke job diffs across
    two full runs.
    """
    import json

    from repro.cloud import NetServer, NetworkChannel
    from repro.cloud.protocol import (
        CODEC_BINARY,
        MultiSearchRequest,
        SearchRequest,
    )
    from repro.obs import FakeClock, Obs, SlowQueryLog, validate_records

    vocabulary, scheme, key, built, blobs = _demo_deployment(
        args.seed, args.docs
    )
    # Threshold 0 turns the slow-query log into a full per-phase
    # latency log — under fake clocks every query is "slow", which is
    # the point of a demo artifact.
    obs = Obs.enabled(
        clock=FakeClock(), slowlog=SlowQueryLog(threshold_s=0.0)
    )
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    with NetServer(
        built.secure_index,
        blobs,
        can_rank=True,
        num_shards=args.shards,
        obs=obs,
        deterministic_obs=True,
    ) as server:
        with NetworkChannel(server.host, server.port) as channel:
            for keyword in vocabulary[: args.queries]:
                channel.call(
                    SearchRequest(
                        trapdoor_bytes=scheme.trapdoor(
                            key, keyword
                        ).serialize(),
                        top_k=3,
                    ).to_bytes(CODEC_BINARY)
                )
            channel.call(
                MultiSearchRequest(
                    trapdoors=tuple(
                        scheme.trapdoor(key, keyword).serialize()
                        for keyword in vocabulary[:2]
                    ),
                    mode="disjunctive",
                    top_k=3,
                ).to_bytes(CODEC_BINARY)
            )
            scrape = channel.admin("prometheus").decode("utf-8")
            scrape2 = channel.admin("prometheus").decode("utf-8")
            artifact = channel.admin("jsonl").decode("utf-8")
            health = json.loads(channel.admin("health"))
    validate_records(artifact)
    (out_dir / "scrape.txt").write_text(scrape)
    (out_dir / "scrape2.txt").write_text(scrape2)
    (out_dir / "cluster.jsonl").write_text(artifact)
    top = _render_top(health)
    (out_dir / "top.txt").write_text(top + "\n")
    print(
        f"wrote {len(artifact.splitlines())} merged records and "
        f"{len(scrape.splitlines())} metric lines to {out_dir}"
    )
    print(
        "back-to-back scrapes identical:"
        f" {'yes' if scrape == scrape2 else 'NO'}"
    )
    print(top)
    return 0 if scrape == scrape2 else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure ranked keyword search over encrypted cloud "
        "data (ICDCS 2010 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser(
        "gen-corpus", help="write a synthetic RFC-style corpus"
    )
    gen.add_argument("--docs", type=int, default=200)
    gen.add_argument("--seed", type=int, default=2010)
    gen.add_argument("--out", required=True)
    gen.set_defaults(handler=_cmd_gen_corpus)

    setup = commands.add_parser(
        "setup", help="owner: index + encrypt + package a corpus"
    )
    setup.add_argument("--corpus", required=True)
    setup.add_argument("--out", required=True)
    setup.add_argument("--credentials", required=True)
    setup.add_argument(
        "--scheme", choices=("rsse", "basic"), default="rsse"
    )
    setup.add_argument(
        "--store",
        choices=("json", "packed"),
        default="json",
        help="on-disk index format (packed = mmap-ready .rpk file)",
    )
    setup.set_defaults(handler=_cmd_setup)

    search = commands.add_parser(
        "search", help="user: ranked top-k search against a deployment"
    )
    search.add_argument("--deployment", required=True)
    search.add_argument("--credentials", required=True)
    search.add_argument(
        "--keyword",
        required=True,
        nargs="+",
        help="one or more query keywords; several keywords run the "
        "one-round multi-keyword path (rsse only)",
    )
    search.add_argument(
        "--mode",
        choices=("conjunctive", "disjunctive"),
        default="conjunctive",
        help="multi-keyword semantics: AND (conjunctive) or OR "
        "(disjunctive); ignored for a single keyword",
    )
    search.add_argument("-k", "--top-k", type=int, default=10)
    search.add_argument(
        "--store",
        choices=("auto", "dict", "mmap"),
        default="auto",
        help="index view: lazy mmap or eager dict (auto = manifest)",
    )
    search.set_defaults(handler=_cmd_search)

    pack = commands.add_parser(
        "pack",
        help="convert a json-store deployment to the packed mmap store",
    )
    pack.add_argument("deployment")
    pack.set_defaults(handler=_cmd_pack)

    serve = commands.add_parser(
        "serve",
        help="host a deployment over TCP (multi-process shard workers)",
    )
    serve.add_argument("--deployment", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9530)
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="worker process count (default: 4, or the stored shard "
        "count for sharded deployments)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-worker ranked search cache",
    )
    serve.add_argument(
        "--result-cache",
        action="store_true",
        help="enable the hot-query fast lane: a front-end cache of "
        "encoded response frames with single-flight coalescing",
    )
    serve.add_argument(
        "--result-cache-bytes",
        type=int,
        default=8 << 20,
        help="byte budget for --result-cache (default: 8 MiB, split "
        "proportionally with the per-worker response memos)",
    )
    serve.add_argument(
        "--store",
        choices=("auto", "dict", "mmap"),
        default="auto",
        help="index view: lazy mmap or eager dict (auto = manifest)",
    )
    serve.add_argument(
        "--obs",
        action="store_true",
        help="enable the telemetry plane: traced workers, the admin "
        "scrape endpoint, and `repro top`",
    )
    serve.set_defaults(handler=_cmd_serve)

    top = commands.add_parser(
        "top",
        help="live shard/breaker/slow-query view of a repro serve --obs",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=9530)
    top.add_argument(
        "--once",
        action="store_true",
        help="print one frame and exit (scriptable / CI)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh period in seconds",
    )
    top.add_argument("--timeout", type=float, default=10.0)
    top.set_defaults(handler=_cmd_top)

    query = commands.add_parser(
        "query", help="user: ranked top-k search against a repro serve"
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=9530)
    query.add_argument("--credentials", required=True)
    query.add_argument(
        "--keyword",
        required=True,
        nargs="+",
        help="one or more query keywords; several keywords run the "
        "one-round multi-keyword path (rsse only)",
    )
    query.add_argument(
        "--mode",
        choices=("conjunctive", "disjunctive"),
        default="conjunctive",
        help="multi-keyword semantics: AND (conjunctive) or OR "
        "(disjunctive); ignored for a single keyword",
    )
    query.add_argument("-k", "--top-k", type=int, default=10)
    query.add_argument(
        "--scheme", choices=("rsse", "basic"), default="rsse"
    )
    query.add_argument(
        "--codec",
        choices=("json", "binary"),
        default="json",
        help="wire codec for every request (responses mirror it)",
    )
    query.add_argument("--timeout", type=float, default=10.0)
    query.set_defaults(handler=_cmd_query)

    stats = commands.add_parser(
        "stats", help="collection statistics + range recommendation"
    )
    stats.add_argument("--corpus", required=True)
    stats.add_argument("--levels", type=int, default=128)
    stats.set_defaults(handler=_cmd_stats)

    obs = commands.add_parser(
        "obs", help="observability: traced demo workloads and reports"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    demo = obs_commands.add_parser(
        "demo",
        help="run a seeded traced cluster workload, write JSONL",
    )
    demo.add_argument("--seed", type=int, default=2010)
    demo.add_argument("--docs", type=int, default=12)
    demo.add_argument("--queries", type=int, default=4)
    demo.add_argument("--out", default="obs_trace.jsonl")
    demo.add_argument(
        "--deterministic",
        action="store_true",
        help="fake clock: byte-identical artifact across runs",
    )
    demo.set_defaults(handler=_cmd_obs_demo)
    net_demo = obs_commands.add_parser(
        "net-demo",
        help="deterministic loopback NetServer workload: merged "
        "cluster telemetry artifacts",
    )
    net_demo.add_argument("--seed", type=int, default=2010)
    net_demo.add_argument("--docs", type=int, default=12)
    net_demo.add_argument("--queries", type=int, default=4)
    net_demo.add_argument("--shards", type=int, default=2)
    net_demo.add_argument(
        "--out-dir",
        default="obs_net_demo",
        help="directory for scrape.txt / scrape2.txt / cluster.jsonl "
        "/ top.txt",
    )
    net_demo.set_defaults(handler=_cmd_obs_net_demo)
    report = obs_commands.add_parser(
        "report", help="render an exported JSONL trace artifact"
    )
    report.add_argument("--trace", required=True)
    report.set_defaults(handler=_cmd_obs_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
