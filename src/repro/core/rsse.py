"""The efficient ranked SSE scheme (paper Section IV).

Identical index skeleton to the basic scheme, with one change that
moves ranking to the server: the score field of each posting entry is
the **one-to-many order-preserving mapping** of the quantized relevance
score, under a *per-posting-list* key ``f_z(w_i)`` (so equal scores in
different lists use independent bucket layouts — the paper's
indistinguishability argument).

Retrieval is one round: the server decrypts the matched list with
``f_y(w)`` from the trapdoor, sees ``(id(F_ij), OPM_{f_z(w_i)}(S_ij))``
pairs, sorts by the OPM values (order equals true score order), and
returns the ranked list or its top-k.  The server never learns the
scores themselves — only their relative order, which is exactly the
leakage the paper trades for one-round server-side ranking
("as-strong-as-possible").
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.params import PAPER_PARAMETERS, SchemeParameters
from repro.core.results import RankedFile, ServerMatch, as_ranking
from repro.core.secure_index import (
    EntryLayout,
    SecureIndex,
    decrypt_posting_list,
    deterministic_dummy_entries,
    encrypt_entry,
)
from repro.core.trapdoor import Trapdoor, generate_trapdoor
from repro.crypto.keys import SchemeKey, keygen
from repro.crypto.opm import OneToManyOpm
from repro.crypto.prf import Prf
from repro.crypto.symmetric import SymmetricCipher
from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex
from repro.ir.scoring import (
    ScoreQuantizer,
    posting_levels,
    single_keyword_score,
)
from repro.ir.topk import rank_all, top_k


@dataclass(frozen=True)
class BuiltIndex:
    """Result of :meth:`EfficientRSSE.build_index`.

    Bundles the outsourced index with the quantizer whose *scale* the
    owner must retain: future insertions have to quantize with the same
    scale or levels would shift (see :mod:`repro.core.dynamics`).
    """

    secure_index: SecureIndex
    quantizer: ScoreQuantizer


class EfficientRSSE:
    """The four-algorithm tuple of the efficient RSSE scheme."""

    def __init__(self, params: SchemeParameters = PAPER_PARAMETERS):
        self._params = params
        self._layout = EntryLayout(
            zero_pad_bytes=params.zero_pad_bytes,
            file_id_bytes=params.file_id_bytes,
            score_bytes=params.score_ciphertext_bytes,
        )

    @property
    def params(self) -> SchemeParameters:
        """The scheme parameters."""
        return self._params

    @property
    def layout(self) -> EntryLayout:
        """The posting-entry geometry."""
        return self._layout

    # -- Setup phase -------------------------------------------------------

    def keygen(self) -> SchemeKey:
        """``KeyGen(1^k, ..., |D|, |R|)``: draw ``K = {x, y, z}``."""
        return keygen(
            security_bytes=self._params.key_bytes,
            domain_size=self._params.score_levels,
            range_size=self._params.range_size,
        )

    def opm_for_term(self, key: SchemeKey, term: str) -> OneToManyOpm:
        """The per-list mapping ``OPM_{f_z(w)}`` (Section IV discussion)."""
        list_opm_key = Prf(key.require_z()).derive_key(b"opm|" + term.encode("utf-8"))
        return OneToManyOpm(
            list_opm_key,
            domain_size=self._params.score_levels,
            range_size=self._params.range_size,
        )

    def fit_quantizer(self, index: InvertedIndex) -> ScoreQuantizer:
        """Fit the score quantizer scale from the whole collection."""
        scores = [
            single_keyword_score(
                posting.term_frequency, index.file_length(posting.file_id)
            )
            for _, postings in index.items()
            for posting in postings
        ]
        if not scores:
            raise ParameterError("cannot fit a quantizer: no postings")
        return ScoreQuantizer.fit(
            scores,
            levels=self._params.score_levels,
            headroom=self._params.quantizer_headroom,
        )

    def encode_score_field(self, opm_value: int) -> bytes:
        """Encode an OPM value at the fixed score-field width."""
        return opm_value.to_bytes(self._params.score_ciphertext_bytes, "big")

    def build_index(
        self,
        key: SchemeKey,
        index: InvertedIndex,
        quantizer: ScoreQuantizer | None = None,
        terms: set[str] | None = None,
        workers: int = 1,
    ) -> BuiltIndex:
        """``BuildIndex(K, C)`` with OPM-protected scores.

        Per keyword ``w``: equation-2 scores are quantized to
        ``{1..M}`` levels and mapped through ``OPM_{f_z(w)}`` seeded
        with each file id; entries ``0^l || id || OPM(S)`` are encrypted
        under ``f_y(w)`` and filed under ``pi_x(w)``.

        Pass ``quantizer`` to reuse a previously fitted scale (e.g.
        when rebuilding after edits); otherwise one is fitted from the
        collection and returned for the owner to keep.  Pass ``terms``
        to build only those keywords' posting lists (partial builds for
        experiments or staged outsourcing); the quantizer is still
        fitted collection-wide so levels agree with a full build.

        ``workers > 1`` builds posting lists on a thread pool — each
        list is an independent unit of work (its key material and OPM
        are derived per keyword, touching no shared state).  Encrypted
        lists are inserted in the plaintext index's iteration order
        after all workers finish, and entry nonces/padding are derived
        deterministically (see :func:`encrypt_entry`), so the produced
        index is byte-identical for every worker count.
        """
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if quantizer is None:
            quantizer = self.fit_quantizer(index)
        if quantizer.levels != self._params.score_levels:
            raise ParameterError(
                f"quantizer has {quantizer.levels} levels but the scheme "
                f"expects {self._params.score_levels}"
            )
        padded_length = (
            index.max_posting_length() if self._params.pad_posting_lists else None
        )

        def build_list(item: tuple[str, list]) -> tuple[bytes, list[bytes]]:
            term, postings = item
            trapdoor = generate_trapdoor(key, term, self._params.address_bits)
            opm = self.opm_for_term(key, term)
            cipher = SymmetricCipher(trapdoor.list_key)
            levels = posting_levels(index, postings, quantizer)
            # One batch mapping per posting list: the whole list shares
            # a single split tree and each entry costs one tape block.
            opm_values = opm.map_scores(
                (level, posting.file_id)
                for level, posting in zip(levels, postings)
            )
            entries = []
            for posting, opm_value in zip(postings, opm_values):
                entries.append(
                    encrypt_entry(
                        self._layout,
                        trapdoor.list_key,
                        posting.file_id,
                        self.encode_score_field(opm_value),
                        cipher=cipher,
                    )
                )
            if padded_length is not None and len(entries) < padded_length:
                entries.extend(
                    deterministic_dummy_entries(
                        self._layout,
                        trapdoor.list_key,
                        padded_length - len(entries),
                        start=len(entries),
                    )
                )
            return trapdoor.address, entries

        selected = [
            (term, postings)
            for term, postings in index.items()
            if terms is None or term in terms
        ]
        if workers == 1:
            built_lists = [build_list(item) for item in selected]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                built_lists = list(pool.map(build_list, selected))
        secure = SecureIndex(self._layout, padded_length=padded_length)
        for address, entries in built_lists:
            secure.add_list(address, entries)
        return BuiltIndex(secure_index=secure, quantizer=quantizer)

    # -- Retrieval phase ------------------------------------------------------

    def trapdoor(self, key: SchemeKey, term: str) -> Trapdoor:
        """``TrapdoorGen(w)`` for an analyzer-normalized keyword."""
        return generate_trapdoor(key, term, self._params.address_bits)

    def search(
        self, secure_index: SecureIndex, trapdoor: Trapdoor
    ) -> list[ServerMatch]:
        """``SearchIndex(I, T_w)``: decrypt the matched list (unranked)."""
        entries = secure_index.lookup(trapdoor.address)
        if entries is None:
            return []
        return [
            ServerMatch(file_id=file_id, score_field=score_field)
            for file_id, score_field in decrypt_posting_list(
                secure_index.layout, trapdoor.list_key, entries
            )
        ]

    def search_ranked(
        self, secure_index: SecureIndex, trapdoor: Trapdoor
    ) -> list[RankedFile]:
        """One-round, fully ranked retrieval — ranking done at the server.

        The ranking key is the OPM ciphertext value: numeric order of
        OPM values equals relevance order, so no decryption is needed.
        """
        matches = self.search(secure_index, trapdoor)
        scored = [(match.file_id, match.opm_value()) for match in matches]
        ordered = rank_all(scored, key=lambda pair: pair[1])
        return as_ranking(ordered)

    def search_top_k(
        self, secure_index: SecureIndex, trapdoor: Trapdoor, k: int
    ) -> list[RankedFile]:
        """One-round top-k retrieval (the paper's headline operation)."""
        matches = self.search(secure_index, trapdoor)
        scored = [(match.file_id, match.opm_value()) for match in matches]
        best = top_k(scored, k, key=lambda pair: pair[1])
        return as_ranking(best)
