"""Multi-keyword ranked search (the paper's primary future-work item).

Section VIII: "the most promising [direction] is the support for
multiple keywords ... as the IDF factor now has to be included for
score calculation, new approaches still need to be designed to
completely preserve the order when summing up scores."

This module implements the natural conjunctive extension and *measures*
exactly the order-distortion the paper predicts:

* the user sends one trapdoor per query keyword;
* the server intersects the posting lists (conjunctive semantics, as in
  the conjunctive-SSE literature the paper cites) and ranks the
  intersection by the **sum of per-keyword OPM values**;
* because OPM preserves order per keyword but is non-linear, the sum of
  OPM values does not exactly preserve the order of the sum of scores —
  and the server-side ranking also cannot weight keywords by IDF.

:func:`rank_correlation` (Kendall tau) quantifies how far the
server-side approximate ranking deviates from the true equation-1
ranking; ``benchmarks/bench_multi_keyword.py`` sweeps this over query
sizes, turning the paper's open problem into a measured ablation.

For users who need exact multi-keyword order, :class:`MultiKeywordSearcher`
also offers a two-round exact mode mirroring the basic scheme: the
server returns the per-keyword matches, and the client reranks with
true equation-1 scores (requires the score key, i.e. owner-style
access, or the basic scheme's encrypted score fields).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import RankedFile, as_ranking
from repro.core.rsse import EfficientRSSE
from repro.core.secure_index import SecureIndex
from repro.core.trapdoor import Trapdoor
from repro.crypto.keys import SchemeKey
from repro.errors import ParameterError
from repro.ir.analyzer import Analyzer
from repro.ir.inverted_index import InvertedIndex
from repro.ir.scoring import query_score
from repro.ir.topk import intersect_sums, rank_all, rank_pairs, union_sums


@dataclass(frozen=True)
class MultiKeywordQuery:
    """A conjunctive multi-keyword query: trapdoors in keyword order."""

    trapdoors: tuple[Trapdoor, ...]

    def __post_init__(self) -> None:
        if not self.trapdoors:
            raise ParameterError("query must contain at least one trapdoor")


class MultiKeywordSearcher:
    """Conjunctive ranked search on top of the efficient scheme.

    All rankings use the canonical multi-keyword tie-break (descending
    OPM sum, then ascending file id — see :func:`repro.ir.topk.rank_pairs`),
    the same rule the one-round server path and the cluster
    coordinator apply, so every path produces identical orderings
    regardless of dict iteration order.
    """

    def __init__(
        self, scheme: EfficientRSSE, analyzer: Analyzer | None = None
    ):
        self._scheme = scheme
        self._analyzer = analyzer if analyzer is not None else Analyzer()

    def make_query(
        self, key: SchemeKey, terms: list[str]
    ) -> MultiKeywordQuery:
        """Build a query: one trapdoor per analyzer-normalized term.

        Terms are normalized *before* the duplicate check: "Cloud" and
        "cloud" reduce to the same term, and letting both through
        would issue the same trapdoor twice and double-count that
        keyword's OPM contribution in every sum.
        """
        if not terms:
            raise ParameterError("terms must be non-empty")
        normalized = [
            self._analyzer.analyze_query(term) for term in terms
        ]
        if len(set(normalized)) != len(normalized):
            raise ParameterError(
                "duplicate query terms are not allowed "
                "(after normalization)"
            )
        return MultiKeywordQuery(
            trapdoors=tuple(
                self._scheme.trapdoor(key, term) for term in normalized
            )
        )

    def _score_maps(
        self, secure_index: SecureIndex, query: MultiKeywordQuery
    ) -> list[dict[str, int]]:
        """Server side: one ``file_id -> OPM value`` map per keyword."""
        return [
            {
                match.file_id: match.opm_value()
                for match in self._scheme.search(secure_index, trapdoor)
            }
            for trapdoor in query.trapdoors
        ]

    def search_ranked(
        self, secure_index: SecureIndex, query: MultiKeywordQuery
    ) -> list[RankedFile]:
        """Server-side approximate ranking by summed OPM values."""
        pairs = intersect_sums(self._score_maps(secure_index, query))
        return as_ranking(rank_pairs(pairs, None))

    def search_top_k(
        self, secure_index: SecureIndex, query: MultiKeywordQuery, k: int
    ) -> list[RankedFile]:
        """Server-side approximate top-k by summed OPM values."""
        pairs = intersect_sums(self._score_maps(secure_index, query))
        return as_ranking(rank_pairs(pairs, k))

    def search_ranked_disjunctive(
        self, secure_index: SecureIndex, query: MultiKeywordQuery
    ) -> list[RankedFile]:
        """OR semantics: files matching *any* keyword, by summed OPM values.

        The paper's footnote 1 notes that *privacy-preserving* support
        for disjunctive Boolean search within one trapdoor "still
        remains an open problem" for symmetric SSE; this method takes
        the straightforward route of one trapdoor per keyword — the
        server additionally learns each keyword's individual match set
        (the same per-keyword leakage conjunctive queries already
        exhibit here), which is exactly the compromise the footnote is
        about.  Files missing a keyword simply contribute nothing for
        that keyword.
        """
        pairs = union_sums(self._score_maps(secure_index, query))
        return as_ranking(rank_pairs(pairs, None))

    def search_top_k_disjunctive(
        self, secure_index: SecureIndex, query: MultiKeywordQuery, k: int
    ) -> list[RankedFile]:
        """OR semantics, bounded: top-k files by summed OPM values."""
        pairs = union_sums(self._score_maps(secure_index, query))
        return as_ranking(rank_pairs(pairs, k))


class ExactMultiKeywordClient:
    """Exact multi-keyword ranking via the basic scheme (two-round style).

    The efficient scheme's server can only sum OPM values; a client of
    the *basic* scheme can do better.  Each per-keyword search returns
    ``E_z``-encrypted equation-2 scores ``s_{t,d} = (1 + ln f_{d,t}) /
    |F_d|``; the client decrypts them and recombines equation 1 exactly:

        ``Score(Q, F_d) = sum_t s_{t,d} * ln(1 + N / f_t)``

    where ``f_t`` is the posting-list length (visible from the result
    set) and ``N`` the collection size.  Exactness costs what the basic
    scheme always costs — per-keyword round trips and client-side
    work — which is precisely the trade-off the paper's Section VIII
    contemplates.
    """

    def __init__(self, scheme, collection_size: int):
        from repro.core.basic_scheme import BasicRankedSSE

        if not isinstance(scheme, BasicRankedSSE):
            raise ParameterError(
                "exact multi-keyword ranking needs the basic scheme "
                "(client-decryptable scores)"
            )
        if collection_size < 1:
            raise ParameterError(
                f"collection size must be >= 1, got {collection_size}"
            )
        self._scheme = scheme
        self._collection_size = collection_size

    def search_ranked(
        self, key: SchemeKey, secure_index: SecureIndex, terms: list[str]
    ) -> list[RankedFile]:
        """Run one basic-scheme search per term; combine equation 1."""
        if not terms:
            raise ParameterError("terms must be non-empty")
        if len(set(terms)) != len(terms):
            raise ParameterError("duplicate query terms are not allowed")
        import math

        per_term_scores: list[dict[str, float]] = []
        for term in terms:
            trapdoor = self._scheme.trapdoor(key, term)
            matches = self._scheme.search(secure_index, trapdoor)
            per_term_scores.append(
                {
                    match.file_id: self._scheme.decrypt_score(key, match)
                    for match in matches
                }
            )
        common: set[str] | None = None
        for scores in per_term_scores:
            common = set(scores) if common is None else common & set(scores)
        if not common:
            return []
        combined = []
        for file_id in common:
            total = 0.0
            for scores in per_term_scores:
                document_frequency = len(scores)
                total += scores[file_id] * math.log(
                    1.0 + self._collection_size / document_frequency
                )
            combined.append((file_id, total))
        ordered = rank_all(combined, key=lambda pair: pair[1])
        return as_ranking(ordered)


def true_conjunctive_ranking(
    index: InvertedIndex, terms: list[str]
) -> list[RankedFile]:
    """The exact equation-1 ranking over the conjunctive match set.

    Computed from the plaintext index — the ground truth against which
    the OPM-sum approximation is scored.
    """
    if not terms:
        raise ParameterError("terms must be non-empty")
    matching = None
    for term in terms:
        files = {posting.file_id for posting in index.posting_list(term)}
        matching = files if matching is None else matching & files
    if not matching:
        return []
    document_frequencies = {
        term: index.document_frequency(term) for term in terms
    }
    scored = []
    for file_id in matching:
        term_frequencies = {
            term: index.term_frequency(term, file_id) for term in terms
        }
        scored.append(
            (
                file_id,
                query_score(
                    term_frequencies,
                    document_frequencies,
                    index.file_length(file_id),
                    index.num_files,
                ),
            )
        )
    ordered = rank_all(scored, key=lambda pair: pair[1])
    return as_ranking(ordered)


def rank_correlation(
    ranking_a: list[RankedFile], ranking_b: list[RankedFile]
) -> float:
    """Kendall tau-a between two rankings of the same file set.

    1.0 means identical order, -1.0 fully reversed, 0 uncorrelated.
    Raises if the rankings cover different file sets.
    """
    positions_a = {entry.file_id: entry.rank for entry in ranking_a}
    positions_b = {entry.file_id: entry.rank for entry in ranking_b}
    if set(positions_a) != set(positions_b):
        raise ParameterError("rankings cover different file sets")
    files = sorted(positions_a)
    n = len(files)
    if n < 2:
        return 1.0
    concordant_minus_discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            delta_a = positions_a[files[i]] - positions_a[files[j]]
            delta_b = positions_b[files[i]] - positions_b[files[j]]
            product = delta_a * delta_b
            if product > 0:
                concordant_minus_discordant += 1
            elif product < 0:
                concordant_minus_discordant -= 1
    return concordant_minus_discordant / (n * (n - 1) / 2)


def top_k_overlap(
    ranking_a: list[RankedFile], ranking_b: list[RankedFile], k: int
) -> float:
    """Fraction of ``ranking_a``'s top-k present in ``ranking_b``'s top-k.

    The retrieval-precision view of the approximation error: users ask
    for top-k files, so what matters is whether the approximate top-k
    set matches the true one.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    top_a = {entry.file_id for entry in ranking_a[:k]}
    top_b = {entry.file_id for entry in ranking_b[:k]}
    if not top_a:
        return 1.0
    return len(top_a & top_b) / len(top_a)
