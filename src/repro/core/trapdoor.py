"""Trapdoor generation (``TrapdoorGen``).

A search request for keyword ``w`` is the pair

    ``T_w = (pi_x(w), f_y(w))``

where ``pi_x(w)`` locates the posting list in the secure index and
``f_y(w)`` is the per-list key the server uses to decrypt posting
entries.  Nothing in the trapdoor depends on the score-protection key
``z``, so the server can never decrypt scores (basic scheme) or invert
the OPM (efficient scheme).

Trapdoors are deterministic per keyword — that is exactly the *search
pattern* leakage every efficient SSE accepts (Section III-A): the
server can tell when two queries target the same keyword, but not
which keyword it is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import SchemeKey
from repro.crypto.prf import KeyedHash, Prf
from repro.errors import ParameterError

#: Length in bytes of the per-list entry key ``f_y(w)``.
LIST_KEY_BYTES = 16


@dataclass(frozen=True)
class Trapdoor:
    """A search trapdoor ``T_w = (address, list_key)``.

    Attributes
    ----------
    address:
        ``pi_x(w)`` — the keyword's pseudonymous index address.
    list_key:
        ``f_y(w)`` — the key decrypting that keyword's posting entries.
    """

    address: bytes
    list_key: bytes

    def __post_init__(self) -> None:
        if not self.address:
            raise ParameterError("trapdoor address must be non-empty")
        if not self.list_key:
            raise ParameterError("trapdoor list key must be non-empty")

    def serialize(self) -> bytes:
        """Wire encoding: ``len(address) || address || list_key``."""
        return (
            len(self.address).to_bytes(2, "big") + self.address + self.list_key
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "Trapdoor":
        """Parse the :meth:`serialize` encoding."""
        if len(data) < 2:
            raise ParameterError("trapdoor encoding too short")
        address_length = int.from_bytes(data[:2], "big")
        address = data[2 : 2 + address_length]
        list_key = data[2 + address_length :]
        return cls(address=address, list_key=list_key)


def generate_trapdoor(
    key: SchemeKey, term: str, address_bits: int = 160
) -> Trapdoor:
    """``TrapdoorGen(w)``: derive ``(pi_x(w), f_y(w))`` from the key bundle.

    ``term`` must already be analyzer-normalized (stemmed, folded); the
    cloud-facing entities in :mod:`repro.cloud` take care of that.
    """
    if not term:
        raise ParameterError("keyword must be non-empty")
    address = KeyedHash(key.x, output_bits=address_bits).address(term)
    list_key = Prf(key.y).derive_key(term, LIST_KEY_BYTES)
    return Trapdoor(address=address, list_key=list_key)
