"""Choosing the OPM range size |R| (paper Section IV-C, equations 3-4).

The one-to-many mapping flattens the score distribution only if the
range is large enough that ciphertext duplicates are rare.  The paper
formalizes "rare" with min-entropy: the expected worst-case duplicate
fraction after mapping must be below ``2**-(log k)^c`` for ``c > 1``,
where ``k = log2 |R|`` — i.e. the mapped distribution must have *high
min-entropy* in ``k``.

Equation 4 (rearranged): find the least ``k`` with

    max * 2**E / (2**k * lambda)  <=  2**-(log k)^c

where ``E`` bounds the number of binary-search rounds, hence how much
of the range a bucket can span: the paper uses the OPSE result that the
expected number of HGD recursions is at most ``5 log2 M + 12`` (and
plots looser bounds ``5 log2 M`` and ``4 log2 M`` as alternatives —
Fig. 5).

The paper does not state the base of the outer ``log`` in the RHS; we
default to base 2 (consistent with every other logarithm in the
section) and expose the base as a parameter.  EXPERIMENTS.md documents
the effect: with base 2 the worked example crosses at k = 50 instead of
the paper's 46, while the *spacing* between the three bound variants
(12 and 7-8 bits) matches the paper's 46/34/27 exactly, because the
spacing depends only on the bound exponents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.errors import ParameterError

#: Bound variants for the expected HGD recursion count (Fig. 5).
BOUND_VARIANTS = ("5logM+12", "5logM", "4logM")


def hgd_round_bound(domain_size: int, variant: str = "5logM+12") -> float:
    """Return the bound ``E`` on binary-search rounds for domain size M.

    ``variant`` selects the paper's tight bound ``5 log2 M + 12`` or
    one of the looser ``O(log M)`` replacements it evaluates.
    """
    if domain_size < 2:
        raise ParameterError(f"domain size must be >= 2, got {domain_size}")
    log_m = math.log2(domain_size)
    if variant == "5logM+12":
        return 5 * log_m + 12
    if variant == "5logM":
        return 5 * log_m
    if variant == "4logM":
        return 4 * log_m
    raise ParameterError(
        f"unknown bound variant {variant!r}; expected one of {BOUND_VARIANTS}"
    )


def lhs(
    range_bits: int,
    duplicate_ratio: float,
    domain_size: int,
    variant: str = "5logM+12",
) -> float:
    """Left-hand side of equation 4: expected worst duplicate fraction.

    ``duplicate_ratio`` is the collection statistic ``max / lambda``
    (0.06 in the paper's "network" example).
    """
    if range_bits < 1:
        raise ParameterError(f"range_bits must be >= 1, got {range_bits}")
    if not duplicate_ratio > 0:
        raise ParameterError(
            f"duplicate ratio must be positive, got {duplicate_ratio}"
        )
    exponent = hgd_round_bound(domain_size, variant) - range_bits
    return duplicate_ratio * (2.0**exponent)


def rhs(range_bits: int, c: float = 1.1, log_base: float = 2.0) -> float:
    """Right-hand side of equation 4: the high-min-entropy threshold.

    ``2**-(log_base(k))**c`` with ``k = range_bits``; ``c > 1`` makes
    ``(log k)^c`` grow in ``omega(log k)`` as the definition of high
    min-entropy requires.
    """
    if range_bits < 2:
        raise ParameterError(f"range_bits must be >= 2, got {range_bits}")
    if not c > 1:
        raise ParameterError(f"c must be > 1 for high min-entropy, got {c}")
    if not log_base > 1:
        raise ParameterError(f"log_base must be > 1, got {log_base}")
    log_k = math.log(range_bits, log_base)
    return 2.0 ** -(log_k**c)


def satisfies(
    range_bits: int,
    duplicate_ratio: float,
    domain_size: int,
    c: float = 1.1,
    variant: str = "5logM+12",
    log_base: float = 2.0,
) -> bool:
    """Does ``|R| = 2**range_bits`` satisfy equation 4?"""
    return lhs(range_bits, duplicate_ratio, domain_size, variant) <= rhs(
        range_bits, c, log_base
    )


def minimal_range_bits(
    duplicate_ratio: float,
    domain_size: int,
    c: float = 1.1,
    variant: str = "5logM+12",
    log_base: float = 2.0,
    max_bits: int = 128,
) -> int:
    """Return the least ``k`` such that ``|R| = 2**k`` satisfies eq. 4.

    This is the data owner's range-sizing procedure: compute
    ``max/lambda`` from the established index, then pick the smallest
    admissible range (larger ranges only slow the HGD down).
    """
    for bits in range(2, max_bits + 1):
        if satisfies(bits, duplicate_ratio, domain_size, c, variant, log_base):
            return bits
    raise ParameterError(
        f"no admissible range size below 2**{max_bits} for ratio "
        f"{duplicate_ratio} and domain {domain_size}"
    )


@dataclass(frozen=True)
class RangeSelectionPoint:
    """One point of the Fig. 5 plot."""

    range_bits: int
    lhs: float
    rhs: float

    @property
    def admissible(self) -> bool:
        """True where the LHS curve has dropped below the RHS curve."""
        return self.lhs <= self.rhs


def selection_series(
    duplicate_ratio: float,
    domain_size: int,
    bits_range: Iterable[int],
    c: float = 1.1,
    variant: str = "5logM+12",
    log_base: float = 2.0,
) -> list[RangeSelectionPoint]:
    """Evaluate LHS/RHS of eq. 4 over a sweep of ``k`` (Fig. 5 series)."""
    return [
        RangeSelectionPoint(
            range_bits=bits,
            lhs=lhs(bits, duplicate_ratio, domain_size, variant),
            rhs=rhs(bits, c, log_base),
        )
        for bits in bits_range
    ]
