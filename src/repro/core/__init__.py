"""Core RSSE constructions: the paper's primary contribution.

* :mod:`repro.core.basic_scheme` — the SSE-security basic scheme
  (Section III-C, Fig. 3);
* :mod:`repro.core.rsse` — the efficient OPM-based scheme (Section IV);
* :mod:`repro.core.range_selection` — range sizing (Section IV-C);
* :mod:`repro.core.dynamics` — incremental updates (Section VII claim);
* :mod:`repro.core.multi_keyword` — the future-work extension,
  implemented and measured.
"""

from repro.core.basic_scheme import BasicRankedSSE
from repro.core.dynamics import IndexMaintainer, UpdateReport
from repro.core.fuzzy import (
    FuzzyRankedSSE,
    edit_distance_at_most_one,
    fuzzy_set,
)
from repro.core.multi_keyword import (
    ExactMultiKeywordClient,
    MultiKeywordQuery,
    MultiKeywordSearcher,
    rank_correlation,
    top_k_overlap,
    true_conjunctive_ranking,
)
from repro.core.params import (
    PAPER_PARAMETERS,
    TEST_PARAMETERS,
    SchemeParameters,
)
from repro.core.range_selection import (
    BOUND_VARIANTS,
    RangeSelectionPoint,
    hgd_round_bound,
    lhs,
    minimal_range_bits,
    rhs,
    satisfies,
    selection_series,
)
from repro.core.results import RankedFile, ServerMatch, as_ranking
from repro.core.rsse import BuiltIndex, EfficientRSSE
from repro.core.secure_index import (
    AddressTree,
    EntryLayout,
    SecureIndex,
    decrypt_posting_list,
    encrypt_entry,
    try_decrypt_entry,
)
from repro.core.trapdoor import Trapdoor, generate_trapdoor

__all__ = [
    "AddressTree",
    "BOUND_VARIANTS",
    "BasicRankedSSE",
    "BuiltIndex",
    "EfficientRSSE",
    "EntryLayout",
    "ExactMultiKeywordClient",
    "FuzzyRankedSSE",
    "IndexMaintainer",
    "MultiKeywordQuery",
    "MultiKeywordSearcher",
    "PAPER_PARAMETERS",
    "RangeSelectionPoint",
    "RankedFile",
    "SchemeParameters",
    "SecureIndex",
    "ServerMatch",
    "TEST_PARAMETERS",
    "Trapdoor",
    "UpdateReport",
    "as_ranking",
    "decrypt_posting_list",
    "edit_distance_at_most_one",
    "encrypt_entry",
    "fuzzy_set",
    "generate_trapdoor",
    "hgd_round_bound",
    "lhs",
    "minimal_range_bits",
    "rank_correlation",
    "rhs",
    "satisfies",
    "selection_series",
    "top_k_overlap",
    "true_conjunctive_ranking",
    "try_decrypt_entry",
]
