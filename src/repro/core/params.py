"""Scheme parameters for both constructions.

The paper's ``KeyGen(1^k, 1^l, 1^l', 1^p [, |D|, |R|])`` takes four
security parameters plus, in the efficient scheme, the OPM domain and
range sizes.  :class:`SchemeParameters` gathers them with the paper's
notation documented per field, validates their interactions, and
provides the defaults of the paper's worked example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

#: The paper's worked example: scores quantized into 128 levels.
DEFAULT_SCORE_LEVELS = 128

#: The paper's worked example: |R| = 2**46 for max/lambda = 0.06, c = 1.1.
DEFAULT_RANGE_BITS = 46


@dataclass(frozen=True)
class SchemeParameters:
    """Security and functional parameters shared by both schemes.

    Attributes
    ----------
    key_bytes:
        ``k / 8`` — length of the random keys ``x, y, z``.
    zero_pad_bytes:
        ``l / 8`` — length of the ``0^l`` validity marker prefixed to
        each posting entry before encryption (Fig. 3 step 3).
    address_bits:
        ``p`` — width of keyword addresses ``pi_x(w)``; must exceed
        ``log2(m)`` (the paper's SHA-1 instantiation gives 160).
    file_id_bytes:
        Fixed width to which file identifiers are encoded inside
        posting entries, so all entries are equal-sized and dummies are
        indistinguishable by length.
    score_levels:
        ``M = |D|`` — score quantization levels (efficient scheme).
    range_bits:
        ``log2 |R|`` — OPM ciphertext range size in bits.
    quantizer_headroom:
        Multiplier above the observed max score when fitting the
        quantizer scale (leaves room for future insertions).
    pad_posting_lists:
        Pad every posting list to ``nu = max_i N_i`` with random dummy
        entries (the basic scheme of Fig. 3 requires this; the
        efficient scheme as described does not pad).
    """

    key_bytes: int = 16
    zero_pad_bytes: int = 4
    address_bits: int = 160
    file_id_bytes: int = 24
    score_levels: int = DEFAULT_SCORE_LEVELS
    range_bits: int = DEFAULT_RANGE_BITS
    quantizer_headroom: float = 1.05
    pad_posting_lists: bool = False

    def __post_init__(self) -> None:
        if self.key_bytes < 8:
            raise ParameterError(
                f"key_bytes must be >= 8 (64-bit minimum), got {self.key_bytes}"
            )
        if self.zero_pad_bytes < 1:
            raise ParameterError(
                f"zero_pad_bytes must be >= 1, got {self.zero_pad_bytes}"
            )
        if self.address_bits < 8 or self.address_bits % 8 != 0:
            raise ParameterError(
                f"address_bits must be a positive multiple of 8, got "
                f"{self.address_bits}"
            )
        if self.file_id_bytes < 1:
            raise ParameterError(
                f"file_id_bytes must be >= 1, got {self.file_id_bytes}"
            )
        if self.score_levels < 2:
            raise ParameterError(
                f"score_levels must be >= 2, got {self.score_levels}"
            )
        if self.range_bits < 1:
            raise ParameterError(
                f"range_bits must be >= 1, got {self.range_bits}"
            )
        if self.range_size < self.score_levels:
            raise ParameterError(
                f"range 2**{self.range_bits} is smaller than the score "
                f"domain of {self.score_levels} levels"
            )
        if self.quantizer_headroom < 1.0:
            raise ParameterError(
                f"quantizer_headroom must be >= 1, got {self.quantizer_headroom}"
            )

    @property
    def range_size(self) -> int:
        """``|R| = 2**range_bits``."""
        return 1 << self.range_bits

    @property
    def score_ciphertext_bytes(self) -> int:
        """Bytes needed to encode an OPM value (``ceil(range_bits / 8)``)."""
        return (self.range_bits + 7) // 8

    def check_vocabulary(self, vocabulary_size: int) -> None:
        """Validate ``p > log2(m)`` for the target vocabulary."""
        if vocabulary_size < 1:
            raise ParameterError(
                f"vocabulary size must be >= 1, got {vocabulary_size}"
            )
        if vocabulary_size.bit_length() >= self.address_bits:
            raise ParameterError(
                f"address width {self.address_bits} bits is insufficient for "
                f"{vocabulary_size} keywords"
            )


#: Parameters exactly matching the paper's worked example.
PAPER_PARAMETERS = SchemeParameters()

#: Small parameters for fast unit tests (documented so tests read clearly).
TEST_PARAMETERS = SchemeParameters(
    score_levels=16,
    range_bits=24,
)
