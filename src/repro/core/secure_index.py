"""The secure searchable index ``I`` (paper Fig. 3).

Structure
---------
The index maps keyword addresses ``pi_x(w_i)`` to lists of encrypted
posting entries.  Each entry is the authenticated encryption, under the
per-list key ``f_y(w_i)``, of the fixed-width plaintext

    ``0^l || id(F_ij) || score_field``

where the leading ``l`` zero bytes mark the entry as valid, the file id
is padded to a fixed width, and ``score_field`` is either the
semantically-secure ``E_z(S_ij)`` (basic scheme) or the OPM value
(efficient scheme) — both at fixed width, so every entry in the index
has identical length and dummy entries (uniform random bytes) are
length-indistinguishable from real ones.

Server-side lookup uses an ordered address map (the paper notes the
server "uses a tree-based data structure to fetch the corresponding
list"); :class:`AddressTree` provides the ordered-map behaviour with
``O(log n)`` bisection over sorted addresses.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass
from typing import Iterator

from repro.crypto.prf import Prf
from repro.crypto.symmetric import SymmetricCipher, random_bytes_like_ciphertext
from repro.errors import IndexError_, ParameterError, ReproError


@dataclass(frozen=True)
class EntryLayout:
    """Fixed geometry of posting-entry plaintexts.

    Attributes
    ----------
    zero_pad_bytes:
        ``l / 8`` — width of the all-zero validity marker.
    file_id_bytes:
        Fixed width of the encoded file identifier.
    score_bytes:
        Fixed width of the score field.
    """

    zero_pad_bytes: int
    file_id_bytes: int
    score_bytes: int

    def __post_init__(self) -> None:
        if self.zero_pad_bytes < 1:
            raise ParameterError(
                f"zero_pad_bytes must be >= 1, got {self.zero_pad_bytes}"
            )
        if self.file_id_bytes < 1:
            raise ParameterError(
                f"file_id_bytes must be >= 1, got {self.file_id_bytes}"
            )
        if self.score_bytes < 1:
            raise ParameterError(
                f"score_bytes must be >= 1, got {self.score_bytes}"
            )

    @property
    def plaintext_bytes(self) -> int:
        """Total plaintext entry width."""
        return self.zero_pad_bytes + self.file_id_bytes + self.score_bytes

    @property
    def ciphertext_bytes(self) -> int:
        """Total encrypted entry width (plaintext + cipher overhead)."""
        return self.plaintext_bytes + SymmetricCipher.overhead_bytes

    # -- plaintext encoding -------------------------------------------

    def encode_file_id(self, file_id: str) -> bytes:
        """Encode a file id at fixed width (length byte + padded UTF-8)."""
        raw = file_id.encode("utf-8")
        if len(raw) > self.file_id_bytes - 1:
            raise ParameterError(
                f"file id {file_id!r} exceeds {self.file_id_bytes - 1} "
                f"encoded bytes"
            )
        return bytes([len(raw)]) + raw.ljust(self.file_id_bytes - 1, b"\x00")

    def decode_file_id(self, encoded: bytes) -> str:
        """Invert :meth:`encode_file_id`."""
        if len(encoded) != self.file_id_bytes:
            raise IndexError_(
                f"encoded file id has wrong width {len(encoded)}"
            )
        length = encoded[0]
        if length > self.file_id_bytes - 1:
            raise IndexError_("corrupt file id length byte")
        return encoded[1 : 1 + length].decode("utf-8")

    def encode_entry(self, file_id: str, score_field: bytes) -> bytes:
        """Build the plaintext ``0^l || id || score_field``."""
        if len(score_field) != self.score_bytes:
            raise ParameterError(
                f"score field must be {self.score_bytes} bytes, got "
                f"{len(score_field)}"
            )
        return (
            b"\x00" * self.zero_pad_bytes
            + self.encode_file_id(file_id)
            + score_field
        )

    def decode_entry(self, plaintext: bytes) -> tuple[str, bytes]:
        """Split a decrypted entry; raises if the zero marker is absent."""
        if len(plaintext) != self.plaintext_bytes:
            raise IndexError_(
                f"entry plaintext has wrong width {len(plaintext)}"
            )
        if any(plaintext[: self.zero_pad_bytes]):
            raise IndexError_("entry validity marker is not all-zero")
        file_id = self.decode_file_id(
            plaintext[self.zero_pad_bytes : self.zero_pad_bytes + self.file_id_bytes]
        )
        return file_id, plaintext[self.zero_pad_bytes + self.file_id_bytes :]


class AddressTree:
    """Ordered map from addresses to entry lists (server-side lookup).

    Maintains a sorted key list for ``O(log n)`` bisection lookups —
    the "tree-based data structure" of the paper's search-efficiency
    discussion — while storing values in a dict.
    """

    def __init__(self) -> None:
        self._sorted_keys: list[bytes] = []
        self._values: dict[bytes, list[bytes]] = {}

    def __len__(self) -> int:
        return len(self._sorted_keys)

    def __contains__(self, address: bytes) -> bool:
        return address in self._values

    def insert(self, address: bytes, entries: list[bytes]) -> None:
        """Insert a new list; duplicate addresses are an error."""
        if address in self._values:
            raise IndexError_("duplicate index address")
        position = bisect.bisect_left(self._sorted_keys, address)
        self._sorted_keys.insert(position, address)
        self._values[address] = entries

    def lookup(self, address: bytes) -> list[bytes] | None:
        """Bisection lookup; None when the address is absent."""
        position = bisect.bisect_left(self._sorted_keys, address)
        if (
            position < len(self._sorted_keys)
            and self._sorted_keys[position] == address
        ):
            return self._values[address]
        return None

    def replace(self, address: bytes, entries: list[bytes]) -> None:
        """Replace an existing list (index-update path)."""
        if address not in self._values:
            raise IndexError_("cannot replace a missing address")
        self._values[address] = entries

    def items(self) -> Iterator[tuple[bytes, list[bytes]]]:
        """Iterate ``(address, entries)`` in address order."""
        for address in self._sorted_keys:
            yield address, self._values[address]

    def addresses(self) -> Iterator[bytes]:
        """Iterate addresses in ascending order (no entries touched)."""
        return iter(self._sorted_keys)


class SecureIndex:
    """The outsourced encrypted index ``I``.

    Parameters
    ----------
    layout:
        The fixed entry geometry (identical across the whole index).
    padded_length:
        When set (basic scheme), every list is padded with random dummy
        entries up to this length ``nu`` at insertion time.
    """

    def __init__(self, layout: EntryLayout, padded_length: int | None = None):
        if padded_length is not None and padded_length < 1:
            raise ParameterError(
                f"padded_length must be >= 1, got {padded_length}"
            )
        self._layout = layout
        self._padded_length = padded_length
        self._tree = AddressTree()

    @property
    def layout(self) -> EntryLayout:
        """The entry geometry."""
        return self._layout

    @property
    def padded_length(self) -> int | None:
        """``nu`` when padding is enabled, else None."""
        return self._padded_length

    @property
    def num_lists(self) -> int:
        """Number of posting lists (``m`` when one per keyword)."""
        return len(self._tree)

    # -- owner-side construction ----------------------------------------

    def add_list(self, address: bytes, encrypted_entries: list[bytes]) -> None:
        """Store one posting list, padding with dummies if configured."""
        width = self._layout.ciphertext_bytes
        for entry in encrypted_entries:
            if len(entry) != width:
                raise ParameterError(
                    f"encrypted entry width {len(entry)} != expected {width}"
                )
        entries = list(encrypted_entries)
        if self._padded_length is not None:
            if len(entries) > self._padded_length:
                raise ParameterError(
                    f"list of {len(entries)} entries exceeds padded length "
                    f"{self._padded_length}"
                )
            while len(entries) < self._padded_length:
                entries.append(random_bytes_like_ciphertext(width))
        self._tree.insert(address, entries)

    def replace_list(self, address: bytes, encrypted_entries: list[bytes]) -> None:
        """Owner-side update of one list (score-dynamics path)."""
        width = self._layout.ciphertext_bytes
        for entry in encrypted_entries:
            if len(entry) != width:
                raise ParameterError(
                    f"encrypted entry width {len(entry)} != expected {width}"
                )
        self._tree.replace(address, list(encrypted_entries))

    # -- server-side access -----------------------------------------------

    def lookup(self, address: bytes) -> list[bytes] | None:
        """Fetch the encrypted entries at ``address`` (None if absent)."""
        return self._tree.lookup(address)

    def items(self) -> Iterator[tuple[bytes, list[bytes]]]:
        """All lists in address order (used by leakage analysis)."""
        return self._tree.items()

    def addresses(self) -> Iterator[bytes]:
        """All addresses in ascending order (cheap: no entry bytes).

        Part of the shared store read surface — packed stores
        (:mod:`repro.cloud.store`) implement the same method without
        decoding any posting blocks, so placement validation at load
        time stays proportional to the keyword count, not the corpus.
        """
        return self._tree.addresses()

    # -- measurements -----------------------------------------------------

    def size_bytes(self) -> int:
        """Total ciphertext bytes stored (addresses excluded)."""
        return sum(
            len(entry) for _, entries in self._tree.items() for entry in entries
        )

    def average_list_size_bytes(self) -> float:
        """Mean per-keyword list size in bytes (Table I's metric)."""
        if self.num_lists == 0:
            raise IndexError_("index is empty")
        return self.size_bytes() / self.num_lists

    # -- serialization ------------------------------------------------------

    def serialize(self) -> bytes:
        """Self-describing JSON+hex encoding (for persistence tests)."""
        payload = {
            "layout": {
                "zero_pad_bytes": self._layout.zero_pad_bytes,
                "file_id_bytes": self._layout.file_id_bytes,
                "score_bytes": self._layout.score_bytes,
            },
            "padded_length": self._padded_length,
            "lists": [
                {
                    "address": address.hex(),
                    "entries": [entry.hex() for entry in entries],
                }
                for address, entries in self._tree.items()
            ],
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def deserialize(cls, data: bytes) -> "SecureIndex":
        """Parse the :meth:`serialize` encoding."""
        try:
            payload = json.loads(data.decode("utf-8"))
            layout = EntryLayout(**payload["layout"])
            index = cls(layout, payload["padded_length"])
            for item in payload["lists"]:
                index._tree.insert(
                    bytes.fromhex(item["address"]),
                    [bytes.fromhex(entry) for entry in item["entries"]],
                )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise IndexError_(f"malformed index encoding: {exc}") from exc
        return index


def encrypt_entry(
    layout: EntryLayout,
    list_key: bytes,
    file_id: str,
    score_field: bytes,
    cipher: SymmetricCipher | None = None,
    deterministic: bool = True,
) -> bytes:
    """Encrypt one posting entry under the per-list key ``f_y(w)``.

    By default the nonce is the SIV of the entry plaintext
    (:meth:`SymmetricCipher.encrypt_deterministic`), so the same
    (key, file, score) always produces the same ciphertext: index
    builds become byte-reproducible regardless of worker count, and
    the dynamics path regenerates unchanged entries verbatim.  Within
    one posting list every plaintext is distinct (file ids are unique
    per list), so no nonce is ever reused.  Pass
    ``deterministic=False`` for the classic randomized behaviour.

    Callers encrypting a whole posting list should construct the
    :class:`SymmetricCipher` once and pass it via ``cipher`` — key
    derivation is the dominant per-entry cost otherwise.
    """
    if cipher is None:
        cipher = SymmetricCipher(list_key)
    plaintext = layout.encode_entry(file_id, score_field)
    if deterministic:
        return cipher.encrypt_deterministic(plaintext)
    return cipher.encrypt(plaintext)


def deterministic_dummy_entries(
    layout: EntryLayout, list_key: bytes, count: int, start: int = 0
) -> list[bytes]:
    """PRF-derived dummy entries for reproducible list padding.

    The dummies are the output of a PRF keyed by a sub-key derived from
    ``f_y(w)`` with its own label, so they are pseudorandom (length-
    and content-indistinguishable from real ciphertexts, like the
    uniform dummies of Fig. 3) yet fail authentication under the list
    cipher with overwhelming probability.  Being a pure function of
    ``(list_key, position)`` they reproduce exactly across rebuilds and
    across build-worker counts.
    """
    if count < 0:
        raise ParameterError(f"dummy count must be >= 0, got {count}")
    pad_prf = Prf(Prf(list_key).derive_key(b"dummy-pad", 32))
    width = layout.ciphertext_bytes
    return [
        pad_prf.evaluate_to_length(position.to_bytes(8, "big"), width)
        for position in range(start, start + count)
    ]


def try_decrypt_entry(
    layout: EntryLayout,
    list_key: bytes,
    encrypted_entry: bytes,
    cipher: SymmetricCipher | None = None,
) -> tuple[str, bytes] | None:
    """Decrypt one entry; None for dummy/corrupt entries.

    Real entries authenticate and carry the ``0^l`` marker; random
    dummies fail authentication (and, with probability ``1 - 2**-l``,
    the marker too), exactly the validity test Fig. 3 describes.

    Callers decrypting a whole posting list should construct the
    :class:`SymmetricCipher` once and pass it via ``cipher`` — key
    derivation is the dominant per-entry cost otherwise.
    """
    if cipher is None:
        cipher = SymmetricCipher(list_key)
    try:
        plaintext = cipher.decrypt(encrypted_entry)
        return layout.decode_entry(plaintext)
    except ReproError:
        # Authentication failures (CryptoError) and marker/layout
        # failures (IndexError_) both mean "not a valid entry for this
        # key" — i.e. a dummy.
        return None


def decrypt_posting_list(
    layout: EntryLayout, list_key: bytes, encrypted_entries: list[bytes]
) -> list[tuple[str, bytes]]:
    """Decrypt a whole posting list, dropping dummies (server hot path)."""
    cipher = SymmetricCipher(list_key)
    decoded = []
    for entry in encrypted_entries:
        result = try_decrypt_entry(layout, list_key, entry, cipher=cipher)
        if result is not None:
            decoded.append(result)
    return decoded
