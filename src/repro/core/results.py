"""Typed search results returned by the two schemes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class ServerMatch:
    """One posting entry as the *server* sees it after entry decryption.

    Attributes
    ----------
    file_id:
        The matched file's identifier.
    score_field:
        The still-protected score: ``E_z(S)`` ciphertext bytes in the
        basic scheme, or the OPM value encoded big-endian in the
        efficient scheme.
    """

    file_id: str
    score_field: bytes

    def opm_value(self) -> int:
        """Interpret the score field as an OPM integer (efficient scheme)."""
        return int.from_bytes(self.score_field, "big")


@dataclass(frozen=True)
class RankedFile:
    """One entry of a ranked result list.

    Attributes
    ----------
    rank:
        1-based position in the ranking.
    file_id:
        The file's identifier.
    score:
        The ranking key: the true relevance score when ranked
        client-side (basic scheme), or the OPM ciphertext value when
        ranked server-side (efficient scheme — the server never knows
        the true score).
    """

    rank: int
    file_id: str
    score: float | int

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ParameterError(f"rank must be >= 1, got {self.rank}")


def as_ranking(ordered_pairs: list[tuple[str, float | int]]) -> list[RankedFile]:
    """Wrap ``(file_id, score)`` pairs, already sorted, into RankedFile."""
    return [
        RankedFile(rank=position, file_id=file_id, score=score)
        for position, (file_id, score) in enumerate(ordered_pairs, start=1)
    ]
