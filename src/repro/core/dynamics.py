"""Score dynamics: incremental index maintenance (paper Section VII).

A "significant advantage" the paper claims over the database-community
baselines [16, 18]: because the OPM's plaintext-to-bucket assignment
depends only on the key (``BinarySearch`` coins never involve other
scores), *previously mapped values stay valid when scores are inserted
or changed* — no rebuild, unlike bucketized or sampling-trained
order-preserving transforms whose mapping is fitted to the score
distribution.

Why updates are cheap under equation 2: a file's score for keyword
``w`` is ``(1 + ln f_{d,w}) / |F_d|`` — it involves only that file's
own term frequency and length.  Adding or removing a document therefore
only adds/removes *that document's* entries; no other file's score (or
mapped value) changes.

:class:`IndexMaintainer` is the data-owner-side component that owns the
plaintext index, quantizer and keys, builds the secure index, and
applies incremental updates while counting touched entries — the cost
model compared against rebuild-style baselines in
``benchmarks/bench_score_dynamics.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.rsse import EfficientRSSE
from repro.core.secure_index import SecureIndex, encrypt_entry, try_decrypt_entry
from repro.crypto.keys import SchemeKey
from repro.crypto.opm import OneToManyOpm
from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex
from repro.ir.scoring import ScoreQuantizer, single_keyword_score


def build_entry(
    scheme: EfficientRSSE,
    key: SchemeKey,
    plain_index: InvertedIndex,
    quantizer: ScoreQuantizer,
    term: str,
    file_id: str,
    opm: OneToManyOpm | None = None,
) -> bytes:
    """Produce the encrypted posting entry of (term, file) at current state.

    Shared by the in-memory :class:`IndexMaintainer` and the remote
    update protocol (:mod:`repro.cloud.updates`).

    ``opm`` may carry the term's mapping across calls so repeated
    updates of one posting list reuse its split tree; when omitted a
    fresh one is derived (the mapping is a pure function of the key, so
    reuse never changes output bytes).
    """
    entries = build_list_entries(
        scheme, key, plain_index, quantizer, term, [file_id], opm
    )
    return entries[0]


def build_list_entries(
    scheme: EfficientRSSE,
    key: SchemeKey,
    plain_index: InvertedIndex,
    quantizer: ScoreQuantizer,
    term: str,
    file_ids: Iterable[str],
    opm: OneToManyOpm | None = None,
) -> list[bytes]:
    """Batch :func:`build_entry` over one term's files.

    All files share the term's trapdoor and OPM, and scores are mapped
    through :meth:`~repro.crypto.opm.OneToManyOpm.map_scores` — one
    split-tree walk for the whole batch instead of one descent per
    file.  Output is byte-identical to per-file :func:`build_entry`
    calls in the same order.
    """
    file_ids = list(file_ids)
    trapdoor = scheme.trapdoor(key, term)
    if opm is None:
        opm = scheme.opm_for_term(key, term)
    levels = [
        quantizer.quantize(
            single_keyword_score(
                plain_index.term_frequency(term, file_id),
                plain_index.file_length(file_id),
            )
        )
        for file_id in file_ids
    ]
    opm_values = opm.map_scores(zip(levels, file_ids))
    return [
        encrypt_entry(
            scheme.layout,
            trapdoor.list_key,
            file_id,
            scheme.encode_score_field(opm_value),
        )
        for file_id, opm_value in zip(file_ids, opm_values)
    ]


@dataclass(frozen=True)
class UpdateReport:
    """Cost accounting for one incremental update.

    Attributes
    ----------
    lists_touched:
        Posting lists modified (keywords of the changed document).
    entries_written:
        New encrypted entries produced.
    entries_remapped:
        Pre-existing entries whose OPM value had to be recomputed —
        **always zero** for this scheme; baselines report non-zero
        values here, which is the paper's Section VII comparison.
    entries_removed:
        Entries physically deleted (removal path only).
    """

    lists_touched: int
    entries_written: int
    entries_remapped: int
    entries_removed: int = 0


class IndexMaintainer:
    """Owner-side index lifecycle: build once, update incrementally.

    Parameters
    ----------
    scheme:
        The efficient RSSE scheme instance.
    key:
        The owner's key bundle (must include ``z``).

    The maintainer keeps the plaintext :class:`InvertedIndex` (the
    owner's local state, never outsourced) aligned with the outsourced
    :class:`SecureIndex`.
    """

    def __init__(self, scheme: EfficientRSSE, key: SchemeKey):
        self._scheme = scheme
        self._key = key
        self._plain_index = InvertedIndex()
        self._secure_index: SecureIndex | None = None
        self._quantizer: ScoreQuantizer | None = None
        # Term -> OPM instance, so a stream of updates touching the
        # same keyword reuses its split tree (the OPM is a pure
        # function of the key; caching cannot change output bytes).
        self._opm_cache: dict[str, OneToManyOpm] = {}

    @property
    def plain_index(self) -> InvertedIndex:
        """The owner's local plaintext index."""
        return self._plain_index

    @property
    def secure_index(self) -> SecureIndex:
        """The outsourced index; raises before :meth:`build`."""
        if self._secure_index is None:
            raise ParameterError("index has not been built yet")
        return self._secure_index

    @property
    def quantizer(self) -> ScoreQuantizer:
        """The fitted quantizer; raises before :meth:`build`."""
        if self._quantizer is None:
            raise ParameterError("index has not been built yet")
        return self._quantizer

    # -- initial build ---------------------------------------------------

    def add_document(self, file_id: str, terms: Iterable[str]) -> None:
        """Stage a document into the plaintext index (pre-build)."""
        self._plain_index.add_document(file_id, terms)

    def build(self) -> SecureIndex:
        """Build the secure index from the staged documents."""
        built = self._scheme.build_index(self._key, self._plain_index)
        self._secure_index = built.secure_index
        self._quantizer = built.quantizer
        return built.secure_index

    # -- incremental updates ------------------------------------------------

    def _opm_for(self, term: str) -> OneToManyOpm:
        opm = self._opm_cache.get(term)
        if opm is None:
            opm = self._scheme.opm_for_term(self._key, term)
            self._opm_cache[term] = opm
        return opm

    def _entries_for(self, term: str, file_id: str) -> bytes:
        """Produce the encrypted entry of (term, file) at current state."""
        return build_entry(
            self._scheme,
            self._key,
            self._plain_index,
            self.quantizer,
            term,
            file_id,
            opm=self._opm_for(term),
        )

    def insert_document(self, file_id: str, terms: Iterable[str]) -> UpdateReport:
        """Add a new document to a built index — no remapping needed.

        For each keyword of the new document, exactly one new entry is
        appended to (or a new list created for) the keyword's posting
        list.  Existing entries are byte-identical afterwards; the
        test suite asserts this invariant.
        """
        secure = self.secure_index
        self._plain_index.add_document(file_id, terms)
        terms_of_doc = [
            term
            for term in self._plain_index.vocabulary
            if self._plain_index.term_frequency(term, file_id) > 0
        ]
        entries_written = 0
        for term in sorted(terms_of_doc):
            trapdoor = self._scheme.trapdoor(self._key, term)
            new_entry = self._entries_for(term, file_id)
            existing = secure.lookup(trapdoor.address)
            if existing is None:
                secure.add_list(trapdoor.address, [new_entry])
            else:
                secure.replace_list(trapdoor.address, existing + [new_entry])
            entries_written += 1
        return UpdateReport(
            lists_touched=len(terms_of_doc),
            entries_written=entries_written,
            entries_remapped=0,
        )

    def remove_document(self, file_id: str) -> UpdateReport:
        """Remove a document's entries from the built index."""
        secure = self.secure_index
        terms_of_doc = [
            term
            for term in self._plain_index.vocabulary
            if self._plain_index.term_frequency(term, file_id) > 0
        ]
        if not terms_of_doc:
            raise ParameterError(f"document {file_id!r} is not indexed")
        lists_touched = 0
        entries_removed = 0
        for term in sorted(terms_of_doc):
            trapdoor = self._scheme.trapdoor(self._key, term)
            existing = secure.lookup(trapdoor.address)
            if existing is None:
                continue
            kept = []
            for entry in existing:
                decoded = try_decrypt_entry(
                    secure.layout, trapdoor.list_key, entry
                )
                if decoded is not None and decoded[0] == file_id:
                    entries_removed += 1
                    continue
                kept.append(entry)
            secure.replace_list(trapdoor.address, kept)
            lists_touched += 1
        self._plain_index.remove_document(file_id)
        return UpdateReport(
            lists_touched=lists_touched,
            entries_written=0,
            entries_remapped=0,
            entries_removed=entries_removed,
        )
