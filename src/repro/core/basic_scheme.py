"""The basic scheme (paper Section III-C, Fig. 3).

A ranked searchable encryption whose security equals standard SSE: the
server learns only the access pattern and search pattern.  Each posting
entry stores the file id together with the relevance score encrypted
under the *semantically secure* cipher ``E_z``, so the server cannot
rank — ranking happens client-side, at the cost the paper criticizes:

* **one-round protocol**: the server returns *all* matching files and
  their encrypted scores; the user decrypts and ranks locally (large
  bandwidth, user post-processing);
* **two-round protocol**: the server first returns only the entry list
  (ids + encrypted scores); the user decrypts scores, picks the top-k,
  and requests exactly those files (saves bandwidth, costs an extra
  round trip, and reveals to the server that the requested files
  outrank the rest).

Both protocols are implemented here (and wired over the simulated
network in :mod:`repro.cloud`) so the Section III-C trade-off is
measurable — see ``benchmarks/bench_basic_vs_rsse.py``.
"""

from __future__ import annotations

import struct
from concurrent.futures import ThreadPoolExecutor

from repro.core.params import PAPER_PARAMETERS, SchemeParameters
from repro.core.results import RankedFile, ServerMatch, as_ranking
from repro.core.secure_index import (
    EntryLayout,
    SecureIndex,
    decrypt_posting_list,
    deterministic_dummy_entries,
    encrypt_entry,
)
from repro.core.trapdoor import Trapdoor, generate_trapdoor
from repro.crypto.keys import SchemeKey, keygen
from repro.crypto.prf import Prf
from repro.crypto.symmetric import SymmetricCipher
from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex
from repro.ir.scoring import posting_scores
from repro.ir.topk import rank_all, top_k

#: Relevance scores travel as IEEE-754 doubles inside ``E_z``.
_SCORE_PLAINTEXT_BYTES = 8


def _frame(value: str) -> bytes:
    """Length-prefixed UTF-8 encoding (unambiguous concatenation)."""
    raw = value.encode("utf-8")
    return len(raw).to_bytes(4, "big") + raw


class BasicRankedSSE:
    """The four-algorithm tuple of the basic scheme.

    ``KeyGen`` -> :meth:`keygen`, ``BuildIndex`` -> :meth:`build_index`,
    ``TrapdoorGen`` -> :meth:`trapdoor`, ``SearchIndex`` ->
    :meth:`search` (server side), plus the client-side ranking the
    scheme requires (:meth:`rank_matches`, :meth:`user_top_k`).
    """

    def __init__(self, params: SchemeParameters = PAPER_PARAMETERS):
        self._params = params
        self._layout = EntryLayout(
            zero_pad_bytes=params.zero_pad_bytes,
            file_id_bytes=params.file_id_bytes,
            score_bytes=_SCORE_PLAINTEXT_BYTES + SymmetricCipher.overhead_bytes,
        )

    @property
    def params(self) -> SchemeParameters:
        """The scheme parameters."""
        return self._params

    @property
    def layout(self) -> EntryLayout:
        """The posting-entry geometry."""
        return self._layout

    # -- Setup phase ------------------------------------------------------

    def keygen(self) -> SchemeKey:
        """``KeyGen``: draw the key bundle ``K = {x, y, z}``."""
        return keygen(
            security_bytes=self._params.key_bytes,
            domain_size=self._params.score_levels,
            range_size=self._params.range_size,
        )

    def build_index(
        self,
        key: SchemeKey,
        index: InvertedIndex,
        terms: set[str] | None = None,
        workers: int = 1,
    ) -> SecureIndex:
        """``BuildIndex(K, C)`` exactly as Fig. 3.

        For each keyword: compute equation-2 scores, encrypt each with
        ``E_z``, wrap into ``0^l || id || E_z(S)`` entries encrypted
        under ``f_y(w)``, pad the list to ``nu`` with dummies, and file
        it under address ``pi_x(w)``.  Pass ``terms`` to build only
        those keywords' posting lists (partial builds for experiments);
        padding still uses the collection-wide ``nu``.

        The build is byte-reproducible: the ``E_z`` nonce is a PRF of
        ``(keyword, file, score)`` under a ``z``-derived sub-key — a
        distinct pseudorandom nonce per entry, so score ciphertexts
        stay pairwise unlinkable exactly as with random nonces, while
        the same key and corpus always produce the same bytes.  Entry
        encryption and list padding are likewise deterministic (see
        :func:`repro.core.secure_index.encrypt_entry`).  ``workers > 1``
        builds posting lists on a thread pool and inserts them in
        plaintext-index iteration order, so the output is identical for
        every worker count.
        """
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        score_cipher = SymmetricCipher(key.require_z())
        score_nonce_prf = Prf(
            Prf(key.require_z()).derive_key(b"score-nonce", 32)
        )
        padded_length = index.max_posting_length()
        if padded_length == 0:
            raise ParameterError("cannot build an index from an empty collection")

        def build_list(item: tuple[str, list]) -> tuple[bytes, list[bytes]]:
            term, postings = item
            trapdoor = generate_trapdoor(
                key, term, self._params.address_bits
            )
            entry_cipher = SymmetricCipher(trapdoor.list_key)
            entries = []
            scores = posting_scores(index, postings)
            for posting, score in zip(postings, scores):
                score_bytes = struct.pack(">d", score)
                nonce = score_nonce_prf.evaluate_to_length(
                    _frame(term) + _frame(posting.file_id) + score_bytes, 16
                )
                encrypted_score = score_cipher.encrypt(score_bytes, nonce)
                entries.append(
                    encrypt_entry(
                        self._layout,
                        trapdoor.list_key,
                        posting.file_id,
                        encrypted_score,
                        cipher=entry_cipher,
                    )
                )
            if len(entries) < padded_length:
                entries.extend(
                    deterministic_dummy_entries(
                        self._layout,
                        trapdoor.list_key,
                        padded_length - len(entries),
                        start=len(entries),
                    )
                )
            return trapdoor.address, entries

        selected = [
            (term, postings)
            for term, postings in index.items()
            if terms is None or term in terms
        ]
        if workers == 1:
            built_lists = [build_list(item) for item in selected]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                built_lists = list(pool.map(build_list, selected))
        secure = SecureIndex(self._layout, padded_length=padded_length)
        for address, entries in built_lists:
            secure.add_list(address, entries)
        return secure

    # -- Retrieval phase -----------------------------------------------------

    def trapdoor(self, key: SchemeKey, term: str) -> Trapdoor:
        """``TrapdoorGen(w)`` for an analyzer-normalized keyword."""
        return generate_trapdoor(key, term, self._params.address_bits)

    def search(
        self, secure_index: SecureIndex, trapdoor: Trapdoor
    ) -> list[ServerMatch]:
        """``SearchIndex(I, T_w)``: the server's view of the matches.

        Locates the list via the trapdoor address, decrypts entries
        with ``f_y(w)``, and drops dummies.  The resulting file ids and
        *still-encrypted* scores are everything the server learns.
        """
        entries = secure_index.lookup(trapdoor.address)
        if entries is None:
            return []
        return [
            ServerMatch(file_id=file_id, score_field=score_field)
            for file_id, score_field in decrypt_posting_list(
                secure_index.layout, trapdoor.list_key, entries
            )
        ]

    # -- client-side ranking -------------------------------------------------

    def decrypt_score(self, key: SchemeKey, match: ServerMatch) -> float:
        """Recover the true relevance score from ``E_z(S)``."""
        cipher = SymmetricCipher(key.require_z())
        (score,) = struct.unpack(">d", cipher.decrypt(match.score_field))
        return score

    def rank_matches(
        self, key: SchemeKey, matches: list[ServerMatch]
    ) -> list[RankedFile]:
        """Full client-side ranking (the one-round protocol's epilogue)."""
        scored = [
            (match.file_id, self.decrypt_score(key, match))
            for match in matches
        ]
        ordered = rank_all(scored, key=lambda pair: pair[1])
        return as_ranking(ordered)

    def user_top_k(
        self, key: SchemeKey, matches: list[ServerMatch], k: int
    ) -> list[RankedFile]:
        """Client-side top-k selection (the two-round protocol's step 2)."""
        scored = [
            (match.file_id, self.decrypt_score(key, match))
            for match in matches
        ]
        best = top_k(scored, k, key=lambda pair: pair[1])
        return as_ranking(best)
