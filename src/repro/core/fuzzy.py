"""Ranked fuzzy keyword search (extension: [22] + this paper).

The paper's related work cites the authors' companion scheme — Li et
al., *Fuzzy keyword search over encrypted data in cloud computing*
(INFOCOM'10 [22]) — which tolerates single-character typos using
**wildcard-based fuzzy keyword sets**.  This module integrates that
construction with the ranked index: typo-tolerant queries whose results
come back relevance-ranked by OPM values, one round, server-side.

Wildcard fuzzy sets (edit distance 1)
-------------------------------------
``fuzzy_set("cat")`` = ``{cat, *at, c*t, ca*, *cat, c*at, ca*t, cat*}``
— the word itself, every single-character *substitution* pattern, and
every single-character *insertion* slot.  Two words at edit distance
<= 1 always share at least one pattern (a substitution/deletion on one
side meets an insertion slot or substitution on the other), so:

* **index side**: each keyword's posting entries are filed under the
  address of *every* pattern in its fuzzy set (storage factor
  ``O(len(w))`` per keyword — the price of typo tolerance);
* **query side**: the user derives trapdoors for the query word's own
  fuzzy set; any shared pattern hits.

Ranking integration: entries carry OPM values exactly as in
:class:`~repro.core.rsse.EfficientRSSE`; matches from different
patterns of the same underlying keyword deduplicate by file id (same
OPM value — the score mapping is keyed per underlying keyword, not per
pattern).
"""

from __future__ import annotations

from repro.core.params import PAPER_PARAMETERS, SchemeParameters
from repro.core.results import RankedFile, ServerMatch, as_ranking
from repro.core.rsse import BuiltIndex, EfficientRSSE
from repro.core.secure_index import SecureIndex, encrypt_entry
from repro.core.trapdoor import Trapdoor, generate_trapdoor
from repro.crypto.keys import SchemeKey
from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex
from repro.ir.scoring import ScoreQuantizer, posting_levels
from repro.ir.topk import rank_all, top_k


def fuzzy_set(word: str) -> set[str]:
    """The wildcard-based fuzzy keyword set for edit distance 1."""
    if not word:
        raise ParameterError("word must be non-empty")
    if "*" in word:
        raise ParameterError("word must not contain the wildcard character")
    patterns = {word}
    for position in range(len(word)):
        patterns.add(word[:position] + "*" + word[position + 1 :])
    for position in range(len(word) + 1):
        patterns.add(word[:position] + "*" + word[position:])
    return patterns


def edit_distance_at_most_one(a: str, b: str) -> bool:
    """Reference predicate used by the tests (not by the protocol)."""
    if a == b:
        return True
    if abs(len(a) - len(b)) > 1:
        return False
    if len(a) == len(b):
        return sum(1 for x, y in zip(a, b) if x != y) == 1
    shorter, longer = (a, b) if len(a) < len(b) else (b, a)
    for position in range(len(longer)):
        if longer[:position] + longer[position + 1 :] == shorter:
            return True
    return False


class FuzzyRankedSSE:
    """Typo-tolerant ranked search on top of the efficient scheme.

    Shares :class:`EfficientRSSE`'s key material, entry layout, and
    OPM; only the *addressing* changes (one list per fuzzy pattern).
    """

    def __init__(self, params: SchemeParameters = PAPER_PARAMETERS):
        self._inner = EfficientRSSE(params)

    @property
    def params(self) -> SchemeParameters:
        """The scheme parameters."""
        return self._inner.params

    def keygen(self) -> SchemeKey:
        """Draw the key bundle (same shape as the efficient scheme)."""
        return self._inner.keygen()

    # -- Setup ----------------------------------------------------------

    def build_index(
        self,
        key: SchemeKey,
        index: InvertedIndex,
        quantizer: ScoreQuantizer | None = None,
    ) -> BuiltIndex:
        """Build the fuzzy secure index.

        Every keyword's entries are OPM-scored once (per-keyword key)
        and then filed under each pattern of the keyword's fuzzy set.
        """
        if quantizer is None:
            quantizer = self._inner.fit_quantizer(index)
        if quantizer.levels != self.params.score_levels:
            raise ParameterError(
                f"quantizer has {quantizer.levels} levels but the scheme "
                f"expects {self.params.score_levels}"
            )
        secure = SecureIndex(self._inner.layout)
        # Patterns can collide across keywords (e.g. "c*t" belongs to
        # both "cat" and "cut"); collect entries per pattern first.
        pattern_entries: dict[str, list[bytes]] = {}
        for term, postings in index.items():
            opm = self._inner.opm_for_term(key, term)
            levels = posting_levels(index, postings, quantizer)
            # Batch-map the keyword's postings over one shared split
            # tree (see OneToManyOpm.map_scores); byte-identical to the
            # per-posting loop it replaces.
            opm_values = opm.map_scores(
                (level, posting.file_id)
                for level, posting in zip(levels, postings)
            )
            scored = [
                (posting.file_id, opm_value)
                for posting, opm_value in zip(postings, opm_values)
            ]
            for pattern in fuzzy_set(term):
                trapdoor = generate_trapdoor(
                    key, pattern, self.params.address_bits
                )
                bucket = pattern_entries.setdefault(pattern, [])
                for file_id, opm_value in scored:
                    bucket.append(
                        encrypt_entry(
                            self._inner.layout,
                            trapdoor.list_key,
                            file_id,
                            self._inner.encode_score_field(opm_value),
                        )
                    )
        for pattern, entries in pattern_entries.items():
            trapdoor = generate_trapdoor(
                key, pattern, self.params.address_bits
            )
            secure.add_list(trapdoor.address, entries)
        return BuiltIndex(secure_index=secure, quantizer=quantizer)

    # -- Retrieval --------------------------------------------------------

    def trapdoors(self, key: SchemeKey, word: str) -> list[Trapdoor]:
        """One trapdoor per pattern of the query word's fuzzy set."""
        return [
            generate_trapdoor(key, pattern, self.params.address_bits)
            for pattern in sorted(fuzzy_set(word))
        ]

    def search_ranked(
        self, secure_index: SecureIndex, trapdoors: list[Trapdoor]
    ) -> list[RankedFile]:
        """Union the pattern matches, dedupe by file, rank by OPM value.

        A file matched through several patterns of the *same* keyword
        carries one OPM value; a file matching *different* underlying
        keywords keeps its highest value (best-match semantics).
        """
        if not trapdoors:
            raise ParameterError("trapdoors must be non-empty")
        best: dict[str, int] = {}
        for trapdoor in trapdoors:
            for match in self._matches(secure_index, trapdoor):
                value = match.opm_value()
                existing = best.get(match.file_id)
                if existing is None or value > existing:
                    best[match.file_id] = value
        ordered = rank_all(list(best.items()), key=lambda pair: pair[1])
        return as_ranking(ordered)

    def search_top_k(
        self,
        secure_index: SecureIndex,
        trapdoors: list[Trapdoor],
        k: int,
    ) -> list[RankedFile]:
        """Top-k of the deduplicated fuzzy union."""
        ranking = self.search_ranked(secure_index, trapdoors)
        best = top_k(ranking, k, key=lambda entry: entry.score)
        return as_ranking([(entry.file_id, entry.score) for entry in best])

    def _matches(
        self, secure_index: SecureIndex, trapdoor: Trapdoor
    ) -> list[ServerMatch]:
        return self._inner.search(secure_index, trapdoor)
