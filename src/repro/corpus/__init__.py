"""Corpus substrate: document model, loading, and synthetic generation.

The paper evaluates on the RFC database; offline, this package's
deterministic RFC-style generator reproduces the corpus statistics the
experiments rely on (see DESIGN.md, substitution table).
"""

from repro.corpus.generator import (
    CORE_VOCABULARY,
    RfcCorpusGenerator,
    generate_corpus,
    stream_corpus,
    synthetic_vocabulary,
)
from repro.corpus.loader import Document, iter_texts, load_directory
from repro.corpus.zipf import ZipfSampler, zipf_sample_words

__all__ = [
    "CORE_VOCABULARY",
    "Document",
    "RfcCorpusGenerator",
    "ZipfSampler",
    "generate_corpus",
    "iter_texts",
    "load_directory",
    "stream_corpus",
    "synthetic_vocabulary",
    "zipf_sample_words",
]
