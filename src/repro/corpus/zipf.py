"""Zipfian sampling over a ranked vocabulary.

Natural-language word frequencies follow Zipf's law; the synthetic
corpus generator relies on this to reproduce the statistical shape the
paper's experiments depend on (skewed term-frequency and posting-list
length distributions, hence the skewed relevance-score histogram of
Fig. 4).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Sequence

from repro.errors import ParameterError


class ZipfSampler:
    """Samples ranks ``0..size-1`` with ``P(rank r) ~ 1/(r+1)**exponent``.

    Parameters
    ----------
    size:
        Number of ranks (vocabulary size).
    exponent:
        Zipf exponent ``s``; natural text is near 1.0.
    rng:
        A seeded :class:`random.Random`; supplying it keeps corpus
        generation fully deterministic.
    """

    def __init__(self, size: int, exponent: float = 1.0, rng: random.Random | None = None):
        if size < 1:
            raise ParameterError(f"size must be >= 1, got {size}")
        if exponent < 0:
            raise ParameterError(f"exponent must be >= 0, got {exponent}")
        self._size = size
        self._exponent = exponent
        self._rng = rng if rng is not None else random.Random()
        weights = [(rank + 1) ** -exponent for rank in range(size)]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self._size

    def sample(self) -> int:
        """Draw one rank."""
        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point)

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` independent ranks."""
        if count < 0:
            raise ParameterError(f"count must be >= 0, got {count}")
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """Return ``P(rank)`` under the normalized Zipf law."""
        if not 0 <= rank < self._size:
            raise ParameterError(
                f"rank must be in [0, {self._size}), got {rank}"
            )
        return (rank + 1) ** -self._exponent / self._total


def zipf_sample_words(
    words: Sequence[str],
    count: int,
    exponent: float = 1.0,
    rng: random.Random | None = None,
) -> list[str]:
    """Draw ``count`` words from ``words`` Zipf-weighted by list position."""
    sampler = ZipfSampler(len(words), exponent, rng)
    return [words[rank] for rank in sampler.sample_many(count)]
