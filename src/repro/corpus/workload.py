"""Deterministic Zipfian *query* workloads for benchmarks.

The corpus side of Zipf's law (:mod:`repro.corpus.zipf`) shapes what
documents contain; this module shapes what users *ask*.  Real query
logs are heavily skewed — a small hot set of keywords absorbs most of
the traffic — which is exactly the regime the hot-query fast lane
(result caching + single-flight coalescing) is built for, and exactly
what a uniform workload would fail to exercise.

Every generator takes an explicit seed and draws from its own
:class:`random.Random`, so two benchmark runs (or a benchmark and the
test asserting on it) see the identical query sequence.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.corpus.zipf import ZipfSampler
from repro.errors import ParameterError

#: Default Zipf exponent for query popularity; web query logs sit
#: near 1.0, like natural text.
DEFAULT_QUERY_EXPONENT = 1.0


def zipf_queries(
    keywords: Sequence[str],
    count: int,
    exponent: float = DEFAULT_QUERY_EXPONENT,
    seed: int = 0,
) -> list[str]:
    """Draw ``count`` single-keyword queries, Zipf-weighted by position.

    ``keywords[0]`` is the hottest term; with ``exponent`` near 1.0 a
    handful of head keywords dominate the stream.  Deterministic for a
    given ``(keywords, count, exponent, seed)`` tuple.
    """
    if not keywords:
        raise ParameterError("keywords must be non-empty")
    if count < 0:
        raise ParameterError(f"count must be >= 0, got {count}")
    rng = random.Random(seed)
    sampler = ZipfSampler(len(keywords), exponent, rng)
    return [keywords[rank] for rank in sampler.sample_many(count)]


def zipf_multi_queries(
    keywords: Sequence[str],
    count: int,
    terms_per_query: int,
    exponent: float = DEFAULT_QUERY_EXPONENT,
    seed: int = 0,
) -> list[tuple[str, ...]]:
    """Draw ``count`` multi-keyword queries of ``terms_per_query`` terms.

    Each query's terms are distinct (multi-search rejects duplicate
    trapdoors) but drawn Zipf-weighted, so hot terms co-occur across
    queries — repeated identical term sets emerge naturally at
    realistic exponents, which is what exercises result caching of
    multi-search frames.  Terms within a query keep their draw order
    deduplicated, so the same set always serializes the same way.
    """
    if not keywords:
        raise ParameterError("keywords must be non-empty")
    if count < 0:
        raise ParameterError(f"count must be >= 0, got {count}")
    if not 1 <= terms_per_query <= len(keywords):
        raise ParameterError(
            f"terms_per_query must be in [1, {len(keywords)}], got "
            f"{terms_per_query}"
        )
    rng = random.Random(seed)
    sampler = ZipfSampler(len(keywords), exponent, rng)
    queries = []
    for _ in range(count):
        chosen: list[str] = []
        seen: set[int] = set()
        while len(chosen) < terms_per_query:
            rank = sampler.sample()
            if rank in seen:
                continue
            seen.add(rank)
            chosen.append(keywords[rank])
        queries.append(tuple(chosen))
    return queries


def hot_set(
    keywords: Sequence[str],
    workload: Sequence[str],
    fraction: float = 0.9,
) -> list[str]:
    """The smallest popularity prefix covering ``fraction`` of a workload.

    Benchmarks report hot-set latency separately from the long tail;
    this derives the hot set from the *observed* workload rather than
    assuming the generator's ordering, so it stays honest for any
    exponent.
    """
    if not 0 < fraction <= 1:
        raise ParameterError(
            f"fraction must be in (0, 1], got {fraction}"
        )
    counts: dict[str, int] = {}
    for keyword in workload:
        counts[keyword] = counts.get(keyword, 0) + 1
    ordered = sorted(
        counts, key=lambda keyword: (-counts[keyword], keyword)
    )
    needed = fraction * len(workload)
    covered = 0
    chosen = []
    for keyword in ordered:
        if covered >= needed:
            break
        chosen.append(keyword)
        covered += counts[keyword]
    return chosen
