"""Synthetic RFC-style corpus generator.

The paper's experiments run on the IETF RFC database, which we cannot
fetch offline.  What the experiments actually consume from it is a set
of *statistical properties*, and this generator reproduces them:

* a technical vocabulary whose document frequencies follow Zipf's law
  (a core of real networking terms — including the paper's worked
  example keyword "network" — padded with synthetic pronounceable
  terms, so vocabularies of any size are available);
* log-normally distributed document lengths (RFCs range from one page
  to hundreds);
* per-document term frequencies that arise naturally from Zipfian
  sampling with replacement, giving the skewed per-keyword relevance
  score distributions of Fig. 4;
* RFC-like boilerplate (number, title, status, section headers) so the
  text pipeline sees realistic structure.

Generation is fully deterministic given the seed.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.corpus.loader import Document
from repro.corpus.zipf import ZipfSampler
from repro.errors import ParameterError

#: Real networking/IR vocabulary placed at the top Zipf ranks so that
#: realistic keywords ("network", "protocol", ...) have rich posting
#: lists, as in the paper's RFC corpus.
CORE_VOCABULARY: tuple[str, ...] = (
    "network", "protocol", "packet", "server", "client", "address",
    "header", "message", "connection", "request", "response", "datagram",
    "routing", "gateway", "interface", "transport", "session", "segment",
    "octet", "payload", "checksum", "encryption", "authentication",
    "certificate", "signature", "cipher", "handshake", "timeout",
    "retransmission", "congestion", "bandwidth", "latency", "throughput",
    "multicast", "broadcast", "unicast", "fragment", "buffer", "queue",
    "socket", "port", "domain", "resolver", "cache", "proxy", "tunnel",
    "firewall", "token", "parameter", "implementation", "specification",
    "compliance", "extension", "negotiation", "registry", "allocation",
    "identifier", "sequence", "acknowledgment", "window", "stream",
    "frame", "label", "prefix", "mask", "subnet", "topology", "metric",
    "algorithm", "hash", "digest", "nonce", "random", "entropy", "secret",
    "public", "private", "exchange", "agreement", "validation",
    "revocation", "delegation", "binding", "attribute", "policy",
    "security", "privacy", "integrity", "confidentiality", "availability",
    "redundancy", "failover", "cluster", "replica", "consistency",
    "transaction", "timestamp", "synchronization", "clock", "drift",
)

_SYLLABLES = (
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
    "fa", "fe", "fi", "fo", "fu", "ga", "ge", "gi", "go", "gu",
    "ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
    "ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
    "pa", "pe", "pi", "po", "pu", "ra", "re", "ri", "ro", "ru",
    "sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu",
    "va", "ve", "vi", "vo", "vu", "za", "ze", "zi", "zo", "zu",
)

_STATUSES = (
    "STANDARDS TRACK", "INFORMATIONAL", "EXPERIMENTAL", "BEST CURRENT PRACTICE",
)

_SECTION_TITLES = (
    "Introduction", "Terminology", "Protocol Overview", "Message Formats",
    "State Machine", "Error Handling", "Security Considerations",
    "IANA Considerations", "Operational Notes", "Acknowledgments",
)


def synthetic_vocabulary(size: int, seed: int = 0) -> list[str]:
    """Return a deterministic vocabulary of ``size`` distinct terms.

    The core networking vocabulary fills the top ranks; remaining slots
    are pronounceable three/four-syllable synthetic words, guaranteed
    distinct from the core and from each other.
    """
    if size < 1:
        raise ParameterError(f"vocabulary size must be >= 1, got {size}")
    rng = random.Random(seed ^ 0x5EED)
    vocabulary = list(CORE_VOCABULARY[:size])
    seen = set(vocabulary)
    while len(vocabulary) < size:
        syllable_count = rng.choice((3, 3, 4))
        word = "".join(rng.choice(_SYLLABLES) for _ in range(syllable_count))
        if word not in seen:
            seen.add(word)
            vocabulary.append(word)
    return vocabulary


class RfcCorpusGenerator:
    """Deterministic generator of RFC-style synthetic documents.

    Parameters
    ----------
    vocabulary_size:
        Number of distinct content terms available (real RFC subsets of
        1000 files carry vocabularies in the low tens of thousands; the
        default keeps experiments fast while preserving the shape).
    zipf_exponent:
        Skew of term selection; near 1.0 matches natural text.
    mean_length, sigma:
        Log-normal document length parameters (in content words).
    seed:
        Master seed; every generated corpus is a pure function of it.
    """

    def __init__(
        self,
        vocabulary_size: int = 2000,
        zipf_exponent: float = 1.05,
        mean_length: float = 6.0,
        sigma: float = 0.6,
        seed: int = 2010,
    ):
        if vocabulary_size < 10:
            raise ParameterError(
                f"vocabulary size must be >= 10, got {vocabulary_size}"
            )
        if not mean_length > 0:
            raise ParameterError(f"mean_length must be > 0, got {mean_length}")
        if not sigma >= 0:
            raise ParameterError(f"sigma must be >= 0, got {sigma}")
        self._rng = random.Random(seed)
        self._vocabulary = synthetic_vocabulary(vocabulary_size, seed)
        self._sampler = ZipfSampler(vocabulary_size, zipf_exponent, self._rng)
        self._mean_length = mean_length
        self._sigma = sigma

    @property
    def vocabulary(self) -> list[str]:
        """The generator's term vocabulary, Zipf-rank ordered (copy)."""
        return list(self._vocabulary)

    def _document_length(self) -> int:
        """Draw a log-normal content length, clamped to a sane range."""
        length = int(self._rng.lognormvariate(self._mean_length, self._sigma))
        return max(80, min(length, 60000))

    def _title_words(self) -> list[str]:
        count = self._rng.randint(3, 7)
        return [
            self._vocabulary[self._sampler.sample()] for _ in range(count)
        ]

    def generate_document(self, number: int) -> Document:
        """Generate the RFC-style document with the given number."""
        length = self._document_length()
        words = [
            self._vocabulary[self._sampler.sample()] for _ in range(length)
        ]
        title = " ".join(word.capitalize() for word in self._title_words())
        status = self._rng.choice(_STATUSES)
        lines = [
            f"RFC {number:04d}                {title}",
            f"Category: {status.title()}",
            "",
            f"                 {title}",
            "",
            "Status of This Memo",
            "",
            f"   This document is {status.lower()} for the Internet community.",
            "",
        ]
        sections = self._rng.randint(3, len(_SECTION_TITLES))
        section_titles = list(_SECTION_TITLES[:sections])
        per_section = max(1, length // sections)
        cursor = 0
        for section_number, section_title in enumerate(section_titles, start=1):
            lines.append(f"{section_number}. {section_title}")
            lines.append("")
            body = words[cursor : cursor + per_section]
            cursor += per_section
            for start in range(0, len(body), 11):
                lines.append("   " + " ".join(body[start : start + 11]))
            lines.append("")
        if cursor < length:
            for start in range(cursor, length, 11):
                lines.append("   " + " ".join(words[start : start + 11]))
        return Document(
            doc_id=f"rfc{number:04d}",
            title=title,
            text="\n".join(lines),
        )

    def iter_documents(
        self, count: int, start_number: int = 1
    ) -> Iterator[Document]:
        """Lazily generate ``count`` documents numbered consecutively.

        The streaming-build path: one document is materialized at a
        time, so corpora of millions of documents flow through an
        indexing pipeline (e.g. into a
        :class:`~repro.cloud.store.SpillingPackWriter`-backed build)
        in constant memory.  Yields the exact documents
        :meth:`generate` would return for the same arguments — the
        generator state advances identically either way.
        """
        if count < 1:
            raise ParameterError(f"count must be >= 1, got {count}")
        for offset in range(count):
            yield self.generate_document(start_number + offset)

    def generate(self, count: int, start_number: int = 1) -> list[Document]:
        """Generate ``count`` documents numbered consecutively."""
        return list(self.iter_documents(count, start_number=start_number))


def generate_corpus(
    num_documents: int = 1000,
    seed: int = 2010,
    vocabulary_size: int = 2000,
) -> list[Document]:
    """Convenience wrapper: the paper-scale corpus in one call.

    ``num_documents=1000`` matches the subset the paper uses for its
    Fig. 4 / Fig. 6 / Fig. 8 / Table I experiments.
    """
    generator = RfcCorpusGenerator(
        vocabulary_size=vocabulary_size, seed=seed
    )
    return generator.generate(num_documents)


def stream_corpus(
    num_documents: int = 1000,
    seed: int = 2010,
    vocabulary_size: int = 2000,
) -> Iterator[Document]:
    """Lazy sibling of :func:`generate_corpus` (same documents).

    Yields one :class:`Document` at a time so arbitrarily large
    synthetic corpora (1M+ docs) can feed a constant-memory index
    build without ever materializing the document list.
    """
    generator = RfcCorpusGenerator(
        vocabulary_size=vocabulary_size, seed=seed
    )
    return generator.iter_documents(num_documents)
