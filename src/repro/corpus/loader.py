"""Document model and directory loading for real corpora.

The paper evaluates on the IETF RFC database (5563 plain-text files at
the time).  That corpus needs network access, so this repository ships
a synthetic generator (:mod:`repro.corpus.generator`); users who have
the real RFC files on disk can load them with :func:`load_directory`
and run every experiment unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import CorpusError


@dataclass(frozen=True)
class Document:
    """A plaintext document to be indexed and outsourced.

    Attributes
    ----------
    doc_id:
        Unique identifier (``id(F_j)`` in the paper's notation).
    title:
        Human-readable title (not indexed separately; part of text).
    text:
        Full document body.
    """

    doc_id: str
    title: str
    text: str

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise CorpusError("document id must be non-empty")

    @property
    def size_bytes(self) -> int:
        """UTF-8 size of the document body."""
        return len(self.text.encode("utf-8"))


def load_directory(
    path: str | Path,
    pattern: str = "*.txt",
    limit: int | None = None,
) -> list[Document]:
    """Load plaintext documents from a directory (e.g. real RFC files).

    Files are loaded in sorted name order for reproducibility; the file
    stem becomes the document id and the first non-empty line the
    title.

    Parameters
    ----------
    path:
        Directory containing plaintext files.
    pattern:
        Glob pattern selecting files.
    limit:
        Stop after this many documents (the paper uses a 1000-file
        subset for most experiments).
    """
    directory = Path(path)
    if not directory.is_dir():
        raise CorpusError(f"not a directory: {directory}")
    documents = []
    for file_path in sorted(directory.glob(pattern)):
        if limit is not None and len(documents) >= limit:
            break
        try:
            text = file_path.read_text(encoding="utf-8", errors="replace")
        except OSError as exc:
            raise CorpusError(f"failed to read {file_path}: {exc}") from exc
        title = next(
            (line.strip() for line in text.splitlines() if line.strip()), ""
        )
        documents.append(
            Document(doc_id=file_path.stem, title=title, text=text)
        )
    if not documents:
        raise CorpusError(
            f"no documents matched {pattern!r} under {directory}"
        )
    return documents


def iter_texts(documents: list[Document]) -> Iterator[str]:
    """Yield document bodies (convenience for vocabulary building)."""
    for document in documents:
        yield document.text
