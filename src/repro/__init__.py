"""repro — Secure Ranked Keyword Search over Encrypted Cloud Data.

A from-scratch Python reproduction of Wang, Cao, Li, Ren, Lou (ICDCS
2010): ranked searchable symmetric encryption (RSSE) with a one-to-many
order-preserving mapping built on Boldyreva-style OPSE.

Quickstart
----------
>>> from repro import EfficientRSSE, DataOwner, CloudServer, DataUser, Channel
>>> from repro.corpus import generate_corpus
>>> scheme = EfficientRSSE()
>>> owner = DataOwner(scheme)
>>> outsourcing = owner.setup(generate_corpus(50))
>>> server = CloudServer(outsourcing.secure_index, outsourcing.blob_store,
...                      can_rank=True)
>>> user = DataUser(scheme, owner.authorize_user(), Channel(server.handle),
...                 owner.analyzer)
>>> hits = user.search_ranked_topk("network", k=5)

Package layout
--------------
* :mod:`repro.crypto` — PRF/hash, TapeGen, HGD, OPSE, the one-to-many
  OPM (Algorithm 1), authenticated symmetric encryption, PRP, keys;
* :mod:`repro.ir` — analyzer, Porter stemmer, inverted index, TF x IDF
  scoring, top-k;
* :mod:`repro.core` — the basic scheme (Fig. 3), the efficient RSSE
  (Section IV), range sizing (Section IV-C), score dynamics,
  multi-keyword extension;
* :mod:`repro.cloud` — data owner / cloud server / data user over an
  accounted channel (Fig. 1);
* :mod:`repro.corpus` — synthetic RFC-style corpus + real-corpus loader;
* :mod:`repro.analysis` — min-entropy, histograms, flatness, the
  frequency-analysis attack, leakage accounting;
* :mod:`repro.baselines` — plaintext search, deterministic OPSE,
  bucket OPE [18], sampling-trained OPE [16].
"""

from repro.analysis import run_identification_experiment
from repro.cloud import Channel, CloudServer, DataOwner, DataUser
from repro.core import (
    PAPER_PARAMETERS,
    BasicRankedSSE,
    EfficientRSSE,
    IndexMaintainer,
    MultiKeywordSearcher,
    SchemeParameters,
    minimal_range_bits,
)
from repro.corpus import Document, generate_corpus, load_directory
from repro.crypto import (
    OneToManyOpm,
    OrderPreservingEncryption,
    SchemeKey,
    keygen,
)
from repro.errors import ReproError
from repro.ir import Analyzer, InvertedIndex, ScoreQuantizer

__version__ = "1.0.0"

__all__ = [
    "Analyzer",
    "BasicRankedSSE",
    "Channel",
    "CloudServer",
    "DataOwner",
    "DataUser",
    "Document",
    "EfficientRSSE",
    "IndexMaintainer",
    "InvertedIndex",
    "MultiKeywordSearcher",
    "OneToManyOpm",
    "OrderPreservingEncryption",
    "PAPER_PARAMETERS",
    "ReproError",
    "SchemeKey",
    "SchemeParameters",
    "ScoreQuantizer",
    "__version__",
    "generate_corpus",
    "keygen",
    "load_directory",
    "minimal_range_bits",
    "run_identification_experiment",
]
