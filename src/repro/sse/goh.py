"""Goh's Bloom-filter secure index ("Secure Indexes", 2003) [7].

The second generation of searchable encryption the paper's related
work describes: one Bloom filter per file, holding keyed codewords, so
a search costs one constant-time membership test per file — **O(n)
in the number of files**, down from SWP's O(total words), but still
above the per-keyword O(N_i) of Curtmola-style indexes (our basic
scheme).

Construction (Z-IDX, simplified to one trapdoor round):

* per word: codeword ``x = f_kg(w)`` (the *trapdoor*, file-independent);
* per (word, file): entry ``y = f_x(doc_id)`` inserted into the file's
  Bloom filter — binding entries to the file id stops cross-file
  correlation of identical words;
* filters are padded to a common item count so their load does not
  leak the number of distinct words per file;
* search: the user reveals ``x``; the server computes ``f_x(doc_id)``
  per file and tests membership.

False positives are the Bloom filter's, tunable at build time; there
are no false negatives.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.sse.bloom import BloomFilter


def _prf(key: bytes, data: bytes) -> bytes:
    return hmac.new(key, data, hashlib.sha256).digest()


@dataclass(frozen=True)
class GohTrapdoor:
    """The file-independent codeword ``x = f_kg(w)`` for one word."""

    codeword: bytes


class GohIndex:
    """A per-file Bloom-filter secure index over a document collection.

    Parameters
    ----------
    key:
        Master trapdoor key ``kg``.
    false_positive_rate:
        Target Bloom false-positive rate per (file, word) test.
    """

    def __init__(self, key: bytes, false_positive_rate: float = 0.001):
        if not key:
            raise ParameterError("Goh index key must be non-empty")
        if not 0 < false_positive_rate < 1:
            raise ParameterError(
                "false_positive_rate must be in (0, 1), got "
                f"{false_positive_rate}"
            )
        self._key = bytes(key)
        self._rate = false_positive_rate
        self._filters: dict[str, BloomFilter] = {}
        self._pending: dict[str, set[str]] = {}
        self._finalized = False

    # -- build ----------------------------------------------------------

    def add_document(self, doc_id: str, words: set[str] | list[str]) -> None:
        """Stage a document's distinct word set."""
        if self._finalized:
            raise ParameterError("index already finalized")
        if not doc_id:
            raise ParameterError("doc_id must be non-empty")
        if doc_id in self._pending:
            raise ParameterError(f"document {doc_id!r} already staged")
        distinct = set(words)
        if not distinct:
            raise ParameterError(f"document {doc_id!r} has no words")
        self._pending[doc_id] = distinct

    def _codeword(self, word: str) -> bytes:
        return _prf(self._key, b"goh|word|" + word.encode("utf-8"))

    def _entry(self, codeword: bytes, doc_id: str) -> bytes:
        return _prf(codeword, b"goh|doc|" + doc_id.encode("utf-8"))

    def finalize(self) -> None:
        """Build and blind all filters (pad to the largest word count).

        Uniform capacity and uniform padding make every file's filter
        statistically identical in load, per Goh's blinding step.
        """
        if self._finalized:
            raise ParameterError("index already finalized")
        if not self._pending:
            raise ParameterError("no documents staged")
        capacity = max(len(words) for words in self._pending.values())
        for doc_id, words in self._pending.items():
            filter_ = BloomFilter.for_capacity(capacity, self._rate)
            for word in sorted(words):
                filter_.add(self._entry(self._codeword(word), doc_id))
            filter_.pad_to(capacity, entropy=doc_id.encode("utf-8"))
            self._filters[doc_id] = filter_
        self._pending.clear()
        self._finalized = True

    # -- search -----------------------------------------------------------

    def trapdoor(self, word: str) -> GohTrapdoor:
        """User-side: derive the codeword for ``word``."""
        if not word:
            raise ParameterError("word must be non-empty")
        return GohTrapdoor(codeword=self._codeword(word))

    def search(self, trapdoor: GohTrapdoor) -> list[str]:
        """Server-side: one Bloom membership test per file."""
        if not self._finalized:
            raise ParameterError("index not finalized")
        matches = []
        for doc_id, filter_ in self._filters.items():
            if self._entry(trapdoor.codeword, doc_id) in filter_:
                matches.append(doc_id)
        return sorted(matches)

    # -- diagnostics ----------------------------------------------------------

    @property
    def num_files(self) -> int:
        """Number of indexed files (the per-search test count)."""
        return len(self._filters)

    def size_bytes(self) -> int:
        """Total serialized filter size."""
        return sum(
            len(filter_.to_bytes()) for filter_ in self._filters.values()
        )

    def filter_for(self, doc_id: str) -> BloomFilter:
        """The (blinded) filter of one file."""
        try:
            return self._filters[doc_id]
        except KeyError:
            raise ParameterError(f"document {doc_id!r} not indexed") from None
