"""Bloom filter, implemented from scratch.

The substrate of Goh's "Secure Indexes" [7] (paper Section VII): a
per-file Bloom filter holds keyed codewords of the file's words, giving
constant-time membership tests with a tunable false-positive rate and
no false negatives.

The hash family is derived from SHA-256 with an index prefix, giving
independent-enough hash functions for the standard false-positive
analysis ``(1 - e^{-kn/m})^k`` to apply.
"""

from __future__ import annotations

import hashlib
import math

from repro.errors import ParameterError


def optimal_parameters(
    expected_items: int, false_positive_rate: float
) -> tuple[int, int]:
    """Return ``(bits, hashes)`` minimizing size for a target FP rate.

    The classic sizing: ``m = -n ln p / (ln 2)^2``, ``k = (m/n) ln 2``.
    """
    if expected_items < 1:
        raise ParameterError(
            f"expected_items must be >= 1, got {expected_items}"
        )
    if not 0 < false_positive_rate < 1:
        raise ParameterError(
            f"false_positive_rate must be in (0, 1), got {false_positive_rate}"
        )
    bits = math.ceil(
        -expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)
    )
    hashes = max(1, round(bits / expected_items * math.log(2)))
    return bits, hashes


class BloomFilter:
    """A fixed-size Bloom filter over byte-string items.

    Parameters
    ----------
    bits:
        Filter size ``m`` in bits.
    hashes:
        Number of hash functions ``k``.
    """

    def __init__(self, bits: int, hashes: int):
        if bits < 1:
            raise ParameterError(f"bits must be >= 1, got {bits}")
        if hashes < 1:
            raise ParameterError(f"hashes must be >= 1, got {hashes}")
        self._bits = bits
        self._hashes = hashes
        self._array = bytearray((bits + 7) // 8)
        self._count = 0

    @classmethod
    def for_capacity(
        cls, expected_items: int, false_positive_rate: float = 0.01
    ) -> "BloomFilter":
        """Build a filter sized for ``expected_items`` at the target rate."""
        bits, hashes = optimal_parameters(expected_items, false_positive_rate)
        return cls(bits, hashes)

    @property
    def bits(self) -> int:
        """Filter size in bits."""
        return self._bits

    @property
    def hashes(self) -> int:
        """Number of hash functions."""
        return self._hashes

    @property
    def count(self) -> int:
        """Items added so far."""
        return self._count

    def _positions(self, item: bytes) -> list[int]:
        positions = []
        for index in range(self._hashes):
            digest = hashlib.sha256(
                index.to_bytes(4, "big") + item
            ).digest()
            positions.append(int.from_bytes(digest[:8], "big") % self._bits)
        return positions

    def add(self, item: bytes) -> None:
        """Insert an item."""
        for position in self._positions(bytes(item)):
            self._array[position // 8] |= 1 << (position % 8)
        self._count += 1

    def __contains__(self, item: object) -> bool:
        if not isinstance(item, (bytes, bytearray, memoryview)):
            return False
        return all(
            self._array[position // 8] & (1 << (position % 8))
            for position in self._positions(bytes(item))
        )

    def fill_ratio(self) -> float:
        """Fraction of set bits (saturation diagnostic)."""
        set_bits = sum(bin(byte).count("1") for byte in self._array)
        return set_bits / self._bits

    def expected_false_positive_rate(self) -> float:
        """``(1 - e^{-kn/m})^k`` for the current load."""
        if self._count == 0:
            return 0.0
        exponent = -self._hashes * self._count / self._bits
        return (1.0 - math.exp(exponent)) ** self._hashes

    def pad_to(self, target_count: int, entropy: bytes = b"") -> None:
        """Blind the filter by inserting random-looking items.

        Goh's construction pads every file's filter to the same item
        count so the number of set bits does not leak the number of
        distinct words.  ``entropy`` diversifies the padding stream.
        """
        if target_count < self._count:
            raise ParameterError(
                f"target {target_count} below current count {self._count}"
            )
        pad_index = 0
        while self._count < target_count:
            filler = hashlib.sha256(
                b"bloom-pad|" + entropy + pad_index.to_bytes(8, "big")
            ).digest()
            self.add(filler)
            pad_index += 1

    def to_bytes(self) -> bytes:
        """Serialize: header (bits, hashes, count) + bit array."""
        header = (
            self._bits.to_bytes(8, "big")
            + self._hashes.to_bytes(4, "big")
            + self._count.to_bytes(8, "big")
        )
        return header + bytes(self._array)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        """Deserialize a filter produced by :meth:`to_bytes`."""
        if len(data) < 20:
            raise ParameterError("truncated Bloom filter encoding")
        bits = int.from_bytes(data[:8], "big")
        hashes = int.from_bytes(data[8:12], "big")
        count = int.from_bytes(data[12:20], "big")
        array = data[20:]
        # Validate header-vs-payload consistency before any allocation:
        # a corrupted size field must not trigger a huge bytearray.
        if bits < 1 or hashes < 1:
            raise ParameterError("corrupt Bloom filter header")
        if len(array) != (bits + 7) // 8:
            raise ParameterError("Bloom filter bit-array length mismatch")
        filter_ = cls(bits, hashes)
        filter_._array = bytearray(array)
        filter_._count = count
        return filter_
