"""Song-Wagner-Perrig sequential-scan searchable encryption [6].

The first searchable-encryption scheme (S&P 2000), cited by the paper
as the starting point of the lineage: every word of every file is
encrypted under a two-layer construction that lets the server test, at
every word position, whether that position holds the queried word.
Search cost is therefore **linear in the total length of the
collection** — the complexity the later per-file [7, 9] and
per-keyword [10] indexes improved on, measured side by side in
``benchmarks/bench_sse_lineage.py``.

Construction (the basic scheme of [6], word-wise):

* each word is canonicalized to a fixed ``2w``-byte block ``W``;
* pre-encryption: ``X = E_kw(W)``, split into halves ``(L, R)``;
* a pseudo-random stream block ``S_i`` is drawn per position ``i``;
* the per-position key is ``K_i = f_kp(L)`` (word-dependent, so a
  trapdoor unlocks exactly that word's positions);
* ciphertext: ``C_i = X xor (S_i || F_{K_i}(S_i))``.

To search for ``W`` the user reveals ``(X, f_kp(L))``; the server
computes ``C_i xor X = (s, t)`` at every position and checks
``t == F_k(s)`` — a match identifies position ``i`` without revealing
the word.  False positives occur with probability ``2^-8w`` (the check
width); with the 8-byte halves used here they are negligible.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.errors import CryptoError, ParameterError

#: Half-block width ``w`` in bytes (block = 2w).
HALF_BYTES = 8
BLOCK_BYTES = 2 * HALF_BYTES


def _canonical_block(word: str) -> bytes:
    """Map a word to a fixed-size block (hash-compress long words)."""
    raw = word.encode("utf-8")
    if len(raw) <= BLOCK_BYTES:
        return raw.ljust(BLOCK_BYTES, b"\x00")
    return hashlib.sha256(raw).digest()[:BLOCK_BYTES]


def _prf(key: bytes, data: bytes, length: int = HALF_BYTES) -> bytes:
    return hmac.new(key, data, hashlib.sha256).digest()[:length]


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass(frozen=True)
class SwpTrapdoor:
    """The search capability for one word: ``(X, k = f_kp(L))``."""

    pre_encrypted: bytes
    position_key: bytes


class SwpScheme:
    """The SWP word-wise searchable encryption over a document stream.

    Parameters
    ----------
    key:
        Master key; the word-encryption key ``kw``, position-key PRF
        key ``kp`` and stream seed are derived from it.
    """

    def __init__(self, key: bytes):
        if not key:
            raise ParameterError("SWP key must be non-empty")
        key = bytes(key)
        self._word_key = _prf(key, b"swp|word", 32)
        self._position_prf_key = _prf(key, b"swp|positions", 32)
        self._stream_seed = _prf(key, b"swp|stream", 32)

    # -- encryption ---------------------------------------------------

    _FEISTEL_ROUNDS = 4

    def _feistel_block(self, block: bytes, inverse: bool) -> bytes:
        """Invertible deterministic block cipher ``E_kw`` (Feistel)."""
        left, right = block[:HALF_BYTES], block[HALF_BYTES:]
        rounds = range(self._FEISTEL_ROUNDS)
        if inverse:
            for round_index in reversed(rounds):
                key = _prf(self._word_key, b"round|%d" % round_index, 32)
                left, right = _xor(right, _prf(key, left)), left
        else:
            for round_index in rounds:
                key = _prf(self._word_key, b"round|%d" % round_index, 32)
                left, right = right, _xor(left, _prf(key, right))
        return left + right

    def _pre_encrypt(self, word: str) -> bytes:
        return self._feistel_block(_canonical_block(word), inverse=False)

    def _stream_block(self, doc_id: str, position: int) -> bytes:
        return _prf(
            self._stream_seed,
            doc_id.encode("utf-8") + b"|" + position.to_bytes(8, "big"),
            HALF_BYTES,
        )

    def encrypt_document(self, doc_id: str, words: list[str]) -> list[bytes]:
        """Encrypt a document's word sequence position by position."""
        if not doc_id:
            raise ParameterError("doc_id must be non-empty")
        ciphertexts = []
        for position, word in enumerate(words):
            pre = self._pre_encrypt(word)
            left = pre[:HALF_BYTES]
            position_key = _prf(self._position_prf_key, left, 32)
            stream = self._stream_block(doc_id, position)
            check = _prf(position_key, stream, HALF_BYTES)
            ciphertexts.append(_xor(pre, stream + check))
        return ciphertexts

    def decrypt_document(
        self, doc_id: str, ciphertexts: list[bytes]
    ) -> list[bytes]:
        """Recover the canonical word blocks of a document.

        Decryption walks the same derivation the encryptor used: the
        stream block gives the pre-encrypted left half, the left half
        gives the position key, the position key gives the check mask,
        and the Feistel inverse gives back the word block.
        """
        blocks = []
        for position, ciphertext in enumerate(ciphertexts):
            if len(ciphertext) != BLOCK_BYTES:
                raise CryptoError("malformed SWP ciphertext block")
            stream = self._stream_block(doc_id, position)
            pre_left = _xor(ciphertext[:HALF_BYTES], stream)
            position_key = _prf(self._position_prf_key, pre_left, 32)
            check_mask = _prf(position_key, stream, HALF_BYTES)
            pre_right = _xor(ciphertext[HALF_BYTES:], check_mask)
            blocks.append(
                self._feistel_block(pre_left + pre_right, inverse=True)
            )
        return blocks

    # -- search ---------------------------------------------------------

    def trapdoor(self, word: str) -> SwpTrapdoor:
        """Build the search capability for ``word``."""
        if not word:
            raise ParameterError("word must be non-empty")
        pre = self._pre_encrypt(word)
        return SwpTrapdoor(
            pre_encrypted=pre,
            position_key=_prf(self._position_prf_key, pre[:HALF_BYTES], 32),
        )

    @staticmethod
    def positions_matching(
        trapdoor: SwpTrapdoor, ciphertexts: list[bytes]
    ) -> list[int]:
        """Server-side scan: every position whose check verifies.

        This is the linear scan: one PRF evaluation per word position
        of the collection.
        """
        matches = []
        for position, ciphertext in enumerate(ciphertexts):
            masked = _xor(ciphertext, trapdoor.pre_encrypted)
            stream, check = masked[:HALF_BYTES], masked[HALF_BYTES:]
            if _prf(trapdoor.position_key, stream, HALF_BYTES) == check:
                matches.append(position)
        return matches


class SwpCollection:
    """A collection of SWP-encrypted documents with linear-scan search."""

    def __init__(self, scheme: SwpScheme):
        self._scheme = scheme
        self._documents: dict[str, list[bytes]] = {}

    def add_document(self, doc_id: str, words: list[str]) -> None:
        """Encrypt and store one document."""
        if doc_id in self._documents:
            raise ParameterError(f"document {doc_id!r} already stored")
        self._documents[doc_id] = self._scheme.encrypt_document(doc_id, words)

    @property
    def total_word_positions(self) -> int:
        """The scan length a search must cover."""
        return sum(len(blocks) for blocks in self._documents.values())

    def search(self, trapdoor: SwpTrapdoor) -> dict[str, list[int]]:
        """Scan every document; return matching positions per document."""
        results = {}
        for doc_id, ciphertexts in self._documents.items():
            positions = SwpScheme.positions_matching(trapdoor, ciphertexts)
            if positions:
                results[doc_id] = positions
        return results
