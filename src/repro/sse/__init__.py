"""The searchable-encryption lineage the paper builds on (Section VII).

Three generations of SSE search complexity, implemented for the
side-by-side comparison in ``benchmarks/bench_sse_lineage.py``:

* :mod:`repro.sse.swp` — Song-Wagner-Perrig 2000 [6]: word-wise
  two-layer encryption, search linear in the *collection length*;
* :mod:`repro.sse.goh` — Goh 2003 [7]: per-file Bloom-filter index
  (:mod:`repro.sse.bloom`), search linear in the *number of files*;
* the per-keyword generation (Curtmola et al. 2006 [10]) is the
  paper's own starting point — implemented as
  :class:`repro.core.BasicRankedSSE`, search linear in the *posting
  list* only.

None of these rank results; that gap is the paper's motivation.
"""

from repro.sse.bloom import BloomFilter, optimal_parameters
from repro.sse.goh import GohIndex, GohTrapdoor
from repro.sse.swp import SwpCollection, SwpScheme, SwpTrapdoor

__all__ = [
    "BloomFilter",
    "GohIndex",
    "GohTrapdoor",
    "SwpCollection",
    "SwpScheme",
    "SwpTrapdoor",
    "optimal_parameters",
]
