"""English stop-word list and filter.

Stop words carry no retrieval value and would dominate posting-list
sizes, so the analyzer removes them before indexing (paper Section II,
footnote 2).  The list below is the classic Van Rijsbergen/SMART-style
core augmented with a few terms that saturate RFC-style technical
documents ("shall", "must" are *kept*, however, since RFC 2119 gives
them real meaning as keywords).
"""

from __future__ import annotations

STOP_WORDS: frozenset[str] = frozenset(
    """
    a about above after again against all am an and any are aren as at
    be because been before being below between both but by
    can cannot could couldn
    did didn do does doesn doing don down during
    each
    few for from further
    had hadn has hasn have haven having he her here hers herself him
    himself his how
    i if in into is isn it its itself
    just
    let
    me more most mustn my myself
    no nor not now
    of off on once only or other ought our ours ourselves out over own
    same shan she should shouldn so some such
    than that the their theirs them themselves then there these they
    this those through to too
    under until up upon
    very via
    was wasn we were weren what when where which while who whom why
    will with won would wouldn
    you your yours yourself yourselves
    also among amongst anyhow anyway became become becomes becoming
    besides beyond cant co con couldnt de describe done due eg either
    else elsewhere etc even ever every everyone everything everywhere
    except fifteen fifty fill find fire first five former formerly
    found four front full get give go
    hence her hereafter hereby herein hereupon however hundred
    ie inc indeed interest itself keep last latter latterly least less
    ltd made many may meanwhile might mill mine moreover mostly move
    much namely neither never nevertheless next nine nobody none
    noone nothing nowhere often one onto others otherwise part per
    perhaps please rather re
    said see seem seemed seeming seems serious several side since six
    sixty somehow someone something sometime sometimes somewhere still
    take ten then thence thereafter thereby therefore therein thereupon
    thick thin third three thru thus together top toward towards twelve
    twenty two un used uses using various
    well whatever whence whenever whereafter whereas whereby wherein
    whereupon wherever whether whither whoever whole whose within
    without yet
    """.split()
)


def is_stop_word(token: str) -> bool:
    """Return True if ``token`` is on the stop list."""
    return token in STOP_WORDS


def remove_stop_words(tokens) -> list[str]:
    """Return ``tokens`` with stop words filtered out, order preserved."""
    return [token for token in tokens if token not in STOP_WORDS]
