"""Top-k selection for ranked retrieval.

The cloud server ranks posting entries by (encrypted) relevance score
and returns the ``k`` best (paper Section II-A, Fig. 8 experiment).
Because OPM ciphertexts preserve order, *the same* selection routine
works on plaintext scores and on encrypted scores — which is precisely
the paper's point that top-k over the encrypted index is "almost as
fast as in the plaintext domain".

Implementation: a bounded min-heap giving ``O(n log k)`` time and
``O(k)`` extra space; ties broken by item order for determinism.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, TypeVar

from repro.errors import ParameterError

T = TypeVar("T")


def top_k(
    items: Iterable[T],
    k: int,
    key: Callable[[T], object],
) -> list[T]:
    """Return the ``k`` items with largest ``key``, descending.

    Parameters
    ----------
    items:
        Any iterable; consumed once.
    k:
        Number of items to keep; must be positive.  If fewer than ``k``
        items exist, all are returned.
    key:
        Scoring function; larger is better.  Values must be mutually
        comparable (ints, floats, or OPM ciphertexts — all integers).

    Ties are broken toward earlier items, deterministically.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    heap: list[tuple[object, int, T]] = []
    for order, item in enumerate(items):
        entry = (key(item), -order, item)
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)
    heap.sort(reverse=True)
    return [item for (_, _, item) in heap]


def rank_all(
    items: Iterable[T],
    key: Callable[[T], object],
) -> list[T]:
    """Return all items sorted by descending ``key`` (full ranking).

    Used by the basic scheme's user-side ranking and as the reference
    ordering in correctness tests.
    """
    indexed = list(enumerate(items))
    indexed.sort(key=lambda pair: (key(pair[1]), -pair[0]), reverse=True)
    return [item for (_, item) in indexed]
