"""Top-k selection for ranked retrieval.

The cloud server ranks posting entries by (encrypted) relevance score
and returns the ``k`` best (paper Section II-A, Fig. 8 experiment).
Because OPM ciphertexts preserve order, *the same* selection routine
works on plaintext scores and on encrypted scores — which is precisely
the paper's point that top-k over the encrypted index is "almost as
fast as in the plaintext domain".

Implementation: a bounded min-heap giving ``O(n log k)`` time and
``O(k)`` extra space; ties broken by item order for determinism.
"""

from __future__ import annotations

import heapq
from typing import (
    Callable,
    Iterable,
    Mapping,
    MutableMapping,
    Sequence,
    TypeVar,
)

from repro.errors import ParameterError

T = TypeVar("T")


def top_k(
    items: Iterable[T],
    k: int,
    key: Callable[[T], object],
    counters: MutableMapping[str, int] | None = None,
) -> list[T]:
    """Return the ``k`` items with largest ``key``, descending.

    Parameters
    ----------
    items:
        Any iterable; consumed once.
    k:
        Number of items to keep; must be positive.  If fewer than ``k``
        items exist, all are returned.
    key:
        Scoring function; larger is better.  Values must be mutually
        comparable (ints, floats, or OPM ciphertexts — all integers).
    counters:
        Optional work accounting (the observability hook): on return,
        ``scanned`` and ``heap_replacements`` are added into the
        mapping — the numbers a traced search reports as span
        attributes.  ``None`` (the default) skips all accounting.

    Ties are broken toward earlier items, deterministically.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    heap: list[tuple[object, int, T]] = []
    scanned = 0
    replacements = 0
    for order, item in enumerate(items):
        entry = (key(item), -order, item)
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)
            replacements += 1
        scanned = order + 1
    heap.sort(reverse=True)
    if counters is not None:
        counters["scanned"] = counters.get("scanned", 0) + scanned
        counters["heap_replacements"] = (
            counters.get("heap_replacements", 0) + replacements
        )
    return [item for (_, _, item) in heap]


def top_of_ranked(
    ranked: Sequence[T],
    k: int | None,
    counters: MutableMapping[str, int] | None = None,
) -> list[T]:
    """Slice a pre-ranked (descending) list down to its top ``k``.

    The O(k) fast path for callers that already hold a full descending
    ranking (e.g. the cloud server's ranked warm cache): because
    :func:`top_k` and :func:`rank_all` break ties identically (toward
    earlier items), ``top_of_ranked(rank_all(items, key), k)`` equals
    ``top_k(items, k, key)`` element for element.  ``k=None`` returns a
    copy of the whole ranking.  ``counters`` accounts ``scanned`` with
    the number of items *touched* (``min(k, len(ranked))``) — the point
    of the fast path is that a warm query never rescans the list.
    """
    if k is None:
        result = list(ranked)
    else:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        result = list(ranked[:k])
    if counters is not None:
        counters["scanned"] = counters.get("scanned", 0) + len(result)
    return result


def rank_all(
    items: Iterable[T],
    key: Callable[[T], object],
    counters: MutableMapping[str, int] | None = None,
) -> list[T]:
    """Return all items sorted by descending ``key`` (full ranking).

    Used by the basic scheme's user-side ranking and as the reference
    ordering in correctness tests.  ``counters`` accounts ``scanned``
    like :func:`top_k`.
    """
    indexed = list(enumerate(items))
    indexed.sort(key=lambda pair: (key(pair[1]), -pair[0]), reverse=True)
    if counters is not None:
        counters["scanned"] = counters.get("scanned", 0) + len(indexed)
    return [item for (_, item) in indexed]


# -- multi-keyword score aggregation ---------------------------------------
#
# The one-round multi-keyword path (PR 8) aggregates per-term score
# maps server-side.  These helpers are shared by the in-process
# searcher (repro.core.multi_keyword), the cloud server's aggregation
# handler, and the cluster coordinator's partial-result merge, so all
# three produce bit-identical rankings under one tie-break rule:
# descending aggregate score, then ascending id — an ordering that is
# independent of dict/set iteration order (and therefore of
# PYTHONHASHSEED).


def intersect_sums(
    per_term: Sequence[Mapping[str, int]],
) -> list[tuple[str, int]]:
    """Conjunctive aggregation: ids present in *every* map, summed.

    Iterates the smallest map and probes the rest, so the cost is
    ``O(min_len * terms)`` — the sorted-posting-intersection shape —
    rather than the size of the largest posting list.  Returns
    ``(id, sum)`` pairs in ascending-id order.
    """
    if not per_term:
        raise ParameterError("need at least one score map")
    smallest = min(per_term, key=len)
    others = [m for m in per_term if m is not smallest]
    pairs: list[tuple[str, int]] = []
    for item_id in sorted(smallest):
        total = smallest[item_id]
        for scores in others:
            value = scores.get(item_id)
            if value is None:
                break
            total += value
        else:
            pairs.append((item_id, total))
    return pairs


def union_sums(
    per_term: Sequence[Mapping[str, int]],
) -> list[tuple[str, int]]:
    """Disjunctive aggregation: every id in any map, scores summed.

    A k-way merge-accumulate over the per-term maps.  Returns
    ``(id, sum)`` pairs in ascending-id order.
    """
    if not per_term:
        raise ParameterError("need at least one score map")
    totals: dict[str, int] = {}
    for scores in per_term:
        for item_id, value in scores.items():
            totals[item_id] = totals.get(item_id, 0) + value
    return sorted(totals.items())


def rank_pairs(
    pairs: Iterable[tuple[str, int]],
    k: int | None,
    counters: MutableMapping[str, int] | None = None,
) -> list[tuple[str, int]]:
    """Canonically rank ``(id, score)`` pairs, optionally bounded.

    Descending score; ties broken by ascending id, regardless of the
    order pairs arrive in.  ``k=None`` returns the full ranking;
    otherwise a bounded heap keeps the selection at ``O(n log k)``
    without materializing a full score-sorted ranking.
    """
    ordered = sorted(pairs, key=lambda pair: pair[0])
    if k is None:
        return rank_all(ordered, key=lambda pair: pair[1], counters=counters)
    return top_k(ordered, k, key=lambda pair: pair[1], counters=counters)
